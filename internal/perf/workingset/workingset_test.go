package workingset_test

import (
	"testing"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// wsApp builds a host + enclave whose single ecall touches a requested
// number of heap pages.
type wsApp struct {
	h     *host.Host
	ctx   *sgx.Context
	enc   *sgx.Enclave
	touch sdk.Proxy
}

func newWSApp(t *testing.T, heapPages int) *wsApp {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_touch", true); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_touch": func(env *sdk.Env, args any) (any, error) {
			pages, _ := args.(int)
			if err := env.Context().HeapReset(); err != nil {
				return nil, err
			}
			v, err := env.Alloc(pages * sgx.PageSize)
			if err != nil {
				return nil, err
			}
			return nil, env.Touch(v, pages*sgx.PageSize, true)
		},
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:      "ws",
		HeapBytes: heapPages * sgx.PageSize,
	}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)
	return &wsApp{h: h, ctx: ctx, enc: app.Enclave(), touch: proxies["ecall_touch"]}
}

func TestWorkingSetCountsTouchedPages(t *testing.T) {
	a := newWSApp(t, 32)
	est := workingset.New(a.h, a.enc)
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()

	if _, err := a.touch(a.ctx, 8); err != nil {
		t.Fatal(err)
	}
	// 8 heap pages + 1 TCS page; allow small extras but not the whole
	// heap.
	got := est.Count()
	if got < 9 || got > 12 {
		t.Fatalf("working set = %d pages, want ≈9", got)
	}
	byKind := est.PagesByKind()
	if byKind["heap"] != 8 {
		t.Fatalf("heap pages = %d, want 8 (%v)", byKind["heap"], byKind)
	}
	if byKind["tcs"] != 1 {
		t.Fatalf("tcs pages = %d, want 1 (%v)", byKind["tcs"], byKind)
	}
	if byKind["padding"] != 0 || byKind["guard"] != 0 {
		t.Fatalf("padding/guard pages accessed: %v", byKind)
	}
	if est.Bytes() != got*sgx.PageSize {
		t.Fatal("Bytes inconsistent with Count")
	}
}

func TestWorkingSetMarkResetsWindow(t *testing.T) {
	// The paper's usage (§5.2.3–5.2.4): measure start-up pages, Mark,
	// then measure only the pages used during the benchmark phase.
	a := newWSApp(t, 32)
	est := workingset.New(a.h, a.enc)
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()

	if _, err := a.touch(a.ctx, 24); err != nil { // "start-up"
		t.Fatal(err)
	}
	startup := est.Count()
	est.Mark()
	if est.Count() != 0 {
		t.Fatal("Mark did not clear the set")
	}
	if _, err := a.touch(a.ctx, 4); err != nil { // "benchmark"
		t.Fatal(err)
	}
	during := est.Count()
	if during >= startup {
		t.Fatalf("benchmark window (%d) not smaller than start-up (%d)", during, startup)
	}
	if byKind := est.PagesByKind(); byKind["heap"] != 4 {
		t.Fatalf("benchmark-phase heap pages = %d, want 4", byKind["heap"])
	}
}

func TestWorkingSetAccessedSortedAndRepairs(t *testing.T) {
	a := newWSApp(t, 8)
	est := workingset.New(a.h, a.enc)
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	if _, err := a.touch(a.ctx, 3); err != nil {
		t.Fatal(err)
	}
	pages := est.Accessed()
	for i := 1; i < len(pages); i++ {
		if pages[i-1].Vaddr >= pages[i].Vaddr {
			t.Fatal("Accessed not sorted by address")
		}
	}
	// Permissions were repaired on access.
	for _, p := range pages {
		if !p.MMUPerm().Has(sgx.PermRead) {
			t.Fatalf("page %v still stripped after access", p)
		}
	}
	est.Stop()
	// After Stop, everything is restored.
	for _, p := range a.enc.Pages() {
		if p.MMUPerm() != p.SGXPerm {
			t.Fatalf("page %v not restored after Stop", p)
		}
	}
	// Calls still work after Stop.
	if _, err := a.touch(a.ctx, 3); err != nil {
		t.Fatalf("call after Stop: %v", err)
	}
}

func TestWorkingSetDoubleStartFails(t *testing.T) {
	a := newWSApp(t, 8)
	est := workingset.New(a.h, a.enc)
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()
	if err := est.Start(); err == nil {
		t.Fatal("double Start succeeded")
	}
}

func TestWorkingSetChainsForeignFaults(t *testing.T) {
	// Faults on pages of a different enclave must chain to the previously
	// registered handler instead of being swallowed by the estimator.
	a := newWSApp(t, 8)

	// A second enclave whose ecall touches its own heap.
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_touch", true); err != nil {
		t.Fatal(err)
	}
	otherApp, err := a.h.URTS.CreateEnclave(a.h.NewContext("aux"), sgx.Config{Name: "other", HeapBytes: 8 * sgx.PageSize}, iface,
		map[string]sdk.TrustedFn{"ecall_touch": func(env *sdk.Env, args any) (any, error) {
			v, err := env.Alloc(sgx.PageSize)
			if err != nil {
				return nil, err
			}
			return nil, env.Touch(v, sgx.PageSize, true)
		}})
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, a.h.URTS, nil)
	if err != nil {
		t.Fatal(err)
	}
	otherTouch := sdk.Proxies(otherApp, a.h.Proc, otab)["ecall_touch"]

	// Previous handler: repair faults on the other enclave.
	foreign := 0
	if _, err := a.h.Sigaction(kernel.SIGSEGV, func(ctx *sgx.Context, sig kernel.Signal, info *kernel.SigInfo) bool {
		if info == nil || info.Enclave != otherApp.Enclave() {
			return false
		}
		foreign++
		a.h.Machine.SetMMUPerm(info.Page, info.Page.SGXPerm)
		return true
	}); err != nil {
		t.Fatal(err)
	}

	est := workingset.New(a.h, a.enc)
	if err := est.Start(); err != nil {
		t.Fatal(err)
	}
	defer est.Stop()

	// Strip one heap page of the other enclave and trigger the fault.
	var heapPage *sgx.Page
	for _, p := range otherApp.Enclave().Pages() {
		if p.Kind == sgx.PageHeap {
			heapPage = p
			break
		}
	}
	a.h.Machine.SetMMUPerm(heapPage, 0)
	if _, err := otherTouch(a.h.NewContext("caller"), nil); err != nil {
		t.Fatalf("foreign fault not repaired through chain: %v", err)
	}
	if foreign == 0 {
		t.Fatal("previous handler never ran: estimator swallowed the fault")
	}
	if byKind := est.PagesByKind(); byKind["heap"] != 0 {
		t.Fatalf("foreign pages leaked into the estimator's set: %v", byKind)
	}
}
