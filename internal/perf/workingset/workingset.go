// Package workingset implements the sgx-perf enclave working-set
// estimator (§4.2): it strips all MMU page permissions from enclave pages,
// catches the resulting access faults through a SIGSEGV handler, restores
// permissions on access, and reports the set of pages accessed between two
// configurable points in time. SGX permissions are untouched — the trick
// works because the MMU permissions are checked before the SGX ones.
//
// The estimator heavily interferes with enclave execution, which is why it
// is a separate tool from the event logger.
package workingset

import (
	"fmt"
	"sort"
	"sync"

	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/sgx"
)

// Estimator tracks page accesses of one enclave.
type Estimator struct {
	h   *host.Host
	enc *sgx.Enclave

	mu       sync.Mutex
	active   bool
	accessed map[*sgx.Page]struct{}
	prev     kernel.SigHandler
}

// New creates an estimator for the enclave.
func New(h *host.Host, enc *sgx.Enclave) *Estimator {
	return &Estimator{
		h:        h,
		enc:      enc,
		accessed: make(map[*sgx.Page]struct{}),
	}
}

// Start installs the fault handler (through the sigaction symbol, so a
// preloaded logger can still observe the signals) and strips permissions.
func (e *Estimator) Start() error {
	e.mu.Lock()
	if e.active {
		e.mu.Unlock()
		return fmt.Errorf("workingset: already started")
	}
	e.active = true
	e.mu.Unlock()

	prev, err := e.h.Sigaction(kernel.SIGSEGV, e.onFault)
	if err != nil {
		e.mu.Lock()
		e.active = false
		e.mu.Unlock()
		return fmt.Errorf("workingset: %w", err)
	}
	e.mu.Lock()
	e.prev = prev
	e.mu.Unlock()
	e.stripAll()
	return nil
}

// Mark begins a new observation window: the accessed set is cleared and
// all permissions stripped again, so the next Count reports only pages
// touched after this point (the paper's "two configurable points in
// time").
func (e *Estimator) Mark() {
	e.mu.Lock()
	e.accessed = make(map[*sgx.Page]struct{})
	e.mu.Unlock()
	e.stripAll()
}

// Count returns the number of distinct pages accessed since Start/Mark.
func (e *Estimator) Count() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.accessed)
}

// Bytes returns the working-set size in bytes.
func (e *Estimator) Bytes() int { return e.Count() * sgx.PageSize }

// PagesByKind breaks the working set down by page kind — useful to see
// which enclave parts were never used (§4.1.5).
func (e *Estimator) PagesByKind() map[string]int {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[string]int)
	for p := range e.accessed {
		out[p.Kind.String()]++
	}
	return out
}

// Accessed returns the accessed pages sorted by address.
func (e *Estimator) Accessed() []*sgx.Page {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]*sgx.Page, 0, len(e.accessed))
	for p := range e.accessed {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Vaddr < out[j].Vaddr })
	return out
}

// Stop restores all permissions and reinstalls the previous handler.
func (e *Estimator) Stop() {
	e.mu.Lock()
	if !e.active {
		e.mu.Unlock()
		return
	}
	e.active = false
	prev := e.prev
	e.mu.Unlock()

	for _, p := range e.enc.Pages() {
		e.h.Machine.SetMMUPerm(p, p.SGXPerm)
	}
	_, _ = e.h.Sigaction(kernel.SIGSEGV, prev)
}

// stripAll removes MMU permissions from every page of the enclave. Guard
// pages already have none; SGX permissions stay intact.
func (e *Estimator) stripAll() {
	for _, p := range e.enc.Pages() {
		if p.Kind == sgx.PageGuard {
			continue
		}
		e.h.Machine.SetMMUPerm(p, 0)
	}
}

// onFault repairs a stripped page and records the access; faults for other
// enclaves (or real bugs) chain to the previous handler.
func (e *Estimator) onFault(ctx *sgx.Context, sig kernel.Signal, info *kernel.SigInfo) bool {
	e.mu.Lock()
	active := e.active
	prev := e.prev
	e.mu.Unlock()
	if !active || info == nil || info.Enclave != e.enc || info.Page == nil {
		if prev != nil {
			return prev(ctx, sig, info)
		}
		return false
	}
	e.mu.Lock()
	e.accessed[info.Page] = struct{}{}
	e.mu.Unlock()
	e.h.Machine.SetMMUPerm(info.Page, info.Page.SGXPerm)
	return true
}
