package staticlint

// The switchless config emitter: the actionable half of the
// Transition-Bound Calls detector. Where detectSwitchless prints a
// finding for a human, SwitchlessConfigFrom renders the same candidate
// set as a machine-readable sdk.SwitchlessConfig that
// sgxperf.WithSwitchless (or sdk.StartSwitchlessAuto) applies directly —
// closing the lint→config→re-measure loop without a developer
// transcribing call names by hand.

import (
	"sgxperf/internal/edl"
	"sgxperf/internal/sdk"
)

// switchlessOcallCandidates is the shared candidate filter behind both
// the Transition-Bound Calls finding and the config emitter: ocalls that
// marshal at most SwitchlessMaxParams parameters, pass no user_check
// pointers, allow no reentrant ecalls and are not SDK sync ocalls.
// opts must already have defaults applied.
func switchlessOcallCandidates(iface *edl.Interface, opts Options) []string {
	var names []string
	for _, o := range iface.Ocalls() {
		if len(o.Params) > opts.SwitchlessMaxParams || len(o.Allow) > 0 {
			continue
		}
		if o.HasUserCheck() || sdk.IsSyncOcall(o.Name) {
			continue
		}
		names = append(names, o.Name)
	}
	return names
}

// switchlessEcallCandidates filters ecalls the same way: public (a
// worker enters through the public dispatch path), small marshalling
// footprint, no user_check pointers.
func switchlessEcallCandidates(iface *edl.Interface, opts Options) []string {
	var names []string
	for _, e := range iface.Ecalls() {
		if !e.Public || len(e.Params) > opts.SwitchlessMaxParams || e.HasUserCheck() {
			continue
		}
		names = append(names, e.Name)
	}
	return names
}

// SwitchlessConfigFrom derives a switchless runtime configuration from
// the interface alone, using exactly the candidate logic behind the
// Transition-Bound Calls finding (the findings themselves are
// unchanged). It returns nil when no function qualifies. The scheduler
// bounds are left zero and filled with the runtime defaults when the
// configuration is applied; Source is "staticlint" so downstream
// measurements can prove their provenance.
func SwitchlessConfigFrom(iface *edl.Interface, opts Options) *sdk.SwitchlessConfig {
	if iface == nil {
		return nil
	}
	opts = opts.withDefaults()
	cfg := &sdk.SwitchlessConfig{
		Source: "staticlint",
		Ecalls: switchlessEcallCandidates(iface, opts),
		Ocalls: switchlessOcallCandidates(iface, opts),
	}
	if len(cfg.Ecalls)+len(cfg.Ocalls) == 0 {
		return nil
	}
	return cfg
}
