package staticlint

import (
	"fmt"
	"time"

	"sgxperf/internal/lint"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
)

// A Prediction is the interprocedural transition estimate for one ecall
// entry point, optionally joined with the trace it predicts.
type Prediction struct {
	// Ecall is the wire name the enclave registers; Handler the Go
	// function implementing it.
	Ecall   string
	Handler string
	// Predicted is the expected number of ocall dispatches one
	// invocation executes, from the call-graph summaries.
	Predicted int
	// LoopUnknown marks estimates involving a loop (or recursion) whose
	// trip count is not statically known — Predicted is then a lower
	// bound. Conditional marks estimates counting branch-guarded
	// dispatches — those sites may not execute.
	LoopUnknown bool
	Conditional bool
	// Observed is the mean ocall dispatches per recorded invocation
	// (hybrid reports only; SDK sync ocalls are excluded — the static
	// model cannot see contention). Invocations is the sample size.
	Observed    float64
	Invocations int
	// Verdict compares the two: "agree", "over-predicted",
	// "under-predicted", "loop-unknown" (observed consistent with the
	// lower bound) or "not-executed". Empty in static reports.
	Verdict string
}

// predictionTolerance is the allowed |predicted − observed| slack before
// a hybrid report flags a discrepancy: half a transition absolute, or a
// quarter of the prediction, whichever is larger. The relative term
// absorbs error-path skips in big predictions; the absolute term stops
// a 0-vs-0.4 rounding artefact from flagging.
func predictionTolerance(predicted int) float64 {
	tol := 0.25 * float64(predicted)
	if tol < 0.5 {
		tol = 0.5
	}
	return tol
}

// analyzeInterproc runs the interprocedural call-graph analysis
// (internal/lint's transition summaries) over the Go sources under root
// and converts its raw facts into the analyser's currency:
//
//   - every ocall dispatch reached inside a loop — directly or through
//     a transitively-dispatching callee — becomes a
//     ProblemTransitionAmplification finding priced from the machine
//     model: the §3.1 round trip multiplied by the static trip count
//     (one round trip per iteration when the count is unknown);
//   - every boundary-buffer double fetch and every enclave pointer
//     escaping through an ocall argument becomes a
//     ProblemBoundaryDataHazard finding (§3.6);
//   - every registered ecall entry point gets a Prediction of its
//     per-invocation transition count, which hybrid reports later
//     compare against the recorded trace.
//
// Like AnalyzeSource, suppression annotations are deliberately ignored:
// //sgxperf:allow gates the repository lint, while this pass prices the
// pattern for the performance report regardless of intent.
func analyzeInterproc(root string, dirs []string, opts Options) ([]analyzer.Finding, []Prediction, error) {
	tree, err := lint.LoadTree(root)
	if err != nil {
		return nil, nil, fmt.Errorf("staticlint: interprocedural analysis: %w", err)
	}
	findings, preds := analyzeInterprocTree(tree, dirs, opts)
	return findings, preds, nil
}

// analyzeInterprocTree is analyzeInterproc over an already-loaded tree,
// so Static's source pass parses and type-checks the repo once for all
// of the sync, interprocedural and taint analyses.
func analyzeInterprocTree(tree *lint.Tree, dirs []string, opts Options) ([]analyzer.Finding, []Prediction) {
	root := tree.Root
	rep := lint.AnalyzeInterprocTree(tree, dirs)
	opts = opts.withDefaults()
	roundTrip := opts.Cost.Frequency.Duration(opts.Cost.RoundTrip())

	var out []analyzer.Finding
	for _, lc := range rep.Loops {
		call := lc.Ocall
		if call == "" {
			call = lc.Via
		}
		site := "dispatches an ocall"
		if lc.Ocall != "" {
			site = fmt.Sprintf("dispatches ocall %q", lc.Ocall)
		} else if lc.Via != "" {
			site = fmt.Sprintf("calls %s, which transitively dispatches an ocall", lc.Via)
		}
		price := fmt.Sprintf("≥%v per iteration, trip count unknown", roundTrip.Round(10*time.Nanosecond))
		score := 2.0
		if lc.Trip > 0 {
			price = fmt.Sprintf("≈%v per invocation (%d iterations × %v round trip)",
				(time.Duration(lc.Trip) * roundTrip).Round(10*time.Nanosecond), lc.Trip, roundTrip.Round(10*time.Nanosecond))
			score = 3 // a known multiplier is stronger evidence
		}
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemTransitionAmplification,
			Call:    call,
			Kind:    events.KindOcall,
			Evidence: fmt.Sprintf(
				"%s %s inside a loop (depth %d) at %s: every iteration pays a full enclave round trip, %s (§3.1); batch the buffer and cross once (§6)",
				lc.Func, site, lc.Depth, relPos(root, lc.Pos), price),
			Solutions: []analyzer.Solution{analyzer.SolutionBatch, analyzer.SolutionSwitchless, analyzer.SolutionMoveCaller},
			Score:     score,
		})
	}
	for _, f := range rep.Fetches {
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemBoundaryDataHazard,
			Call:    f.Ocall,
			Kind:    events.KindOcall,
			Partner: f.Expr,
			Evidence: fmt.Sprintf(
				"%s re-reads boundary-buffer expression %s at %s after the ocall dispatched at line %d: the untrusted side shares the buffer across the crossing, so the validated value cannot be trusted after it (§3.6 TOCTOU); copy once into enclave state",
				f.Func, f.Expr, relPos(root, f.Pos), f.CrossPos.Line),
			Solutions:    []analyzer.Solution{analyzer.SolutionCheckPointers, analyzer.SolutionReduceCopies},
			SecurityNote: "a double fetch is exploitable, not just slow: the untrusted side can change the value between the reads",
			Score:        2,
		})
	}
	for _, e := range rep.Escapes {
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemBoundaryDataHazard,
			Call:    e.Ocall,
			Kind:    events.KindOcall,
			Partner: e.Expr,
			Evidence: fmt.Sprintf(
				"%s passes enclave pointer %s to the ocall at %s: the untrusted side keeps the address after the call returns, the moral equivalent of a user_check pointer into enclave memory (§3.6); marshal a value copy",
				e.Func, e.Expr, relPos(root, e.Pos)),
			Solutions:    []analyzer.Solution{analyzer.SolutionCheckPointers, analyzer.SolutionMoveCaller},
			SecurityNote: "every later write through the escaped pointer bypasses the boundary copy discipline",
			Score:        3,
		})
	}

	preds := make([]Prediction, 0, len(rep.Entries))
	for _, e := range rep.Entries {
		preds = append(preds, Prediction{
			Ecall: e.Ecall, Handler: e.Handler, Predicted: e.Predicted,
			LoopUnknown: e.LoopUnknown, Conditional: e.Conditional,
		})
	}
	return out, preds
}

// joinPredictions fills each prediction's observed side from the trace:
// invocations per entry point from the ecall table, and the mean
// non-sync ocall dispatches attributed to it through the parent links
// (§4.3.2). SDK sync ocalls are excluded on both sides — the static
// model prices them separately as contention, not as call structure.
func joinPredictions(preds []Prediction, trace *events.Trace) {
	if len(preds) == 0 || trace == nil {
		return
	}
	ecallName := make(map[events.EventID]string)
	invocations := make(map[string]int)
	trace.Ecalls.Scan(func(_ int, e events.CallEvent) bool {
		ecallName[e.ID] = e.Name
		invocations[e.Name]++
		return true
	})
	perEntry := make(map[string]int)
	trace.Ocalls.Scan(func(_ int, e events.CallEvent) bool {
		if sdk.IsSyncOcall(e.Name) {
			return true
		}
		if name, ok := ecallName[e.Parent]; ok {
			perEntry[name]++
		}
		return true
	})
	for i := range preds {
		p := &preds[i]
		p.Invocations = invocations[p.Ecall]
		if p.Invocations == 0 {
			p.Verdict = "not-executed"
			continue
		}
		p.Observed = float64(perEntry[p.Ecall]) / float64(p.Invocations)
		diff := p.Observed - float64(p.Predicted)
		tol := predictionTolerance(p.Predicted)
		switch {
		case p.LoopUnknown && diff >= -tol:
			// The prediction is a lower bound; anything at or above it
			// (minus slack) is consistent.
			p.Verdict = "loop-unknown"
		case diff > tol:
			p.Verdict = "under-predicted"
		case diff < -tol:
			p.Verdict = "over-predicted"
		default:
			p.Verdict = "agree"
		}
	}
}
