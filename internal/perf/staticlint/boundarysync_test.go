package staticlint

import (
	"strings"
	"testing"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads/contend"
)

const repoRoot = "../../.."

// contendDirs scopes the source pass to the exhibit workload.
var contendDirs = []string{"internal/workloads/contend"}

func TestAnalyzeSourcePricesContendExhibit(t *testing.T) {
	findings, err := AnalyzeSource(repoRoot, contendDirs, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var hit *analyzer.Finding
	for i := range findings {
		if findings[i].Problem == analyzer.ProblemBoundarySync {
			hit = &findings[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no boundary-sync finding over %v: %+v", contendDirs, findings)
	}
	// The dispatch is a static string, so the finding joins the trace by
	// the audit ocall's name.
	if hit.Call != contend.OcallAuditLog {
		t.Errorf("Call = %q, want %q", hit.Call, contend.OcallAuditLog)
	}
	if !strings.Contains(hit.Partner, "state.mu") {
		t.Errorf("Partner = %q, want the contended lock state.mu", hit.Partner)
	}
	if !strings.Contains(hit.Evidence, "handleAdd") {
		t.Errorf("evidence does not name the holding function: %q", hit.Evidence)
	}
	// The price must be the machine model's sleep path: the wait/wake
	// ocall pair, two round trips.
	cost := sgx.DefaultCostModel(sgx.MitigationNone)
	sleep := cost.Frequency.Duration(2 * cost.RoundTrip()).Round(10 * time.Nanosecond)
	if !strings.Contains(hit.Evidence, sleep.String()) {
		t.Errorf("evidence %q does not carry the sleep-ocall price %v", hit.Evidence, sleep)
	}
	// Solutions follow the catalogue entry.
	want := analyzer.Catalogue()[analyzer.ProblemBoundarySync]
	if len(hit.Solutions) != len(want) {
		t.Fatalf("solutions %v, want %v", hit.Solutions, want)
	}
	for i := range want {
		if hit.Solutions[i] != want[i] {
			t.Fatalf("solutions %v, want %v", hit.Solutions, want)
		}
	}
	// The well-behaved sibling must not be flagged.
	for _, f := range findings {
		if strings.Contains(f.Evidence, "handleRead") {
			t.Errorf("handleRead flagged: %+v", f)
		}
	}
}

func TestStaticMergesSourceFindings(t *testing.T) {
	iface, err := contend.Interface()
	if err != nil {
		t.Fatal(err)
	}
	r := Static(iface, Options{SourceRoot: repoRoot, SourceDirs: contendDirs})
	found := false
	for _, f := range r.Findings {
		if f.Problem == analyzer.ProblemBoundarySync {
			found = true
		}
	}
	if !found {
		t.Fatalf("static report missing the boundary-sync finding: %+v", r.Findings)
	}
	// A bad root degrades to a warning, not an error.
	r = Static(iface, Options{SourceRoot: "/nonexistent-sgxperf-root"})
	if len(r.Warnings) == 0 {
		t.Error("unreadable SourceRoot produced no warning")
	}
}

func TestHybridReRanksBoundarySync(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "contend"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	w, err := contend.New(h, ctx)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Run(contend.RunOptions{Threads: 4, OpsPerThread: 25}); err != nil {
		t.Fatal(err)
	}
	iface, err := contend.Interface()
	if err != nil {
		t.Fatal(err)
	}
	r, err := Hybrid(iface, l.Trace(), Options{SourceRoot: repoRoot, SourceDirs: contendDirs})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range r.Findings {
		if f.Problem != analyzer.ProblemBoundarySync {
			continue
		}
		if f.Observed == 0 {
			t.Fatalf("boundary-sync finding not joined with the trace: %+v", f)
		}
		if f.HybridScore <= f.Score {
			t.Fatalf("hybrid score %v did not amplify static score %v over %d observations",
				f.HybridScore, f.Score, f.Observed)
		}
		return
	}
	t.Fatalf("hybrid report missing the boundary-sync finding")
}
