package staticlint

import (
	"context"
	"fmt"
	"math"
	"sort"

	"sgxperf/internal/edl"
	"sgxperf/internal/lint"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/pool"
	"sgxperf/internal/sdk"
)

// RankedFinding is one static finding joined with trace evidence: how
// often the concerned call actually executed, and the re-ranked score.
type RankedFinding struct {
	analyzer.Finding
	// Observed is the number of recorded executions of Finding.Call (zero
	// in a pure static report, or when the call never ran).
	Observed int
	// HybridScore is Score weighted by the observed executions
	// (Score × log2(1+Observed)); hybrid reports sort on it.
	HybridScore float64
}

// DynamicOnly is one call observed in the trace but absent from the
// interface under analysis.
type DynamicOnly struct {
	Name  string
	Kind  events.CallKind
	Count int
	// Note explains known benign cases (the SDK sync ocalls, which
	// CreateEnclave adds to every interface).
	Note string
}

// Static produces a Report from the interface alone — findings with no
// workload run. When Options.SourceRoot is set, the concurrency dataflow
// pass over the workload sources contributes its findings too, merged
// and sorted with the interface ones; a source-analysis failure degrades
// to a report warning rather than an error.
func Static(iface *edl.Interface, opts Options) *Report {
	r := &Report{Source: SourceStatic, Summary: summarise(iface)}
	findings := Analyze(iface, opts)
	if opts.SourceRoot != "" {
		// One parsed, type-checked tree feeds every source pass: the
		// concurrency dataflow engine, the interprocedural call graph and
		// the taint engine. Before the shared lint.Tree each pass re-parsed
		// and re-type-checked the repo from scratch.
		tree, err := lint.LoadTree(opts.SourceRoot)
		if err != nil {
			r.Warnings = append(r.Warnings, fmt.Sprintf("staticlint: source analysis: %v", err))
		} else {
			findings = append(findings, analyzeSourceTree(tree, opts.SourceDirs, opts)...)
			inter, preds := analyzeInterprocTree(tree, opts.SourceDirs, opts)
			findings = append(findings, inter...)
			r.Predicted = preds
			taintFindings, flows := analyzeTaintTree(tree, opts.SourceDirs, opts)
			findings = append(findings, taintFindings...)
			r.Flows = flows
		}
		analyzer.SortFindings(findings)
	}
	for _, f := range findings {
		r.Findings = append(r.Findings, RankedFinding{Finding: f})
	}
	if iface != nil {
		if warnings, err := iface.Validate(); err == nil {
			r.Warnings = append(r.Warnings, warnings...)
		}
	}
	return r
}

// Hybrid joins the static findings with a recorded trace: findings are
// re-ranked by observed call counts, findings on never-executed calls are
// listed as static-only, and calls the trace observed that the interface
// does not declare are listed as dynamic-only. The trace must be non-nil;
// a nil interface falls back to the EDL embedded in the trace.
func Hybrid(iface *edl.Interface, trace *events.Trace, opts Options) (*Report, error) {
	return HybridContext(context.Background(), iface, trace, opts)
}

// HybridContext is Hybrid with cooperative cancellation: the trace scan
// and the pool-parallel re-rank stop once ctx is done and the call
// returns ctx.Err() with a nil report. An uncancelled HybridContext
// produces exactly Hybrid's report.
func HybridContext(ctx context.Context, iface *edl.Interface, trace *events.Trace, opts Options) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if trace == nil {
		return nil, fmt.Errorf("staticlint: %w", analyzer.ErrNoTrace)
	}
	if iface == nil {
		iface = interfaceFromTrace(trace)
		if iface == nil {
			return nil, fmt.Errorf("staticlint: no interface given and no EDL embedded in the trace")
		}
	}
	r := Static(iface, opts)
	r.Source = SourceHybrid
	if trace.Meta.Len() > 0 {
		r.Workload = trace.Meta.At(0).Workload
	}

	counts := make(map[string]int)
	kinds := make(map[string]events.CallKind)
	scan := func(_ int, e events.CallEvent) bool {
		counts[e.Name]++
		kinds[e.Name] = e.Kind
		return ctx.Err() == nil
	}
	trace.Ecalls.Scan(scan)
	trace.Ocalls.Scan(scan)
	// Switchless-served executions never reach the call tables (the worker
	// pool bypasses the interposable paths), so the synthetic events are
	// the only evidence they ran; fold them in so the re-rank sees them.
	// Fallback records are excluded — those calls took the regular path and
	// are already counted above.
	trace.Switchless.Scan(func(_ int, e events.SwitchlessEvent) bool {
		if !e.Fallback {
			counts[e.Name]++
			kinds[e.Name] = e.Kind
		}
		return true
	})

	// Join: every finding learns its observed count and hybrid score.
	// Interface-wide findings (Call = "(interface)") and group findings
	// keep their static score but are weighted by the whole trace.
	total := 0
	for _, n := range counts {
		total += n
	}
	// Each finding's re-rank is independent (reads of the shared counts
	// map, a write to its own slot), so the join runs on the worker pool;
	// the StaticOnly collection stays serial to preserve its order.
	pool.ForEachCtx(ctx, len(r.Findings), func(i int) {
		f := &r.Findings[i]
		if f.Call == interfaceWide {
			f.Observed = total
		} else {
			f.Observed = counts[f.Call]
		}
		f.HybridScore = f.Score * math.Log2(1+float64(f.Observed))
	})
	for i := range r.Findings {
		if r.Findings[i].Observed == 0 {
			r.StaticOnly = append(r.StaticOnly, r.Findings[i].Call)
		}
	}
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		if a.HybridScore != b.HybridScore {
			return a.HybridScore > b.HybridScore
		}
		if a.Observed != b.Observed {
			return a.Observed > b.Observed
		}
		if a.Problem != b.Problem {
			return a.Problem < b.Problem
		}
		return a.Call < b.Call
	})
	r.StaticOnly = dedupe(r.StaticOnly)

	// Dynamic-only: observed names the interface does not declare.
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if _, ok := iface.Lookup(n); ok {
			continue
		}
		d := DynamicOnly{Name: n, Kind: kinds[n], Count: counts[n]}
		if sdk.IsSyncOcall(n) {
			d.Note = "SDK sync ocall, added to every interface at enclave creation"
		}
		r.DynamicOnly = append(r.DynamicOnly, d)
	}
	// Predicted vs observed: the static per-entry transition estimates
	// against what the trace actually recorded (§6's validation loop).
	joinPredictions(r.Predicted, trace)
	// Secret flows learn their observed crossing traffic the same way:
	// a flow whose call never executed is static-only evidence, one that
	// crossed often is live disclosure and ranks first.
	for i := range r.Flows {
		r.Flows[i].Observed = counts[r.Flows[i].Call]
	}
	sort.SliceStable(r.Flows, func(i, j int) bool {
		a, b := r.Flows[i], r.Flows[j]
		if a.Observed != b.Observed {
			return a.Observed > b.Observed
		}
		return a.Pos < b.Pos
	})

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// interfaceWide is the Call name of findings about the whole interface.
const interfaceWide = "(interface)"

// interfaceFromTrace recovers the EDL the logger embedded, if any.
func interfaceFromTrace(trace *events.Trace) *edl.Interface {
	var out *edl.Interface
	trace.Enclaves.Scan(func(_ int, meta events.EnclaveMeta) bool {
		if meta.EDL == "" {
			return true
		}
		if iface, _, err := edl.Parse(meta.EDL); err == nil {
			out = iface
			return false
		}
		return true
	})
	return out
}

func dedupe(in []string) []string {
	sort.Strings(in)
	out := in[:0]
	for i, s := range in {
		if i == 0 || in[i-1] != s {
			out = append(out, s)
		}
	}
	return out
}
