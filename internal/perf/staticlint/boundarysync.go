package staticlint

import (
	"fmt"
	"go/token"
	"path/filepath"
	"strings"
	"time"

	"sgxperf/internal/lint"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
)

// AnalyzeSource runs the concurrency dataflow analysis (internal/lint's
// held-across and lock-order engines) over the Go sources under root and
// converts its raw findings into the analyser's currency:
//
//   - every lock held across a blocking boundary becomes a
//     ProblemBoundarySync finding priced from the machine model — each
//     contending thread meanwhile sleeps through the wait/wake ocall
//     pair, two full transitions (§2.3.2, §3.4);
//   - every lock-order cycle becomes a ProblemSSC finding: the deadlock
//     risk aside, inverted acquisition order is exactly the contention
//     shape whose losers take the §3.4 sleep path.
//
// Suppression annotations in the sources are deliberately ignored here:
// //sgxperf:allow gates the repository lint, while this pass prices the
// pattern for the performance report regardless of intent.
func AnalyzeSource(root string, dirs []string, opts Options) ([]analyzer.Finding, error) {
	tree, err := lint.LoadTree(root)
	if err != nil {
		return nil, fmt.Errorf("staticlint: source analysis: %w", err)
	}
	return analyzeSourceTree(tree, dirs, opts), nil
}

// analyzeSourceTree is AnalyzeSource over an already-loaded tree, so
// Static's source pass parses and type-checks the repo once for all of
// the sync, interprocedural and taint analyses.
func analyzeSourceTree(tree *lint.Tree, dirs []string, opts Options) []analyzer.Finding {
	root := tree.Root
	rep := lint.AnalyzeSyncTree(tree, dirs)
	opts = opts.withDefaults()
	// A contended acquisition whose holder is off blocking costs the
	// sleeper the wait ocall and the waker's wake ocall: two round trips.
	sleep := opts.Cost.Frequency.Duration(2 * opts.Cost.RoundTrip())

	var out []analyzer.Finding
	for _, h := range rep.Held {
		boundary := h.Boundary
		if h.Ocall != "" {
			boundary = fmt.Sprintf("%s (%q)", h.Boundary, h.Ocall)
		}
		f := analyzer.Finding{
			Problem: analyzer.ProblemBoundarySync,
			Call:    syncCallName(h),
			Kind:    events.KindOcall,
			Partner: h.Lock.String(),
			Evidence: fmt.Sprintf(
				"%s holds %s across %s at %s (acquired line %d); every thread contending meanwhile sleeps through the wait/wake ocall pair, ≈%v per contended acquisition (§3.4)",
				h.Func, h.Lock, boundary, relPos(root, h.Pos), h.LockPos.Line,
				sleep.Round(10*time.Nanosecond)),
			Solutions:    []analyzer.Solution{analyzer.SolutionReorder, analyzer.SolutionHybridLock, analyzer.SolutionLockFree},
			SecurityNote: "the blocking callee runs with the lock-protected invariant mid-update; verify it cannot re-enter the enclave",
			Score:        2, // the sleep path costs two transitions per loser
		}
		if h.Ocall != "" {
			f.Score++ // a witnessed ocall dispatch blocks unconditionally
		}
		out = append(out, f)
	}
	for _, c := range rep.Cycles {
		names := make([]string, len(c.Locks))
		for i, l := range c.Locks {
			names[i] = l.String()
		}
		edges := strings.Join(c.Edges, "; ")
		if root != "" {
			edges = strings.ReplaceAll(edges, root+string(filepath.Separator), "")
		}
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemSSC,
			Call:    names[0],
			Kind:    events.KindOcall,
			Partner: names[len(names)-1],
			Evidence: fmt.Sprintf(
				"lock-order cycle between %s — a potential deadlock, and contended either way: %s",
				strings.Join(names, " and "), edges),
			Solutions: []analyzer.Solution{analyzer.SolutionLockFree, analyzer.SolutionHybridLock},
			Score:     float64(len(c.Locks)),
		})
	}
	return out
}

// syncCallName picks the trace-joinable call name for a held site: the
// witnessed ocall when the dispatch is static, else the SDK's sleep ocall
// for an sdk.Mutex (that is what contenders record), else the lock name.
func syncCallName(h lint.HeldSite) string {
	switch {
	case h.Ocall != "":
		return h.Ocall
	case h.Class == lint.LockSDK:
		return sdk.OcallThreadWait
	default:
		return h.Lock.String()
	}
}

// relPos renders a position with its filename relative to root, so
// reports are stable across checkouts.
func relPos(root string, p token.Position) string {
	s := p.String()
	if root == "" {
		return s
	}
	return strings.TrimPrefix(s, root+string(filepath.Separator))
}
