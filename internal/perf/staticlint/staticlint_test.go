package staticlint

import (
	"encoding/json"
	"strings"
	"testing"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
)

// lintEDL exercises every detector at once: user_check pointers, large
// copies, a reentrancy cycle, an unreachable private ecall, a merge
// group and switchless candidates.
const lintEDL = `
	enclave {
		trusted {
			public ecall_put([in, size=len] buf, len);
			public ecall_get([out, size=len] buf, len);
			public ecall_peek([user_check] p);
			public ecall_handle(fd);
			ecall_resume();
			ecall_orphan();
		};
		untrusted {
			ocall_wait() allow(ecall_resume);
			ocall_tick_a();
			ocall_tick_b();
			ocall_tick_c();
			ocall_raw([user_check] p);
		};
	};
`

func parse(t *testing.T, src string) *edl.Interface {
	t.Helper()
	iface, _, err := edl.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return iface
}

func problems(fs []analyzer.Finding) map[analyzer.Problem]int {
	out := make(map[analyzer.Problem]int)
	for _, f := range fs {
		out[f.Problem]++
	}
	return out
}

func TestAnalyzeFiresEveryDetector(t *testing.T) {
	fs := Analyze(parse(t, lintEDL), Options{MergeGroupMin: 3})
	got := problems(fs)
	// user_check on ecall_peek and ocall_raw.
	if got[analyzer.ProblemPermissiveInterface] < 3 { // 2 user_check + 1 unreachable
		t.Fatalf("permissive findings = %d, want >= 3:\n%+v", got[analyzer.ProblemPermissiveInterface], fs)
	}
	if got[analyzer.ProblemLargeCopies] != 2 {
		t.Fatalf("copy findings = %d, want 2", got[analyzer.ProblemLargeCopies])
	}
	if got[analyzer.ProblemReentrancy] != 1 {
		t.Fatalf("reentrancy findings = %d, want 1", got[analyzer.ProblemReentrancy])
	}
	if got[analyzer.ProblemTransitionBound] != 1 {
		t.Fatalf("switchless findings = %d, want 1", got[analyzer.ProblemTransitionBound])
	}
	if got[analyzer.ProblemSDSC] < 1 {
		t.Fatalf("merge findings = %d, want >= 1", got[analyzer.ProblemSDSC])
	}
}

func TestAnalyzeNilInterface(t *testing.T) {
	if fs := Analyze(nil, Options{}); fs != nil {
		t.Fatalf("nil interface produced findings: %+v", fs)
	}
}

func TestReentrancyEvidence(t *testing.T) {
	fs := Analyze(parse(t, lintEDL), Options{})
	var re *analyzer.Finding
	for i := range fs {
		if fs[i].Problem == analyzer.ProblemReentrancy {
			re = &fs[i]
		}
	}
	if re == nil {
		t.Fatal("no reentrancy finding")
	}
	if re.Call != "ocall_wait" || re.Partner != "ecall_resume" {
		t.Fatalf("reentrancy finding = %q with %q", re.Call, re.Partner)
	}
	if !strings.Contains(re.Evidence, "ecall_resume") {
		t.Fatalf("evidence does not name the allowed ecall: %s", re.Evidence)
	}
}

func TestUnreachablePrivateEcall(t *testing.T) {
	fs := Analyze(parse(t, lintEDL), Options{})
	found := false
	for _, f := range fs {
		if f.Call == "ecall_orphan" {
			found = true
			if f.Solutions[0] != analyzer.SolutionRemoveDead {
				t.Fatalf("orphan solutions = %v", f.Solutions)
			}
		}
		if f.Call == "ecall_resume" && f.Problem == analyzer.ProblemPermissiveInterface {
			t.Fatal("allowed private ecall flagged as unreachable")
		}
	}
	if !found {
		t.Fatal("unreachable private ecall not flagged")
	}
}

func TestWideSurfaceThreshold(t *testing.T) {
	var b strings.Builder
	b.WriteString("enclave { trusted {")
	for i := 0; i < 8; i++ {
		b.WriteString("public ecall_")
		b.WriteByte(byte('a' + i))
		b.WriteString("();")
	}
	b.WriteString("}; };")
	fs := Analyze(parse(t, b.String()), Options{})
	wide := false
	for _, f := range fs {
		if f.Call == "(interface)" {
			wide = true
			if f.Score != 8 {
				t.Fatalf("wide-surface score = %v, want 8", f.Score)
			}
		}
	}
	if !wide {
		t.Fatal("8 public ecalls not flagged as wide surface")
	}
	// One below the default threshold: no finding.
	fs = Analyze(parse(t, strings.Replace(b.String(), "public ecall_h();", "", 1)), Options{})
	for _, f := range fs {
		if f.Call == "(interface)" {
			t.Fatal("7 public ecalls flagged at threshold 8")
		}
	}
}

func TestSwitchlessSkipsSyncAndAllowOcalls(t *testing.T) {
	iface := parse(t, `enclave { trusted { public e(); ecall_cb(); }; untrusted { ocall_fast(); ocall_gate() allow(ecall_cb); }; };`)
	sdk.WithSyncOcalls(iface)
	fs := Analyze(iface, Options{})
	for _, f := range fs {
		if f.Problem != analyzer.ProblemTransitionBound {
			continue
		}
		if strings.Contains(f.Evidence, sdk.OcallThreadWait) {
			t.Fatalf("sync ocall nominated for switchless: %s", f.Evidence)
		}
		if f.Call != "ocall_fast" {
			t.Fatalf("switchless candidate = %q, want ocall_fast", f.Call)
		}
	}
}

func TestStaticReportCarriesValidateWarnings(t *testing.T) {
	r := Static(parse(t, lintEDL), Options{})
	if r.Source != SourceStatic {
		t.Fatalf("source = %v", r.Source)
	}
	if r.Summary.Ecalls != 6 || r.Summary.PublicEcalls != 4 || r.Summary.Ocalls != 5 {
		t.Fatalf("summary = %+v", r.Summary)
	}
	if r.Summary.UserCheckParams != 2 || r.Summary.AllowEdges != 1 {
		t.Fatalf("summary = %+v", r.Summary)
	}
	if len(r.Warnings) == 0 {
		t.Fatal("Validate warnings not carried into the report")
	}
	text := r.Render()
	for _, want := range []string{"static", "user_check", "ocall_wait", "ecall_orphan"} {
		if !strings.Contains(text, want) {
			t.Fatalf("rendered report missing %q:\n%s", want, text)
		}
	}
}

func TestHybridRanksByObservedCounts(t *testing.T) {
	iface := parse(t, lintEDL)
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	trace.Meta.Insert(events.TraceMeta{Workload: "hybrid-test"})
	// ecall_put runs hot; ecall_get never runs.
	for i := 0; i < 100; i++ {
		trace.Ecalls.Insert(events.CallEvent{Kind: events.KindEcall, Name: "ecall_put"})
	}
	trace.Ocalls.Insert(events.CallEvent{Kind: events.KindOcall, Name: "ocall_wait"})
	// An undeclared ocall (e.g. from an SDK layer the EDL does not model).
	trace.Ocalls.Insert(events.CallEvent{Kind: events.KindOcall, Name: sdk.OcallThreadWait})

	r, err := Hybrid(iface, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Source != SourceHybrid || r.Workload != "hybrid-test" {
		t.Fatalf("source = %v, workload = %q", r.Source, r.Workload)
	}
	// The hot call's copy finding must outrank the never-executed one.
	var putIdx, getIdx = -1, -1
	for i, f := range r.Findings {
		if f.Problem != analyzer.ProblemLargeCopies {
			continue
		}
		switch f.Call {
		case "ecall_put":
			putIdx = i
			if f.Observed != 100 {
				t.Fatalf("ecall_put observed = %d", f.Observed)
			}
		case "ecall_get":
			getIdx = i
			if f.Observed != 0 || f.HybridScore != 0 {
				t.Fatalf("ecall_get observed = %d, rank %v", f.Observed, f.HybridScore)
			}
		}
	}
	if putIdx == -1 || getIdx == -1 || putIdx > getIdx {
		t.Fatalf("hybrid ranking wrong: put at %d, get at %d", putIdx, getIdx)
	}
	// Never-executed flagged calls are static-only.
	static := strings.Join(r.StaticOnly, ",")
	if !strings.Contains(static, "ecall_get") {
		t.Fatalf("static-only = %v", r.StaticOnly)
	}
	if strings.Contains(static, "ecall_put") {
		t.Fatalf("executed call listed static-only: %v", r.StaticOnly)
	}
	// The undeclared sync ocall is dynamic-only with the SDK note.
	if len(r.DynamicOnly) != 1 || r.DynamicOnly[0].Name != sdk.OcallThreadWait {
		t.Fatalf("dynamic-only = %+v", r.DynamicOnly)
	}
	if r.DynamicOnly[0].Note == "" {
		t.Fatal("sync ocall missing the SDK note")
	}
}

func TestHybridNeedsTrace(t *testing.T) {
	if _, err := Hybrid(parse(t, lintEDL), nil, Options{}); err == nil {
		t.Fatal("nil trace accepted")
	}
}

func TestHybridRecoversInterfaceFromTrace(t *testing.T) {
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	trace.Enclaves.Insert(events.EnclaveMeta{Name: "e", EDL: lintEDL})
	r, err := Hybrid(nil, trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r.Summary.Ecalls != 6 {
		t.Fatalf("recovered interface summary = %+v", r.Summary)
	}
	if _, err := Hybrid(nil, mustTrace(t), Options{}); err == nil {
		t.Fatal("trace without EDL accepted with nil interface")
	}
}

func mustTrace(t *testing.T) *events.Trace {
	t.Helper()
	tr, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestReportJSONUsesStringEnums(t *testing.T) {
	r := Static(parse(t, lintEDL), Options{})
	raw, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Source   string `json:"source"`
		Findings []struct {
			Problem   string   `json:"problem"`
			Kind      string   `json:"kind"`
			Solutions []string `json:"solutions"`
		} `json:"findings"`
	}
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Source != "static" {
		t.Fatalf("source = %q", decoded.Source)
	}
	if len(decoded.Findings) == 0 {
		t.Fatal("no findings in JSON")
	}
	for _, f := range decoded.Findings {
		if f.Problem == "" || (f.Kind != "ecall" && f.Kind != "ocall") {
			t.Fatalf("finding enums not stringified: %+v", f)
		}
	}
}

func TestCopyCostEvidenceMentionsBreakeven(t *testing.T) {
	fs := Analyze(parse(t, lintEDL), Options{})
	for _, f := range fs {
		if f.Problem == analyzer.ProblemLargeCopies && f.Call == "ecall_put" {
			if !strings.Contains(f.Evidence, "KiB") {
				t.Fatalf("copy evidence lacks break-even size: %s", f.Evidence)
			}
			return
		}
	}
	t.Fatal("no copy finding for ecall_put")
}
