package staticlint

import (
	"fmt"
	"time"

	"sgxperf/internal/lint"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
)

// A Flow is one secret-flow witness in the report's typed flows section:
// an enclave-confidential value (a //sgxperf:secret declaration) that
// reaches a boundary sink without passing a seal/encrypt function. The
// section is emitted identically by the CLI's -json mode and the serve
// endpoint through api/v1.FromLintReport.
type Flow struct {
	// Source describes the secret declaration; Sink the boundary
	// crossing it reaches; SinkKind is "ocall-arg", "out-param",
	// "user_check" or "boundary-write".
	Source   string
	Sink     string
	SinkKind string
	// Call is the joinable wire name — the ocall for argument sinks, the
	// enclosing handler's ecall for buffer-write sinks ("" unknown).
	Call string
	// Func contains the sink; Pos is its root-relative position.
	Func string
	Pos  string
	// Bytes is the static size of the leaked value (0 when the size is
	// only known at runtime); Price is the modelled boundary-copy cost
	// of one crossing ("" when Bytes is 0).
	Bytes int
	Price string
	// Observed is how often Call executed in the joined trace (hybrid
	// reports only; zero means the flow never ran and is static-only).
	Observed int
	// Chain is the full source→…→sink witness path.
	Chain []FlowHop
}

// A FlowHop is one hop of a flow's witness chain.
type FlowHop struct {
	Pos  string
	Note string
}

// analyzeTaintTree runs the secret-flow taint analysis (internal/lint's
// taint engine) over an already-loaded tree and converts its raw facts
// into the analyser's currency:
//
//   - every unsealed secret reaching a boundary sink becomes a
//     ProblemSecretLeak finding, security-noted and priced by the copy
//     cost of the leaked bytes from the machine model (§3.6), plus a
//     typed Flow for the report's flows section;
//   - every EDL direction mismatch — an [in] param written, an [out]
//     param read before first write, a [user_check] pointer
//     dereferenced unguarded — becomes a ProblemDirectionMismatch
//     finding.
//
// Like the other source passes, suppression annotations are
// deliberately ignored: //sgxperf:allow gates the repository lint,
// while this pass prices the pattern regardless of intent.
func analyzeTaintTree(tree *lint.Tree, dirs []string, opts Options) ([]analyzer.Finding, []Flow) {
	root := tree.Root
	rep := lint.AnalyzeTaintTree(tree, dirs)

	var out []analyzer.Finding
	var flows []Flow
	for _, fl := range rep.Flows {
		kind := events.KindOcall
		if fl.SinkKind != "ocall-arg" {
			// Buffer-write sinks leak through the enclosing ecall's
			// copy-back (or the user_check pointer it carries).
			kind = events.KindEcall
		}
		price := ""
		if fl.Bytes > 0 {
			cost := sdk.CostCopyPerKiB * time.Duration((int64(fl.Bytes)+1023)/1024)
			size := kib(int64(fl.Bytes))
			if fl.Bytes < 1024 {
				size = fmt.Sprintf("%d B", fl.Bytes)
			}
			price = fmt.Sprintf("%s copied per crossing ≈ %v", size, cost.Round(10*time.Nanosecond))
		}
		chain := make([]FlowHop, 0, len(fl.Chain))
		for _, s := range fl.Chain {
			chain = append(chain, FlowHop{Pos: relPos(root, s.Pos), Note: s.Note})
		}
		flows = append(flows, Flow{
			Source: fl.Source, Sink: fl.Sink, SinkKind: fl.SinkKind,
			Call: fl.Call, Func: fl.Func, Pos: relPos(root, fl.Pos),
			Bytes: fl.Bytes, Price: price, Chain: chain,
		})
		evidence := fmt.Sprintf(
			"%s lets %s reach %s at %s without sealing (§3.6)",
			fl.Func, fl.Source, fl.Sink, relPos(root, fl.Pos))
		if price != "" {
			evidence += "; " + price
		} else {
			evidence += "; leaked size unknown until runtime"
		}
		evidence += "; seal or encrypt before the crossing"
		out = append(out, analyzer.Finding{
			Problem:   analyzer.ProblemSecretLeak,
			Call:      fl.Call,
			Kind:      kind,
			Partner:   fl.Source,
			Evidence:  evidence,
			Solutions: []analyzer.Solution{analyzer.SolutionCheckPointers, analyzer.SolutionReduceCopies, analyzer.SolutionMoveCaller},
			SecurityNote: "the untrusted side reads every byte that crosses the boundary: " +
				"an unsealed secret in an ocall buffer or copy-back field is plaintext disclosure",
			Score: 3,
		})
	}
	for _, is := range rep.Issues {
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemDirectionMismatch,
			Call:    is.Ecall,
			Kind:    events.KindEcall,
			Partner: is.Param,
			Evidence: fmt.Sprintf("%s at %s (declared [%s], %s)",
				is.Detail, relPos(root, is.Pos), is.Dir, is.Kind),
			Solutions:    []analyzer.Solution{analyzer.SolutionCheckPointers, analyzer.SolutionReduceCopies},
			SecurityNote: directionNote(is.Kind),
			Score:        2,
		})
	}
	return out, flows
}

// directionNote explains the security consequence of each mismatch kind.
func directionNote(kind string) string {
	switch kind {
	case "in-written":
		return "" // a dropped write is a correctness bug, not a disclosure
	case "out-stale-read":
		return "an [out] buffer arrives uninitialised: reading it before the first write leaks whatever the copy-back returns to the caller"
	case "user-check-unguarded":
		return "user_check pointers are never copied or checked by the SDK: an unguarded dereference reads or writes untrusted memory at an attacker-chosen address"
	}
	return ""
}
