package staticlint

import (
	"encoding/json"
	"fmt"
	"strings"

	"sgxperf/internal/edl"
)

// Source records how a report was produced.
type Source int

const (
	// SourceStatic means the interface alone was analysed.
	SourceStatic Source = iota
	// SourceHybrid means static findings were joined with a recorded trace.
	SourceHybrid
)

func (s Source) String() string {
	if s == SourceHybrid {
		return "hybrid"
	}
	return "static"
}

// Summary condenses the interface shape the detectors saw.
type Summary struct {
	Ecalls        int `json:"ecalls"`
	PublicEcalls  int `json:"public_ecalls"`
	PrivateEcalls int `json:"private_ecalls"`
	Ocalls        int `json:"ocalls"`
	// AllowEdges counts allow-list entries across all ocalls.
	AllowEdges int `json:"allow_edges"`
	// UserCheckParams counts user_check parameters across all functions.
	UserCheckParams int `json:"user_check_params"`
}

func summarise(iface *edl.Interface) Summary {
	var s Summary
	if iface == nil {
		return s
	}
	for _, e := range iface.Ecalls() {
		s.Ecalls++
		if e.Public {
			s.PublicEcalls++
		} else {
			s.PrivateEcalls++
		}
		for _, p := range e.Params {
			if p.Dir == edl.DirUserCheck {
				s.UserCheckParams++
			}
		}
	}
	for _, o := range iface.Ocalls() {
		s.Ocalls++
		s.AllowEdges += len(o.Allow)
		for _, p := range o.Params {
			if p.Dir == edl.DirUserCheck {
				s.UserCheckParams++
			}
		}
	}
	return s
}

// Report is the output of the static pass, optionally joined with a trace.
type Report struct {
	// Workload names the traced workload (hybrid reports only).
	Workload string
	Source   Source
	Summary  Summary
	Findings []RankedFinding
	// StaticOnly lists calls with findings that never executed in the
	// trace (hybrid reports only).
	StaticOnly []string
	// DynamicOnly lists calls the trace observed that the interface does
	// not declare (hybrid reports only).
	DynamicOnly []DynamicOnly
	// Predicted holds the interprocedural per-entry transition
	// estimates (source-aware reports only); hybrid reports fill the
	// observed side and the verdict.
	Predicted []Prediction
	// Flows holds the secret-flow witnesses of the taint analysis
	// (source-aware reports only); hybrid reports fill each flow's
	// observed crossing count and re-rank by it.
	Flows []Flow
	// Warnings are the interface's own Validate warnings.
	Warnings []string
}

// HasProblem reports whether any finding carries the given problem class.
func (r *Report) HasProblem(p fmt.Stringer) bool {
	for _, f := range r.Findings {
		if f.Problem.String() == p.String() {
			return true
		}
	}
	return false
}

// FindingsFor returns the findings about one call.
func (r *Report) FindingsFor(call string) []RankedFinding {
	var out []RankedFinding
	for _, f := range r.Findings {
		if f.Call == call {
			out = append(out, f)
		}
	}
	return out
}

// Render produces the human-readable report.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sgx-perf static interface analysis (%s)\n", r.Source)
	if r.Workload != "" {
		fmt.Fprintf(&b, "workload: %s\n", r.Workload)
	}
	fmt.Fprintf(&b, "interface: %d ecalls (%d public, %d private), %d ocalls, %d allow edges, %d user_check params\n",
		r.Summary.Ecalls, r.Summary.PublicEcalls, r.Summary.PrivateEcalls,
		r.Summary.Ocalls, r.Summary.AllowEdges, r.Summary.UserCheckParams)
	if len(r.Findings) == 0 {
		b.WriteString("no findings\n")
	} else {
		fmt.Fprintf(&b, "%d finding%s\n", len(r.Findings), plural(len(r.Findings)))
	}
	for i, f := range r.Findings {
		fmt.Fprintf(&b, "\n[%d] %s — %s %s", i+1, f.Problem, f.Kind, f.Call)
		if f.Partner != "" {
			fmt.Fprintf(&b, " (with %s)", f.Partner)
		}
		if r.Source == SourceHybrid {
			fmt.Fprintf(&b, " — observed %d×, rank %.2f", f.Observed, f.HybridScore)
		}
		b.WriteByte('\n')
		fmt.Fprintf(&b, "    %s\n", f.Evidence)
		if len(f.Solutions) > 0 {
			sols := make([]string, len(f.Solutions))
			for j, s := range f.Solutions {
				sols[j] = s.String()
			}
			fmt.Fprintf(&b, "    recommend: %s\n", strings.Join(sols, "; "))
		}
		if f.SecurityNote != "" {
			fmt.Fprintf(&b, "    security: %s\n", f.SecurityNote)
		}
	}
	if len(r.StaticOnly) > 0 {
		fmt.Fprintf(&b, "\nstatic-only (declared, flagged, never executed): %s\n",
			strings.Join(r.StaticOnly, ", "))
	}
	for i, d := range r.DynamicOnly {
		if i == 0 {
			b.WriteString("\ndynamic-only (observed, not declared):\n")
		}
		fmt.Fprintf(&b, "    %s %s ×%d", d.Kind, d.Name, d.Count)
		if d.Note != "" {
			fmt.Fprintf(&b, " (%s)", d.Note)
		}
		b.WriteByte('\n')
	}
	for i, p := range r.Predicted {
		if i == 0 {
			b.WriteString("\npredicted transitions per entry point (ocall dispatches per invocation):\n")
		}
		fmt.Fprintf(&b, "    %s (%s): predicted %d", p.Ecall, p.Handler, p.Predicted)
		if p.LoopUnknown {
			b.WriteString(" (lower bound: loop trip unknown)")
		}
		if p.Conditional {
			b.WriteString(" (includes branch-guarded dispatches)")
		}
		if r.Source == SourceHybrid {
			if p.Verdict == "not-executed" {
				b.WriteString(" — not executed")
			} else {
				fmt.Fprintf(&b, " — observed %.2f over %d invocation%s: %s",
					p.Observed, p.Invocations, plural(p.Invocations), p.Verdict)
			}
		}
		b.WriteByte('\n')
	}
	for i, fl := range r.Flows {
		if i == 0 {
			b.WriteString("\nsecret flows (source → boundary sink, unsealed):\n")
		}
		fmt.Fprintf(&b, "    %s → %s [%s] in %s at %s", fl.Source, fl.Sink, fl.SinkKind, fl.Func, fl.Pos)
		if fl.Price != "" {
			fmt.Fprintf(&b, " (%s)", fl.Price)
		}
		if r.Source == SourceHybrid {
			if fl.Observed == 0 {
				b.WriteString(" — never executed (static-only flow)")
			} else {
				fmt.Fprintf(&b, " — crossed %d×", fl.Observed)
			}
		}
		b.WriteByte('\n')
		for _, h := range fl.Chain {
			fmt.Fprintf(&b, "        %s (%s)\n", h.Note, h.Pos)
		}
	}
	for i, w := range r.Warnings {
		if i == 0 {
			b.WriteString("\ninterface warnings:\n")
		}
		fmt.Fprintf(&b, "    %s\n", w)
	}
	return b.String()
}

// jsonFinding is the JSON view of a RankedFinding, with enums as strings.
type jsonFinding struct {
	Problem      string   `json:"problem"`
	Call         string   `json:"call"`
	Kind         string   `json:"kind"`
	Partner      string   `json:"partner,omitempty"`
	Evidence     string   `json:"evidence"`
	Solutions    []string `json:"solutions,omitempty"`
	SecurityNote string   `json:"security_note,omitempty"`
	Score        float64  `json:"score"`
	Observed     int      `json:"observed,omitempty"`
	HybridScore  float64  `json:"hybrid_score,omitempty"`
}

type jsonDynamicOnly struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`
	Note  string `json:"note,omitempty"`
}

type jsonPrediction struct {
	Ecall       string  `json:"ecall"`
	Handler     string  `json:"handler"`
	Predicted   int     `json:"predicted"`
	LoopUnknown bool    `json:"loop_unknown,omitempty"`
	Conditional bool    `json:"conditional,omitempty"`
	Observed    float64 `json:"observed,omitempty"`
	Invocations int     `json:"invocations,omitempty"`
	Verdict     string  `json:"verdict,omitempty"`
}

type jsonFlowHop struct {
	Pos  string `json:"pos"`
	Note string `json:"note"`
}

type jsonFlow struct {
	Source   string        `json:"source"`
	Sink     string        `json:"sink"`
	SinkKind string        `json:"sink_kind"`
	Call     string        `json:"call,omitempty"`
	Func     string        `json:"func"`
	Pos      string        `json:"pos"`
	Bytes    int           `json:"bytes,omitempty"`
	Price    string        `json:"price,omitempty"`
	Observed int           `json:"observed,omitempty"`
	Chain    []jsonFlowHop `json:"chain"`
}

type jsonReport struct {
	Workload    string            `json:"workload,omitempty"`
	Source      string            `json:"source"`
	Summary     Summary           `json:"summary"`
	Findings    []jsonFinding     `json:"findings"`
	StaticOnly  []string          `json:"static_only,omitempty"`
	DynamicOnly []jsonDynamicOnly `json:"dynamic_only,omitempty"`
	Predicted   []jsonPrediction  `json:"predicted,omitempty"`
	Flows       []jsonFlow        `json:"flows,omitempty"`
	Warnings    []string          `json:"warnings,omitempty"`
}

// MarshalJSON renders the report with every enum as its string form, so
// the output is stable against renumbering the Go constants.
func (r *Report) MarshalJSON() ([]byte, error) {
	out := jsonReport{
		Workload: r.Workload,
		Source:   r.Source.String(),
		Summary:  r.Summary,
		Findings: make([]jsonFinding, 0, len(r.Findings)),
	}
	for _, f := range r.Findings {
		jf := jsonFinding{
			Problem:      f.Problem.String(),
			Call:         f.Call,
			Kind:         f.Kind.String(),
			Partner:      f.Partner,
			Evidence:     f.Evidence,
			SecurityNote: f.SecurityNote,
			Score:        f.Score,
			Observed:     f.Observed,
			HybridScore:  f.HybridScore,
		}
		for _, s := range f.Solutions {
			jf.Solutions = append(jf.Solutions, s.String())
		}
		out.Findings = append(out.Findings, jf)
	}
	out.StaticOnly = r.StaticOnly
	for _, d := range r.DynamicOnly {
		out.DynamicOnly = append(out.DynamicOnly, jsonDynamicOnly{
			Name: d.Name, Kind: d.Kind.String(), Count: d.Count, Note: d.Note,
		})
	}
	for _, p := range r.Predicted {
		out.Predicted = append(out.Predicted, jsonPrediction{
			Ecall: p.Ecall, Handler: p.Handler, Predicted: p.Predicted,
			LoopUnknown: p.LoopUnknown, Conditional: p.Conditional,
			Observed: p.Observed, Invocations: p.Invocations, Verdict: p.Verdict,
		})
	}
	for _, fl := range r.Flows {
		jf := jsonFlow{
			Source: fl.Source, Sink: fl.Sink, SinkKind: fl.SinkKind,
			Call: fl.Call, Func: fl.Func, Pos: fl.Pos,
			Bytes: fl.Bytes, Price: fl.Price, Observed: fl.Observed,
		}
		for _, h := range fl.Chain {
			jf.Chain = append(jf.Chain, jsonFlowHop{Pos: h.Pos, Note: h.Note})
		}
		out.Flows = append(out.Flows, jf)
	}
	out.Warnings = r.Warnings
	return json.MarshalIndent(out, "", "  ")
}
