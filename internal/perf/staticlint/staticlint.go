// Package staticlint is the static half of the sgx-perf analyser: a pass
// over an enclave's EDL interface that emits findings without any workload
// run. Many of the anti-patterns §6 derives from dynamic traces are
// already visible in the interface definition alone — user_check pointers,
// allow-list reentrancy cycles, copy costs that dwarf the transition
// itself, dead or overly-wide surface, and merge/switchless candidates —
// so the static pass reports them before the first ecall executes.
//
// Costs are estimated from the same calibrated machine model the runtime
// charges (sgx.CostModel transition cycles, sdk.CostCopyPerKiB), so the
// static evidence is phrased in the exact currency the dynamic analyser
// measures. Hybrid (see hybrid.go) then joins the static findings with a
// recorded trace, ranking them by observed call counts and flagging
// static-only and dynamic-only discrepancies.
package staticlint

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// Options configures the static pass.
type Options struct {
	// Cost is the machine cost model used to price transitions and copies.
	// The zero value selects the unpatched machine
	// (sgx.DefaultCostModel(sgx.MitigationNone)).
	Cost sgx.CostModel

	// WideSurfaceMin is the public-ecall count from which the interface is
	// flagged as overly wide (default 8 — the TaLoS interface declares 207,
	// SecureKeeper gets by with 2, §5.2.1/§5.2.4).
	WideSurfaceMin int

	// MergeGroupMin is the minimum number of same-kind functions with an
	// identical parameter shape before a merge candidate is reported
	// (default 3).
	MergeGroupMin int

	// SwitchlessMaxParams bounds the parameter count of switchless ocall
	// candidates (default 1): calls that marshal almost nothing profit most
	// from a worker thread instead of a transition.
	SwitchlessMaxParams int

	// SourceRoot, when non-empty, adds the concurrency dataflow pass over
	// the Go sources rooted there (AnalyzeSource): locks held across
	// blocking boundaries and lock-order cycles join the interface
	// findings, priced from the same cost model.
	SourceRoot string

	// SourceDirs restricts the source pass to packages under these
	// root-relative directory prefixes (the whole tree when empty).
	SourceDirs []string
}

// withDefaults fills unset options.
func (o Options) withDefaults() Options {
	if o.Cost.Frequency == 0 {
		o.Cost = sgx.DefaultCostModel(sgx.MitigationNone)
	}
	if o.WideSurfaceMin <= 0 {
		o.WideSurfaceMin = 8
	}
	if o.MergeGroupMin <= 0 {
		o.MergeGroupMin = 3
	}
	if o.SwitchlessMaxParams <= 0 {
		o.SwitchlessMaxParams = 1
	}
	return o
}

// Analyze runs every static detector over the interface and returns the
// findings, sorted like the dynamic analyser's (analyzer.SortFindings).
// A nil interface yields no findings.
func Analyze(iface *edl.Interface, opts Options) []analyzer.Finding {
	if iface == nil {
		return nil
	}
	opts = opts.withDefaults()
	var out []analyzer.Finding
	out = append(out, detectUserCheck(iface)...)
	out = append(out, detectCopyCost(iface, opts)...)
	out = append(out, detectReentrancy(iface)...)
	out = append(out, detectWideSurface(iface, opts)...)
	out = append(out, detectUnreachable(iface)...)
	out = append(out, detectMergeShape(iface, opts)...)
	out = append(out, detectSwitchless(iface, opts)...)
	analyzer.SortFindings(out)
	return out
}

// eventKind maps an EDL call kind onto the event model's.
func eventKind(k edl.CallKind) events.CallKind {
	if k == edl.Ocall {
		return events.KindOcall
	}
	return events.KindEcall
}

// allFuncs returns ecalls then ocalls, in ID order.
func allFuncs(iface *edl.Interface) []*edl.Func {
	out := make([]*edl.Func, 0, len(iface.Ecalls())+len(iface.Ocalls()))
	out = append(out, iface.Ecalls()...)
	out = append(out, iface.Ocalls()...)
	return out
}

// detectUserCheck flags every function passing user_check pointers: the
// SDK performs no bounds, direction or enclave-address checks on them
// (§3.6), so each one is a manual-verification obligation.
func detectUserCheck(iface *edl.Interface) []analyzer.Finding {
	var out []analyzer.Finding
	for _, f := range allFuncs(iface) {
		var params []string
		for _, p := range f.Params {
			if p.Dir == edl.DirUserCheck {
				params = append(params, p.Name)
			}
		}
		if len(params) == 0 {
			continue
		}
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemPermissiveInterface,
			Call:    f.Name,
			Kind:    eventKind(f.Kind),
			Evidence: fmt.Sprintf(
				"%s passes user_check pointer%s %s: the SDK copies nothing and checks nothing, so bounds, TOCTTOU and enclave-address validation are the developer's burden (§3.6)",
				f.Kind, plural(len(params)), strings.Join(params, ", ")),
			Solutions:    []analyzer.Solution{analyzer.SolutionCheckPointers},
			SecurityNote: "user_check pointers bypass the TRTS marshalling checks entirely",
			Score:        float64(len(params)),
		})
	}
	return out
}

// copyShape summarises the declared copy behaviour of one function.
type copyShape struct {
	// sized lists [in]/[out] params whose length is a runtime parameter
	// (size=len): bounded per call, unbounded statically.
	sized []string
	// unsized lists pointer params with neither size= nor string: the copy
	// amount is not statically derivable at all.
	unsized []string
	// strings lists NUL-terminated string copies.
	strings []string
	// directions counts copy directions (in-out buffers copy twice).
	copies int
}

func shapeOf(f *edl.Func) copyShape {
	var s copyShape
	for _, p := range f.Params {
		dirs := 0
		switch p.Dir {
		case edl.DirIn, edl.DirOut:
			dirs = 1
		case edl.DirInOut:
			dirs = 2
		default:
			continue
		}
		s.copies += dirs
		switch {
		case p.Size != "":
			s.sized = append(s.sized, p.Name)
		case p.IsString:
			s.strings = append(s.strings, p.Name)
		default:
			s.unsized = append(s.unsized, p.Name)
		}
	}
	return s
}

// detectCopyCost prices each function's declared [in]/[out] copies against
// the transition round-trip: past the break-even size, marshalling — not
// the EENTER/EEXIT pair — dominates the call (§6, "reduce copies").
func detectCopyCost(iface *edl.Interface, opts Options) []analyzer.Finding {
	transition := opts.Cost.Frequency.Duration(opts.Cost.RoundTrip())
	// Bytes at which one direction's copy cost equals the round-trip.
	breakeven := int64(float64(transition) / float64(sdk.CostCopyPerKiB) * 1024)
	var out []analyzer.Finding
	for _, f := range allFuncs(iface) {
		s := shapeOf(f)
		if s.copies == 0 {
			continue
		}
		be := breakeven
		if s.copies > 1 {
			be = breakeven / int64(s.copies)
		}
		var parts []string
		if len(s.sized) > 0 {
			parts = append(parts, fmt.Sprintf("size-parameterised buffer%s %s",
				plural(len(s.sized)), strings.Join(s.sized, ", ")))
		}
		if len(s.strings) > 0 {
			parts = append(parts, fmt.Sprintf("NUL-terminated string%s %s",
				plural(len(s.strings)), strings.Join(s.strings, ", ")))
		}
		if len(s.unsized) > 0 {
			parts = append(parts, fmt.Sprintf("un-sized pointer%s %s (copy bound not statically derivable)",
				plural(len(s.unsized)), strings.Join(s.unsized, ", ")))
		}
		score := float64(s.copies)
		if len(s.unsized) > 0 {
			score += 2 // unknown bounds outrank known-but-dynamic ones
		}
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemLargeCopies,
			Call:    f.Name,
			Kind:    eventKind(f.Kind),
			Evidence: fmt.Sprintf(
				"%s copies %s across the boundary %d way%s; at %v/KiB copying beats the %v transition beyond ≈%s per call",
				f.Kind, strings.Join(parts, " and "), s.copies, plural(s.copies),
				sdk.CostCopyPerKiB, transition.Round(10*time.Nanosecond), kib(be)),
			Solutions: []analyzer.Solution{
				analyzer.SolutionReduceCopies, analyzer.SolutionSwitchless, analyzer.SolutionMoveCaller,
			},
			SecurityNote: "replacing copies with user_check pointers trades marshalling cost for manual pointer validation",
			Score:        score,
		})
	}
	return out
}

// detectReentrancy walks the ecall→ocall→ecall edges the allow-lists
// open. EDL does not restrict which ocalls an ecall may issue, so every
// allow(e) entry closes a cycle: during any ecall the ocall can run, its
// allowed ecall can start, and that ecall can issue the same ocall again —
// unbounded nesting, each level consuming trusted stack (§3.6).
func detectReentrancy(iface *edl.Interface) []analyzer.Finding {
	var out []analyzer.Finding
	for _, o := range iface.Ocalls() {
		if len(o.Allow) == 0 {
			continue
		}
		allowed := make([]string, len(o.Allow))
		copy(allowed, o.Allow)
		sort.Strings(allowed)
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemReentrancy,
			Call:    o.Name,
			Kind:    events.KindOcall,
			Partner: allowed[0],
			Evidence: fmt.Sprintf(
				"cycle: any ecall → %s → allow(%s) → %s again; nesting depth is unbounded and each level consumes trusted stack (§3.6)",
				o.Name, strings.Join(allowed, ", "), o.Name),
			Solutions:    []analyzer.Solution{analyzer.SolutionLimitEcallsFromOcalls, analyzer.SolutionRemoveDead},
			SecurityNote: "reentrant ecalls observe partially-updated enclave state; verify their preconditions hold mid-ocall",
			Score:        float64(len(allowed)),
		})
	}
	return out
}

// detectWideSurface flags interfaces whose public-ecall count exceeds the
// threshold: every public ecall is an unconditional path into the enclave
// (§3.6). TaLoS's 207 public ecalls are the paper's cautionary example.
func detectWideSurface(iface *edl.Interface, opts Options) []analyzer.Finding {
	public := 0
	for _, e := range iface.Ecalls() {
		if e.Public {
			public++
		}
	}
	if public < opts.WideSurfaceMin {
		return nil
	}
	return []analyzer.Finding{{
		Problem: analyzer.ProblemPermissiveInterface,
		Call:    "(interface)",
		Kind:    events.KindEcall,
		Evidence: fmt.Sprintf(
			"%d of %d ecalls are public (threshold %d): each is an unconditional entry point; declare every ecall only issued during ocalls private",
			public, len(iface.Ecalls()), opts.WideSurfaceMin),
		Solutions: []analyzer.Solution{analyzer.SolutionLimitPublicEcalls},
		Score:     float64(public),
	}}
}

// detectUnreachable flags private ecalls no allow-list names: they cannot
// be invoked at all, yet remain attack surface inside the trusted image.
func detectUnreachable(iface *edl.Interface) []analyzer.Finding {
	allowed := make(map[string]bool)
	for _, o := range iface.Ocalls() {
		for _, a := range o.Allow {
			allowed[a] = true
		}
	}
	var out []analyzer.Finding
	for _, e := range iface.Ecalls() {
		if e.Public || allowed[e.Name] {
			continue
		}
		out = append(out, analyzer.Finding{
			Problem: analyzer.ProblemPermissiveInterface,
			Call:    e.Name,
			Kind:    events.KindEcall,
			Evidence: fmt.Sprintf(
				"private ecall %s is allowed by no ocall: unreachable dead surface in the trusted image",
				e.Name),
			Solutions: []analyzer.Solution{analyzer.SolutionRemoveDead},
			Score:     0.5,
		})
	}
	return out
}

// paramShape renders a function's parameter shape canonically, so
// functions that could share one marshalling path compare equal.
func paramShape(f *edl.Func) string {
	var b strings.Builder
	for i, p := range f.Params {
		if i > 0 {
			b.WriteByte(';')
		}
		b.WriteString(p.Dir.String())
		if p.IsString {
			b.WriteString(",string")
		}
		if p.Size != "" {
			b.WriteString(",sized")
		}
	}
	return b.String()
}

// detectMergeShape groups same-kind functions by identical parameter
// shape: groups are candidates for merging into one call with an
// operation tag, saving a transition per merged call (§6 — the minidb
// lseek+write merge generalised to the interface level).
func detectMergeShape(iface *edl.Interface, opts Options) []analyzer.Finding {
	transition := opts.Cost.Frequency.Duration(opts.Cost.RoundTrip())
	var out []analyzer.Finding
	for _, kind := range []edl.CallKind{edl.Ecall, edl.Ocall} {
		groups := make(map[string][]string)
		var funcs []*edl.Func
		if kind == edl.Ecall {
			funcs = iface.Ecalls()
		} else {
			funcs = iface.Ocalls()
		}
		for _, f := range funcs {
			if kind == edl.Ocall && len(f.Allow) > 0 {
				continue // merging changes which ecalls the allow-list covers
			}
			groups[paramShape(f)] = append(groups[paramShape(f)], f.Name)
		}
		shapes := make([]string, 0, len(groups))
		for s, names := range groups {
			if len(names) >= opts.MergeGroupMin {
				shapes = append(shapes, s)
			}
		}
		sort.Strings(shapes)
		for _, s := range shapes {
			names := groups[s]
			shape := s
			if shape == "" {
				shape = "no parameters"
			}
			preview := names
			if len(preview) > 4 {
				preview = append(append([]string{}, names[:4]...), "…")
			}
			out = append(out, analyzer.Finding{
				Problem: analyzer.ProblemSDSC,
				Call:    names[0],
				Kind:    eventKind(kind),
				Partner: names[1],
				Evidence: fmt.Sprintf(
					"%d %ss share one parameter shape (%s): %s; an operation tag would merge consecutive pairs and save one %v transition each",
					len(names), kind, shape, strings.Join(preview, ", "),
					transition.Round(10*time.Nanosecond)),
				Solutions: []analyzer.Solution{analyzer.SolutionMerge, analyzer.SolutionBatch},
				Score:     float64(len(names)),
			})
		}
	}
	return out
}

// detectSwitchless nominates ocalls for switchless (worker-thread)
// execution: calls that marshal at most SwitchlessMaxParams parameters,
// pass no user_check pointers and allow no reentrant ecalls can be
// serviced without leaving the enclave at all ("SGX Switchless Calls Made
// Configless" decides the worker budget before any run — this detector
// supplies its candidate set).
func detectSwitchless(iface *edl.Interface, opts Options) []analyzer.Finding {
	transition := opts.Cost.Frequency.Duration(opts.Cost.RoundTrip())
	names := switchlessOcallCandidates(iface, opts)
	if len(names) == 0 {
		return nil
	}
	preview := names
	if len(preview) > 6 {
		preview = append(append([]string{}, names[:6]...), "…")
	}
	return []analyzer.Finding{{
		Problem: analyzer.ProblemTransitionBound,
		Call:    names[0],
		Kind:    events.KindOcall,
		Evidence: fmt.Sprintf(
			"%d ocall%s marshal ≤%d parameter%s and allow no ecalls (%s): a switchless worker saves the %v transition on every invocation",
			len(names), plural(len(names)), opts.SwitchlessMaxParams, plural(opts.SwitchlessMaxParams),
			strings.Join(preview, ", "), transition.Round(10*time.Nanosecond)),
		Solutions:    []analyzer.Solution{analyzer.SolutionSwitchless, analyzer.SolutionBatch},
		SecurityNote: "switchless workers poll untrusted memory; size the worker pool before deployment",
		Score:        float64(len(names)) * 0.1,
	}}
}

func plural(n int) string {
	if n == 1 {
		return ""
	}
	return "s"
}

// kib renders a byte count as KiB with one decimal.
func kib(n int64) string {
	return fmt.Sprintf("%.1f KiB", float64(n)/1024)
}
