package analyzer

// The streaming fold: the analyser's per-table scans re-expressed as a
// single merge sweep over time-ordered ecall/ocall/paging chunks with
// carry state bounded by O(open calls + threads), independent of trace
// length. The sweep feeds the same aggregate shapes the resident
// detectors use (ReorderAgg, MergeAgg, MergePair, graph edge counts,
// per-name duration histograms), so AssembleReport renders a Report
// that is reflect.DeepEqual to the resident pipeline's.
//
// Preconditions. The fold requires the stream-sorted layout
// events.StreamSort produces — ecalls and ocalls each globally sorted
// by (Start, ID), paging by (Time, ID) — and verifies it as it sweeps,
// returning ErrUnsorted otherwise. Direct-parent resolution assumes
// proper nesting: a call's direct parent spans the call, so the parent
// is still open when the child starts. Traces whose Parent links break
// that (a parent that ended before its child started) resolve fewer
// direct parents than the resident analyser's global ID index would.
//
// Carry bounds. The open-call map and per-thread maxEnd are O(threads)
// for nested traces. Indirect-parent group slots are evicted when their
// parent call closes; only top-level groups (one per thread × kind) and
// groups under parents outside the enclave filter persist for the whole
// sweep.

import (
	"encoding/binary"
	"errors"
	"hash/fnv"
	"sort"
	"time"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// ErrUnsorted reports that a streamed table is not in the stream-sorted
// layout (events.StreamSort) the fold requires. Callers fall back to
// resident analysis.
var ErrUnsorted = errors.New("analyzer: trace tables are not stream-sorted")

// ChunkSeq supplies one table's rows chunk-by-chunk with random access,
// so window recomputation can re-read only the chunks it needs. Both a
// resident evstore table and a stream cursor satisfy it (see source.go).
type ChunkSeq[T any] interface {
	NumChunks() int
	Chunk(i int) ([]T, error)
}

// FoldConfig carries the trace-wide constants of one fold.
type FoldConfig struct {
	Weights    Weights
	Freq       vtime.Frequency
	Transition vtime.Cycles
	Enclave    sgx.EnclaveID
	// SyncRefs maps a call event ID to the number of wake sync events
	// carried by that ocall (from PrescanSyncs). The sweep resolves
	// SyncAgg.ShortWakes from it without keeping call durations around.
	SyncRefs map[events.EventID]int
}

// FoldInput bundles the three time-ordered feeds of one fold.
type FoldInput struct {
	Ecalls ChunkSeq[events.CallEvent]
	Ocalls ChunkSeq[events.CallEvent]
	Paging ChunkSeq[events.PagingEvent]
}

// foldPos is a resume position inside a ChunkSeq.
type foldPos struct {
	chunk, row int
}

type callKey struct {
	start vtime.Cycles
	id    events.EventID
}

func (k callKey) less(o callKey) bool {
	if k.start != o.start {
		return k.start < o.start
	}
	return k.id < o.id
}

type openCall struct {
	name       string
	start, end vtime.Cycles
}

// foldGroup mirrors the resident indirect-parent group key: successive
// calls of one (thread, kind, direct parent) group link as indirect
// parent and child.
type foldGroup struct {
	thread int64
	kind   events.CallKind
	parent events.EventID
}

type groupPrev struct {
	name string
	end  vtime.Cycles
}

// FoldCarry is the cross-chunk state of a fold: cursor resume
// positions, monotonicity watermarks, the open-call set, the
// indirect-parent group slots and the per-thread latest call end. Its
// size is bounded by the number of concurrently open calls and threads,
// never by trace length.
type FoldCarry struct {
	ePos, oPos, pPos   foldPos
	lastCall, lastPage callKey
	seenCall, seenPage bool

	open     map[events.EventID]openCall
	groups   map[foldGroup]groupPrev
	groupsOf map[events.EventID][]foldGroup
	maxEnd   map[sgx.ThreadID]vtime.Cycles
}

// NewFoldCarry returns the empty carry a fold starts from.
func NewFoldCarry() *FoldCarry {
	return &FoldCarry{
		open:     make(map[events.EventID]openCall),
		groups:   make(map[foldGroup]groupPrev),
		groupsOf: make(map[events.EventID][]foldGroup),
		maxEnd:   make(map[sgx.ThreadID]vtime.Cycles),
	}
}

// Clone deep-copies the carry so a cached carry-out can seed the next
// window without aliasing.
func (c *FoldCarry) Clone() *FoldCarry {
	out := &FoldCarry{
		ePos: c.ePos, oPos: c.oPos, pPos: c.pPos,
		lastCall: c.lastCall, lastPage: c.lastPage,
		seenCall: c.seenCall, seenPage: c.seenPage,
		open:     make(map[events.EventID]openCall, len(c.open)),
		groups:   make(map[foldGroup]groupPrev, len(c.groups)),
		groupsOf: make(map[events.EventID][]foldGroup, len(c.groupsOf)),
		maxEnd:   make(map[sgx.ThreadID]vtime.Cycles, len(c.maxEnd)),
	}
	for k, v := range c.open {
		out.open[k] = v
	}
	for k, v := range c.groups {
		out.groups[k] = v
	}
	for k, v := range c.groupsOf {
		out.groupsOf[k] = append([]foldGroup(nil), v...)
	}
	for k, v := range c.maxEnd {
		out.maxEnd[k] = v
	}
	return out
}

// Hash digests the carry's semantic content (positions, watermarks,
// open calls, group slots, thread watermarks) in a sorted, deterministic
// order, so equal carries — however produced — hash equally. The serve
// daemon chains it into window cache keys.
func (c *FoldCarry) Hash() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
	}
	ws := func(s string) {
		wi(int64(len(s)))
		h.Write([]byte(s))
	}
	for _, p := range []foldPos{c.ePos, c.oPos, c.pPos} {
		wi(int64(p.chunk))
		wi(int64(p.row))
	}
	for _, k := range []callKey{c.lastCall, c.lastPage} {
		wi(int64(k.start))
		wi(int64(k.id))
	}
	wi(int64(boolInt(c.seenCall)))
	wi(int64(boolInt(c.seenPage)))

	ids := make([]events.EventID, 0, len(c.open))
	for id := range c.open {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	wi(int64(len(ids)))
	for _, id := range ids {
		oc := c.open[id]
		wi(int64(id))
		ws(oc.name)
		wi(int64(oc.start))
		wi(int64(oc.end))
	}

	gks := make([]foldGroup, 0, len(c.groups))
	for k := range c.groups {
		gks = append(gks, k)
	}
	sort.Slice(gks, func(i, j int) bool {
		a, b := gks[i], gks[j]
		if a.thread != b.thread {
			return a.thread < b.thread
		}
		if a.kind != b.kind {
			return a.kind < b.kind
		}
		return a.parent < b.parent
	})
	wi(int64(len(gks)))
	for _, k := range gks {
		wi(k.thread)
		wi(int64(k.kind))
		wi(int64(k.parent))
		p := c.groups[k]
		ws(p.name)
		wi(int64(p.end))
	}

	ths := make([]sgx.ThreadID, 0, len(c.maxEnd))
	for t := range c.maxEnd {
		ths = append(ths, t)
	}
	sort.Slice(ths, func(i, j int) bool { return ths[i] < ths[j] })
	wi(int64(len(ths)))
	for _, t := range ths {
		wi(int64(t))
		wi(int64(c.maxEnd[t]))
	}
	return h.Sum64()
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// evict drops open calls that ended before pos, and with each the group
// slots keyed under it: a closed parent can have no further children
// under proper nesting, so the slots are dead.
func (c *FoldCarry) evict(pos vtime.Cycles) {
	for id, oc := range c.open {
		if oc.end < pos {
			delete(c.open, id)
			for _, gk := range c.groupsOf[id] {
				delete(c.groups, gk)
			}
			delete(c.groupsOf, id)
		}
	}
}

// GraphKey identifies one call-graph edge: direct (solid) or indirect
// (dashed) parenthood from one call name to another.
type GraphKey struct {
	From, To string
	Indirect bool
}

// NameAgg accumulates one call name's streaming aggregates: the
// duration multiset as a histogram (bounded by distinct durations, not
// executions), the AEX total, and the first-occurrence kind and call ID
// the call graph reports.
type NameAgg struct {
	Kind     events.CallKind
	CallID   int
	Count    int
	TotalAEX int
	Hist     map[time.Duration]int
}

// PagingAgg accumulates the paging summary counters.
type PagingAgg struct {
	PageIns, PageOuts, DuringCalls int
	ByRegion                       map[string]int
}

// PrivateAgg accumulates one ecall name's make-private evidence.
type PrivateAgg struct {
	// TopLevel records that at least one execution had no direct parent.
	TopLevel bool
	// Parents are the resolved direct-parent names.
	Parents map[string]bool
}

// FoldDelta is one window's (or one whole sweep's) aggregate output.
// Deltas merge associatively in window order; a merged delta equals the
// delta of the concatenated input.
type FoldDelta struct {
	Names      map[string]*NameAgg
	Reorder    map[string]*ReorderAgg
	Merge      map[MergePair]*MergeAgg
	Edges      map[GraphKey]int
	Paging     PagingAgg
	ShortWakes int
	Private    map[string]*PrivateAgg
	Observed   map[string]map[string]bool
}

// NewFoldDelta returns an empty delta.
func NewFoldDelta() *FoldDelta {
	return &FoldDelta{
		Names:    make(map[string]*NameAgg),
		Reorder:  make(map[string]*ReorderAgg),
		Merge:    make(map[MergePair]*MergeAgg),
		Edges:    make(map[GraphKey]int),
		Paging:   PagingAgg{ByRegion: make(map[string]int)},
		Private:  make(map[string]*PrivateAgg),
		Observed: make(map[string]map[string]bool),
	}
}

func (d *FoldDelta) name(ev *events.CallEvent) *NameAgg {
	na := d.Names[ev.Name]
	if na == nil {
		na = &NameAgg{Kind: ev.Kind, CallID: ev.CallID, Hist: make(map[time.Duration]int)}
		d.Names[ev.Name] = na
	}
	return na
}

func (d *FoldDelta) reorder(name string) *ReorderAgg {
	g := d.Reorder[name]
	if g == nil {
		g = &ReorderAgg{}
		d.Reorder[name] = g
	}
	return g
}

func (d *FoldDelta) merge(k MergePair) *MergeAgg {
	g := d.Merge[k]
	if g == nil {
		g = &MergeAgg{}
		d.Merge[k] = g
	}
	return g
}

func (d *FoldDelta) private(name string) *PrivateAgg {
	p := d.Private[name]
	if p == nil {
		p = &PrivateAgg{Parents: make(map[string]bool)}
		d.Private[name] = p
	}
	return p
}

func (d *FoldDelta) observed(parent string) map[string]bool {
	s := d.Observed[parent]
	if s == nil {
		s = make(map[string]bool)
		d.Observed[parent] = s
	}
	return s
}

// MergeFrom folds a later window's delta into this one. Window order
// matters only for the first-occurrence fields of NameAgg.
func (d *FoldDelta) MergeFrom(o *FoldDelta) {
	for name, na := range o.Names {
		mine := d.Names[name]
		if mine == nil {
			mine = &NameAgg{Kind: na.Kind, CallID: na.CallID, Hist: make(map[time.Duration]int)}
			d.Names[name] = mine
		}
		mine.Count += na.Count
		mine.TotalAEX += na.TotalAEX
		for dur, n := range na.Hist {
			mine.Hist[dur] += n
		}
	}
	for name, g := range o.Reorder {
		mine := d.reorder(name)
		mine.Total += g.Total
		mine.S10 += g.S10
		mine.S20 += g.S20
		mine.E10 += g.E10
		mine.E20 += g.E20
	}
	for k, g := range o.Merge {
		mine := d.merge(k)
		mine.Count += g.Count
		mine.G1 += g.G1
		mine.G5 += g.G5
		mine.G10 += g.G10
		mine.G20 += g.G20
	}
	for k, n := range o.Edges {
		d.Edges[k] += n
	}
	d.Paging.PageIns += o.Paging.PageIns
	d.Paging.PageOuts += o.Paging.PageOuts
	d.Paging.DuringCalls += o.Paging.DuringCalls
	for r, n := range o.Paging.ByRegion {
		d.Paging.ByRegion[r] += n
	}
	d.ShortWakes += o.ShortWakes
	for name, p := range o.Private {
		mine := d.private(name)
		mine.TopLevel = mine.TopLevel || p.TopLevel
		for pn := range p.Parents {
			mine.Parents[pn] = true
		}
	}
	for parent, set := range o.Observed {
		mine := d.observed(parent)
		for n := range set {
			mine[n] = true
		}
	}
}

// seqCursor walks one ChunkSeq from a resume position, holding at most
// one chunk resident.
type seqCursor[T any] struct {
	seq        ChunkSeq[T]
	n          int
	chunk, row int
	buf        []T
	loaded     bool
}

func newSeqCursor[T any](seq ChunkSeq[T], pos foldPos) *seqCursor[T] {
	return &seqCursor[T]{seq: seq, n: seq.NumChunks(), chunk: pos.chunk, row: pos.row}
}

// head returns the current row without consuming it, or nil at EOF.
func (c *seqCursor[T]) head() (*T, error) {
	for c.chunk < c.n {
		if !c.loaded {
			buf, err := c.seq.Chunk(c.chunk)
			if err != nil {
				return nil, err
			}
			c.buf = buf
			c.loaded = true
		}
		if c.row < len(c.buf) {
			return &c.buf[c.row], nil
		}
		c.chunk++
		c.row = 0
		c.buf = nil
		c.loaded = false
	}
	return nil, nil
}

func (c *seqCursor[T]) pop() { c.row++ }

func (c *seqCursor[T]) pos() foldPos { return foldPos{c.chunk, c.row} }

// WindowBound returns the exclusive time bound of window k: the
// earliest first-row Start of the two call tables' chunk k+1. Events at
// or after the bound belong to later windows. ok=false means neither
// table has a chunk k+1, so window k is the final one.
func WindowBound(in FoldInput, k int) (vtime.Cycles, bool, error) {
	var bound vtime.Cycles
	ok := false
	for _, seq := range []ChunkSeq[events.CallEvent]{in.Ecalls, in.Ocalls} {
		if seq == nil || k+1 >= seq.NumChunks() {
			continue
		}
		rows, err := seq.Chunk(k + 1)
		if err != nil {
			return 0, false, err
		}
		if len(rows) == 0 {
			continue
		}
		if !ok || rows[0].Start < bound {
			bound = rows[0].Start
			ok = true
		}
	}
	return bound, ok, nil
}

// FoldWindow runs the merge sweep from carry's resume positions up to
// (but excluding) events at or after bound, or to end of data when
// final is set. It returns the window's delta and the carry-out; the
// carry-in is not mutated. The carry-out is canonical for (carry-in,
// consumed events): open calls ending before the bound are evicted, so
// its Hash depends only on semantic content.
func FoldWindow(cfg *FoldConfig, carryIn *FoldCarry, in FoldInput, bound vtime.Cycles, final bool) (*FoldDelta, *FoldCarry, error) {
	carry := carryIn.Clone()
	delta := NewFoldDelta()

	ec := newSeqCursor[events.CallEvent](in.Ecalls, carry.ePos)
	oc := newSeqCursor[events.CallEvent](in.Ocalls, carry.oPos)
	pc := newSeqCursor[events.PagingEvent](in.Paging, carry.pPos)

	for {
		e, err := ec.head()
		if err != nil {
			return nil, nil, err
		}
		o, err := oc.head()
		if err != nil {
			return nil, nil, err
		}
		// Pick the earlier call head by (Start, ID) — the resident
		// prepare() sort order.
		var call *events.CallEvent
		var fromE bool
		switch {
		case e != nil && o != nil:
			if (callKey{e.Start, e.ID}).less(callKey{o.Start, o.ID}) {
				call, fromE = e, true
			} else {
				call, fromE = o, false
			}
		case e != nil:
			call, fromE = e, true
		case o != nil:
			call, fromE = o, false
		}
		if call != nil && !final && call.Start >= bound {
			call = nil
		}

		p, err := pc.head()
		if err != nil {
			return nil, nil, err
		}
		if p != nil && !final && p.Time >= bound {
			p = nil
		}

		// Paging events interleave after calls sharing their timestamp:
		// the resident DuringCalls test is Start <= Time, inclusive.
		if p != nil && (call == nil || p.Time < call.Start) {
			k := callKey{p.Time, p.ID}
			if carry.seenPage && !carry.lastPage.less(k) {
				return nil, nil, ErrUnsorted
			}
			carry.lastPage, carry.seenPage = k, true
			if p.Kind == events.PageIn {
				delta.Paging.PageIns++
			} else {
				delta.Paging.PageOuts++
			}
			delta.Paging.ByRegion[p.PageKind]++
			if me, ok := carry.maxEnd[p.Thread]; ok && me >= p.Time {
				delta.Paging.DuringCalls++
			}
			pc.pop()
			continue
		}
		if call == nil {
			break
		}

		k := callKey{call.Start, call.ID}
		if carry.seenCall && !carry.lastCall.less(k) {
			return nil, nil, ErrUnsorted
		}
		carry.lastCall, carry.seenCall = k, true
		if cfg.Enclave != 0 && call.Enclave != cfg.Enclave {
			if fromE {
				ec.pop()
			} else {
				oc.pop()
			}
			continue
		}

		carry.evict(call.Start)
		foldCall(cfg, carry, delta, call)
		if fromE {
			ec.pop()
		} else {
			oc.pop()
		}
	}

	if !final {
		carry.evict(bound)
	}
	carry.ePos, carry.oPos, carry.pPos = ec.pos(), oc.pos(), pc.pos()
	return delta, carry, nil
}

// foldCall folds one in-filter call into the delta and carry.
func foldCall(cfg *FoldConfig, carry *FoldCarry, delta *FoldDelta, call *events.CallEvent) {
	var adjusted time.Duration
	if call.Kind == events.KindEcall {
		adjusted = cfg.Freq.Duration(call.Duration() - cfg.Transition)
		if adjusted < 0 {
			adjusted = 0
		}
	} else {
		adjusted = cfg.Freq.Duration(call.Duration())
	}

	na := delta.name(call)
	na.Count++
	na.TotalAEX += call.AEXCount
	na.Hist[adjusted]++

	if n := cfg.SyncRefs[call.ID]; n > 0 && adjusted < cfg.Weights.SyncShortLimit {
		delta.ShortWakes += n
	}

	var parentName string
	hasDirect := false
	if call.Parent != events.NoEvent {
		if p, ok := carry.open[call.Parent]; ok {
			hasDirect = true
			parentName = p.name
			offStart := cfg.Freq.Duration(call.Start - p.start)
			offEnd := cfg.Freq.Duration(p.end - call.End)
			delta.reorder(call.Name).Add(offStart, offEnd)
			delta.Edges[GraphKey{From: p.name, To: call.Name}]++
			if call.Kind == events.KindEcall {
				delta.observed(p.name)[call.Name] = true
			}
		}
	}
	// Tracked for every instance regardless of kind: the resident
	// make-private scan walks all of a name's instances and gates on the
	// name's first-occurrence kind only at render time.
	pa := delta.private(call.Name)
	if call.Parent == events.NoEvent {
		pa.TopLevel = true
	} else if hasDirect {
		pa.Parents[parentName] = true
	}

	gk := foldGroup{thread: int64(call.Thread), kind: call.Kind, parent: call.Parent}
	if prev, ok := carry.groups[gk]; ok {
		gap := cfg.Freq.Duration(call.Start - prev.end)
		if gap < 0 {
			gap = 0
		}
		delta.merge(MergePair{Parent: prev.name, Child: call.Name}).Add(gap)
		delta.Edges[GraphKey{From: prev.name, To: call.Name, Indirect: true}]++
	} else if call.Parent != events.NoEvent {
		carry.groupsOf[call.Parent] = append(carry.groupsOf[call.Parent], gk)
	}
	carry.groups[gk] = groupPrev{name: call.Name, end: call.End}

	carry.open[call.ID] = openCall{name: call.Name, start: call.Start, end: call.End}
	if call.End > carry.maxEnd[call.Thread] {
		carry.maxEnd[call.Thread] = call.End
	}
}
