package analyzer

import (
	"fmt"
	"reflect"
	"testing"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// xorshift is a tiny deterministic PRNG so the golden traces are stable
// across runs and platforms without importing math/rand.
type xorshift uint64

func (x *xorshift) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// goldenTrace synthesises a trace exercising every kernel: many call
// names across threads and enclaves, nested ocalls with back-to-back
// repeats (merge/batch pressure), sync sleep/wake pairs, paging events
// inside and outside call windows, and AEX counts.
func goldenTrace(t *testing.T, seed uint64, nOps int) *events.Trace {
	t.Helper()
	b := newBuilder(t)
	rng := xorshift(seed | 1)
	names := []string{
		"ecall_put", "ecall_get", "ecall_del", "ecall_tick",
		"ecall_crypto", "ecall_flush",
	}
	onames := []string{"ocall_write", "ocall_read", "ocall_log"}
	clock := make([]float64, 8) // per-thread time in µs
	for op := 0; op < nOps; op++ {
		thread := int64(rng.intn(len(clock)))
		clock[thread] += float64(1 + rng.intn(40))
		start := clock[thread]
		dur := float64(1+rng.intn(30)) / 2
		name := names[rng.intn(len(names))]
		id := b.trace.NextID()
		enclave := sgx.EnclaveID(1 + rng.intn(2))
		b.trace.Ecalls.Insert(events.CallEvent{
			ID: id, Kind: events.KindEcall, Enclave: enclave,
			Thread: sgx.ThreadID(thread), CallID: rng.intn(8), Name: name,
			Start: b.cyc(start), End: b.cyc(start + dur),
			Parent: events.NoEvent, AEXCount: rng.intn(3),
		})
		// Nested ocalls, sometimes repeated back-to-back to trigger the
		// merge/batch detectors, sometimes near the parent's start for
		// the reordering detector.
		nested := rng.intn(3)
		at := start + float64(rng.intn(3))/4
		for k := 0; k < nested; k++ {
			oid := b.trace.NextID()
			oname := onames[rng.intn(len(onames))]
			odur := float64(1+rng.intn(6)) / 4
			b.trace.Ocalls.Insert(events.CallEvent{
				ID: oid, Kind: events.KindOcall, Enclave: enclave,
				Thread: sgx.ThreadID(thread), Name: oname,
				Start: b.cyc(at), End: b.cyc(at + odur),
				Parent: id,
			})
			at += odur + float64(rng.intn(4))/4
			if rng.intn(4) == 0 { // occasional sync ocall with wake targets
				sid := b.trace.NextID()
				kind := events.SyncSleep
				var targets []sgx.ThreadID
				if rng.intn(2) == 0 {
					kind = events.SyncWake
					targets = []sgx.ThreadID{sgx.ThreadID(rng.intn(len(clock)))}
				}
				b.trace.Syncs.Insert(events.SyncEvent{
					ID: sid, Kind: kind, Thread: sgx.ThreadID(thread),
					Targets: targets, Time: b.cyc(at), Call: oid,
				})
			}
		}
		if rng.intn(5) == 0 {
			pid := b.trace.NextID()
			kind := events.PageIn
			if rng.intn(2) == 0 {
				kind = events.PageOut
			}
			// Half land inside the ecall window, half in the gaps.
			when := start + dur/2
			if rng.intn(2) == 0 {
				when = start + dur + 1
			}
			b.trace.Paging.Insert(events.PagingEvent{
				ID: pid, Kind: kind, Enclave: enclave,
				Thread: sgx.ThreadID(thread), Vaddr: rng.next(),
				PageKind: []string{"heap", "stack", "code"}[rng.intn(3)],
				Time:     b.cyc(when),
			})
		}
		clock[thread] = start + dur
	}
	return b.trace
}

// reports runs both pipelines over the same prepared analyser state.
func reports(t *testing.T, trace *events.Trace, opts Options) (serial, parallel *Report) {
	t.Helper()
	opts.Serial = true
	as, err := New(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	serial = as.Analyze()
	opts.Serial = false
	ap, err := New(trace, opts)
	if err != nil {
		t.Fatal(err)
	}
	parallel = ap.Analyze()
	return serial, parallel
}

// TestParallelAnalyzeDeepEqualGolden is the pipeline's core guarantee:
// on traces exercising every kernel, the parallel report is
// reflect.DeepEqual to the serial one — stats, findings (order
// included), security hints, paging, wake graph and call graph.
func TestParallelAnalyzeDeepEqualGolden(t *testing.T) {
	for _, tc := range []struct {
		seed uint64
		ops  int
	}{
		{seed: 1, ops: 50},
		{seed: 7, ops: 400},
		{seed: 42, ops: 1500},
	} {
		t.Run(fmt.Sprintf("seed=%d/ops=%d", tc.seed, tc.ops), func(t *testing.T) {
			trace := goldenTrace(t, tc.seed, tc.ops)
			serial, parallel := reports(t, trace, Options{})
			if !reflect.DeepEqual(serial, parallel) {
				t.Fatalf("parallel report diverges from serial:\nserial:   %+v\nparallel: %+v", serial, parallel)
			}
		})
	}
}

// TestParallelAnalyzeDeepEqualPerEnclave repeats the guarantee with the
// per-enclave dissection filter active.
func TestParallelAnalyzeDeepEqualPerEnclave(t *testing.T) {
	trace := goldenTrace(t, 99, 600)
	for _, enc := range []sgx.EnclaveID{1, 2} {
		serial, parallel := reports(t, trace, Options{Enclave: enc})
		if !reflect.DeepEqual(serial, parallel) {
			t.Fatalf("enclave %d: parallel report diverges from serial", enc)
		}
	}
}

// TestParallelAnalyzeEmptyTrace checks the degenerate partitions: no
// calls, no paging, no syncs.
func TestParallelAnalyzeEmptyTrace(t *testing.T) {
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	serial, parallel := reports(t, trace, Options{})
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("empty trace: serial %+v != parallel %+v", serial, parallel)
	}
}

// TestParallelAnalyzeRepeatable guards against scheduling-dependent
// output: the parallel pipeline must produce the identical report run
// after run.
func TestParallelAnalyzeRepeatable(t *testing.T) {
	trace := goldenTrace(t, 1234, 800)
	a, err := New(trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	first := a.Analyze()
	for i := 0; i < 5; i++ {
		if got := a.Analyze(); !reflect.DeepEqual(first, got) {
			t.Fatalf("run %d differs from first parallel run", i)
		}
	}
}

// TestCallIntervalsMatchesLinearScan cross-checks the O(log n) interval
// index against the serial linear-scan definition on the golden trace.
func TestCallIntervalsMatchesLinearScan(t *testing.T) {
	trace := goldenTrace(t, 5, 300)
	a, err := New(trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	idx := a.buildCallIntervals()
	linear := func(thread sgx.ThreadID, x vtime.Cycles) bool {
		for i := range a.all {
			c := &a.all[i]
			if c.ev.Thread == thread && c.ev.Start <= x && x <= c.ev.End {
				return true
			}
		}
		return false
	}
	rng := xorshift(77)
	for i := 0; i < 2000; i++ {
		thread := sgx.ThreadID(rng.intn(10))
		x := vtime.Cycles(rng.next() % 4_000_000)
		if got, want := idx.contains(thread, x), linear(thread, x); got != want {
			t.Fatalf("contains(thread=%d, x=%d) = %v, linear scan says %v", thread, x, got, want)
		}
	}
}
