package analyzer

import (
	"strconv"
	"strings"
	"testing"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
)

func exportFixture(t *testing.T) *Analyzer {
	t.Helper()
	b := newBuilder(t)
	for i := 0; i < 40; i++ {
		b.ecall("e,call \"x\"", 1, float64(i*100), float64(5+i%7), events.NoEvent)
	}
	parent := b.ecall("parent", 2, 10000, 500, events.NoEvent)
	oid := b.ocall("sgx_thread_set_untrusted_event_ocall", 2, 10010, 2, parent)
	b.trace.Syncs.Insert(events.SyncEvent{
		ID: b.trace.NextID(), Kind: events.SyncWake, Thread: 2,
		Targets: []sgx.ThreadID{5}, Time: b.cyc(10010), Call: oid,
	})
	return b.analyze(Options{})
}

func TestStatsCSV(t *testing.T) {
	a := exportFixture(t)
	csv := a.StatsCSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	// Header + 3 distinct calls.
	if len(lines) != 4 {
		t.Fatalf("csv lines = %d:\n%s", len(lines), csv)
	}
	if !strings.HasPrefix(lines[0], "call,kind,count,mean_ns") {
		t.Fatalf("header = %q", lines[0])
	}
	// The comma-and-quote call name must be escaped.
	if !strings.Contains(csv, `"e,call ""x"""`) {
		t.Fatalf("call name not CSV-escaped:\n%s", csv)
	}
	// Every data row has the full column count.
	for _, line := range lines[1:] {
		if n := len(splitCSVRow(line)); n != 15 {
			t.Fatalf("row has %d fields: %q", n, line)
		}
	}
}

// splitCSVRow splits one CSV row honouring quotes (test helper).
func splitCSVRow(line string) []string {
	var out []string
	var cur strings.Builder
	inQuote := false
	for i := 0; i < len(line); i++ {
		c := line[i]
		switch {
		case c == '"':
			inQuote = !inQuote
			cur.WriteByte(c)
		case c == ',' && !inQuote:
			out = append(out, cur.String())
			cur.Reset()
		default:
			cur.WriteByte(c)
		}
	}
	out = append(out, cur.String())
	return out
}

func TestHistogramCSV(t *testing.T) {
	a := exportFixture(t)
	csv, err := a.HistogramCSV("e,call \"x\"", 10)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 11 {
		t.Fatalf("lines = %d", len(lines))
	}
	total := 0
	for _, line := range lines[1:] {
		parts := strings.Split(line, ",")
		n, err := strconv.Atoi(parts[2])
		if err != nil {
			t.Fatal(err)
		}
		total += n
	}
	if total != 40 {
		t.Fatalf("histogram total = %d, want 40", total)
	}
	if _, err := a.HistogramCSV("missing", 10); err == nil {
		t.Fatal("missing call accepted")
	}
}

func TestScatterCSV(t *testing.T) {
	a := exportFixture(t)
	csv, err := a.ScatterCSV("parent")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 2 || lines[0] != "t_since_start_ns,execution_ns" {
		t.Fatalf("csv:\n%s", csv)
	}
	if _, err := a.ScatterCSV("missing"); err == nil {
		t.Fatal("missing call accepted")
	}
}

func TestWakeGraphCSV(t *testing.T) {
	a := exportFixture(t)
	csv := a.WakeGraphCSV()
	if !strings.Contains(csv, "2,5,1") {
		t.Fatalf("wake graph csv:\n%s", csv)
	}
}

func TestGnuplotScripts(t *testing.T) {
	hist := GnuplotHistogram("sgx_ecall_handle_input", "h.csv", "h.pdf")
	for _, want := range []string{"pdfcairo", "h.csv", "h.pdf", `sgx\_ecall\_handle\_input`, "with boxes"} {
		if !strings.Contains(hist, want) {
			t.Fatalf("histogram script missing %q:\n%s", want, hist)
		}
	}
	scat := GnuplotScatter("call", "s.csv", "s.pdf")
	for _, want := range []string{"with points", "s.csv", "s.pdf"} {
		if !strings.Contains(scat, want) {
			t.Fatalf("scatter script missing %q:\n%s", want, scat)
		}
	}
}
