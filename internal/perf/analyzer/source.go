package analyzer

import (
	"fmt"

	"sgxperf/internal/edl"
	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/vtime"
)

// StreamSource feeds the streaming fold. It abstracts over where the
// chunks come from: resident evstore tables (NewTraceSource) or a saved
// trace file read chunk-by-chunk (NewStreamTraceSource). Only the
// header tables are materialised; everything else is pulled one chunk
// at a time by the fold.
type StreamSource struct {
	Workload   string
	Enclaves   []events.EnclaveMeta
	Freq       vtime.Frequency
	Transition vtime.Cycles

	Ecalls     ChunkSeq[events.CallEvent]
	Ocalls     ChunkSeq[events.CallEvent]
	Paging     ChunkSeq[events.PagingEvent]
	Syncs      ChunkSeq[events.SyncEvent]
	Switchless ChunkSeq[events.SwitchlessEvent]
}

// tableSeq adapts a resident evstore table to ChunkSeq.
type tableSeq[T any] struct{ t *evstore.Table[T] }

func (s tableSeq[T]) NumChunks() int           { return s.t.NumChunks() }
func (s tableSeq[T]) Chunk(i int) ([]T, error) { return s.t.ChunkAt(i), nil }

// TableSeq exposes a resident table as a fold feed.
func TableSeq[T any](t *evstore.Table[T]) ChunkSeq[T] { return tableSeq[T]{t} }

// cursorSeq adapts an evstore stream cursor to ChunkSeq. Chunk seeks,
// so out-of-order window recomputation re-reads only what it needs.
type cursorSeq[T any] struct{ c *evstore.StreamCursor[T] }

func (s cursorSeq[T]) NumChunks() int { return s.c.NumChunks() }

func (s cursorSeq[T]) Chunk(i int) ([]T, error) {
	if err := s.c.Seek(i); err != nil {
		return nil, err
	}
	rows, err := s.c.Next()
	if err != nil {
		return nil, err
	}
	if rows == nil {
		return nil, fmt.Errorf("analyzer: chunk %d out of range", i)
	}
	return rows, nil
}

// CursorSeq exposes a stream cursor as a fold feed.
func CursorSeq[T any](c *evstore.StreamCursor[T]) ChunkSeq[T] { return cursorSeq[T]{c} }

// NewTraceSource feeds the fold from a resident trace's tables. The
// order-sensitive tables must be stream-sorted (events.StreamSort);
// otherwise AnalyzeStream returns ErrUnsorted.
func NewTraceSource(t *events.Trace) *StreamSource {
	var enclaves []events.EnclaveMeta
	t.Enclaves.Scan(func(_ int, m events.EnclaveMeta) bool {
		enclaves = append(enclaves, m)
		return true
	})
	workload := ""
	if t.Meta.Len() > 0 {
		workload = t.Meta.At(0).Workload
	}
	return &StreamSource{
		Workload:   workload,
		Enclaves:   enclaves,
		Freq:       t.Frequency(),
		Transition: t.TransitionCycles(),
		Ecalls:     TableSeq(t.Ecalls),
		Ocalls:     TableSeq(t.Ocalls),
		Paging:     TableSeq(t.Paging),
		Syncs:      TableSeq(t.Syncs),
		Switchless: TableSeq(t.Switchless),
	}
}

// NewStreamTraceSource feeds the fold from a saved trace file without
// loading it: each table is an on-demand chunk cursor.
func NewStreamTraceSource(st *events.StreamTrace) (*StreamSource, error) {
	ec, err := st.Ecalls()
	if err != nil {
		return nil, err
	}
	oc, err := st.Ocalls()
	if err != nil {
		return nil, err
	}
	pc, err := st.Paging()
	if err != nil {
		return nil, err
	}
	sc, err := st.Syncs()
	if err != nil {
		return nil, err
	}
	wc, err := st.Switchless()
	if err != nil {
		return nil, err
	}
	return &StreamSource{
		Workload:   st.Workload(),
		Enclaves:   st.Enclaves(),
		Freq:       st.Frequency(),
		Transition: st.TransitionCycles(),
		Ecalls:     CursorSeq(ec),
		Ocalls:     CursorSeq(oc),
		Paging:     CursorSeq(pc),
		Syncs:      CursorSeq(sc),
		Switchless: CursorSeq(wc),
	}, nil
}

// Interface recovers the enclave interface embedded in the source's
// enclave descriptors (the first parseable EDL), or nil.
func (src *StreamSource) Interface() *edl.Interface {
	return interfaceFromMetas(src.Enclaves)
}

// interfaceFromMetas recovers the first parseable embedded EDL, the
// streaming counterpart of interfaceFromTrace.
func interfaceFromMetas(metas []events.EnclaveMeta) *edl.Interface {
	for _, meta := range metas {
		if meta.EDL == "" {
			continue
		}
		if iface, _, err := edl.Parse(meta.EDL); err == nil {
			return iface
		}
	}
	return nil
}

// AnalyzeStream analyses a trace through the bounded-memory fold:
// one order-free prescan over syncs and switchless, then a single merge
// sweep over the time-ordered ecall/ocall/paging chunks. Memory stays
// O(chunk size + open calls + threads) however long the trace is. The
// report is reflect.DeepEqual to New(trace, opts).Analyze() on the same
// events (see TestAnalyzeStreamingMatchesResident). Returns ErrUnsorted
// when the order-sensitive tables are not stream-sorted.
func AnalyzeStream(src *StreamSource, opts Options) (*Report, error) {
	if src == nil {
		return nil, fmt.Errorf("analyzer: %w", ErrNoTrace)
	}
	if opts.Weights == (Weights{}) {
		opts.Weights = DefaultWeights()
	}
	iface := opts.Interface
	if iface == nil {
		iface = interfaceFromMetas(src.Enclaves)
	}

	pre, err := PrescanSyncs(src.Syncs)
	if err != nil {
		return nil, err
	}
	swAgg, err := FoldSwitchless(src.Switchless)
	if err != nil {
		return nil, err
	}

	cfg := &FoldConfig{
		Weights:    opts.Weights,
		Freq:       src.Freq,
		Transition: src.Transition,
		Enclave:    opts.Enclave,
		SyncRefs:   pre.Refs,
	}
	delta, _, err := FoldWindow(cfg, NewFoldCarry(), FoldInput{
		Ecalls: src.Ecalls,
		Ocalls: src.Ocalls,
		Paging: src.Paging,
	}, 0, true)
	if err != nil {
		return nil, err
	}
	sw := SwitchlessStatsFrom(swAgg, src.Freq)
	return AssembleReport(src.Workload, cfg, delta, pre, sw, iface), nil
}
