package analyzer

import (
	"math"
	"sort"
	"time"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/vtime"
)

// CallStats are the general statistics of §4.3.1 for one call, computed
// over execution durations (ecalls: transition-adjusted, §4.1.2).
type CallStats struct {
	Name  string
	Kind  events.CallKind
	Count int

	Mean   time.Duration
	Median time.Duration
	Std    time.Duration
	P90    time.Duration
	P95    time.Duration
	P99    time.Duration
	Min    time.Duration
	Max    time.Duration

	// Short-call fractions feeding Equation 1.
	FracBelow1us  float64
	FracBelow5us  float64
	FracBelow10us float64

	// TotalAEX sums AEXs over all executions (ecalls only).
	TotalAEX int
}

// Stats computes statistics for one call name, or ok=false if unseen. It
// gathers the call's durations and hands off to the shared
// StatsFromDurations kernel.
func (a *Analyzer) Stats(name string) (CallStats, bool) {
	calls := a.callsNamed(name)
	if len(calls) == 0 {
		return CallStats{}, false
	}
	durs := make([]time.Duration, len(calls))
	totalAEX := 0
	for i, c := range calls {
		durs[i] = c.adjusted
		totalAEX += c.ev.AEXCount
	}
	return StatsFromDurations(name, calls[0].ev.Kind, durs, totalAEX)
}

// AllStats computes statistics for every call name, ordered by descending
// count (the overview of §4.3.1).
func (a *Analyzer) AllStats() []CallStats {
	out := make([]CallStats, 0, len(a.perNames))
	for _, n := range a.perNames {
		if s, ok := a.Stats(n); ok {
			out = append(out, s)
		}
	}
	SortStats(out)
	return out
}

// percentile returns the p-quantile (0..1) of sorted durations using the
// nearest-rank method.
func percentile(sorted []time.Duration, p float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(p*float64(len(sorted)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// HistogramBin is one bucket of call execution times (Fig. 7).
type HistogramBin struct {
	Lo, Hi time.Duration
	Count  int
}

// Histogram buckets the call's execution times into bins equal-width bins
// (the paper groups into 100, Fig. 7).
func (a *Analyzer) Histogram(name string, bins int) []HistogramBin {
	calls := a.callsNamed(name)
	if len(calls) == 0 || bins <= 0 {
		return nil
	}
	lo, hi := calls[0].adjusted, calls[0].adjusted
	for _, c := range calls {
		if c.adjusted < lo {
			lo = c.adjusted
		}
		if c.adjusted > hi {
			hi = c.adjusted
		}
	}
	width := (hi - lo) / time.Duration(bins)
	if width <= 0 {
		width = 1
	}
	out := make([]HistogramBin, bins)
	for i := range out {
		out[i].Lo = lo + time.Duration(i)*width
		out[i].Hi = out[i].Lo + width
	}
	for _, c := range calls {
		idx := int((c.adjusted - lo) / width)
		if idx >= bins {
			idx = bins - 1
		}
		out[idx].Count++
	}
	return out
}

// ScatterPoint is one call execution plotted over application time
// (Fig. 8).
type ScatterPoint struct {
	// T is the call's start relative to the first event in the trace.
	T time.Duration
	// Dur is the call's execution time.
	Dur time.Duration
}

// Scatter returns the call's execution times over the course of the run.
func (a *Analyzer) Scatter(name string) []ScatterPoint {
	calls := a.callsNamed(name)
	if len(calls) == 0 {
		return nil
	}
	var t0 vtime.Cycles
	if len(a.all) > 0 {
		t0 = a.all[0].ev.Start
	}
	out := make([]ScatterPoint, len(calls))
	for i, c := range calls {
		out[i] = ScatterPoint{
			T:   a.freq.Duration(c.ev.Start - t0),
			Dur: c.adjusted,
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].T < out[j].T })
	return out
}
