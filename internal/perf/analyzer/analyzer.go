// Package analyzer implements the sgx-perf analyser (§4.3): general
// statistics, histograms and scatter series, call graphs with direct and
// indirect parents (Fig. 4), detectors for the five SGX performance
// anti-patterns of Table 1 (SISC, SDSC, SNC, SSC, paging) using the
// paper's weighted-ratio rules (Equations 1–3), and enclave-interface
// security hints (§3.6, §4.3.2).
package analyzer

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// ErrNoTrace reports that an analysis was requested without a trace —
// typically a logger that was never attached or was detached before its
// trace was taken. Test with errors.Is.
var ErrNoTrace = errors.New("no trace to analyze")

// Weights holds every configurable threshold of the detectors, with the
// paper's published defaults.
type Weights struct {
	// Moving/duplication (Equation 1): flag a call when ≥Move1 of its
	// executions are shorter than 1µs, or ≥Move5 shorter than 5µs, or
	// ≥Move10 shorter than 10µs.
	Move1, Move5, Move10 float64

	// Reordering (Equation 2): weighted share of calls issued in the
	// first/last 10µs (weight ReorderW10) and 10–20µs band (ReorderW20)
	// of their direct parent must reach ReorderThreshold.
	ReorderW10, ReorderW20, ReorderThreshold float64

	// Merging/batching (Equation 3): a pair is considered when the parent
	// is the call's indirect parent in at least MergeMinPairFrac of its
	// executions (λ); gap-band weights (α, β, γ, δ) and the threshold ε.
	MergeMinPairFrac                     float64
	MergeW1, MergeW5, MergeW10, MergeW20 float64
	MergeThreshold                       float64

	// SSC: minimum number of sync ocalls before the detector fires, and
	// the duration below which a wake ocall counts as short.
	SyncMinOcalls  int
	SyncShortLimit time.Duration

	// Paging: minimum number of paging events before the detector fires.
	PagingMinEvents int
}

// DefaultWeights returns the defaults from §4.3.2 (obtained by the authors
// through experimentation).
func DefaultWeights() Weights {
	return Weights{
		Move1:  0.35,
		Move5:  0.50,
		Move10: 0.65,

		ReorderW10:       1.00,
		ReorderW20:       0.75,
		ReorderThreshold: 0.50,

		MergeMinPairFrac: 0.35,
		MergeW1:          1.00,
		MergeW5:          0.75,
		MergeW10:         0.50,
		MergeW20:         0.35,
		MergeThreshold:   0.35,

		SyncMinOcalls:  10,
		SyncShortLimit: 10 * time.Microsecond,

		PagingMinEvents: 1,
	}
}

// Options configures an analysis run.
type Options struct {
	Weights Weights
	// Interface supplies the enclave's EDL explicitly. When nil, the
	// analyser parses the EDL embedded in the trace, if any; with no EDL
	// at all it reports the smallest observed allow-sets (§4.3.2).
	Interface *edl.Interface
	// Enclave restricts the analysis to one enclave's events (0 = all).
	// Traces from multi-enclave applications — SecureKeeper spawns one
	// enclave per client (§5.2.4) — can be dissected per enclave.
	Enclave sgx.EnclaveID
	// Serial forces the single-threaded reference pipeline. By default
	// Analyze partitions its kernels over the shared worker pool
	// (internal/pool) and merges deterministically; the two paths produce
	// reflect.DeepEqual reports, so Serial exists as an escape hatch for
	// debugging and as the baseline the parallel path is tested against.
	Serial bool
}

// Analyzer computes a Report from a trace.
type Analyzer struct {
	trace *events.Trace
	opts  Options

	freq       vtime.Frequency
	transition vtime.Cycles

	// prepared data
	all      []call
	byName   map[string][]int // indexes into all
	perNames []string         // sorted names
	iface    *edl.Interface
}

// call is one prepared call event with derived fields.
type call struct {
	ev events.CallEvent
	// adjusted is the execution duration: for ecalls the transition
	// round-trip is subtracted (§4.1.2); ocall timestamps already exclude
	// transitions.
	adjusted time.Duration
	// indirect is the index (into Analyzer.all) of the indirect parent,
	// or -1.
	indirect int
	// gap is the time between the indirect parent's end and this call's
	// start.
	gap time.Duration
	// offsetStart/offsetEnd are distances from the direct parent's
	// start/end, when a direct parent exists.
	offsetStart, offsetEnd time.Duration
	hasDirect              bool
}

// New prepares an analyser over the trace. A nil trace returns an error
// wrapping ErrNoTrace.
func New(trace *events.Trace, opts Options) (*Analyzer, error) {
	if trace == nil {
		return nil, fmt.Errorf("analyzer: %w", ErrNoTrace)
	}
	if opts.Weights == (Weights{}) {
		opts.Weights = DefaultWeights()
	}
	a := &Analyzer{
		trace:      trace,
		opts:       opts,
		freq:       trace.Frequency(),
		transition: trace.TransitionCycles(),
		byName:     make(map[string][]int),
	}
	a.iface = opts.Interface
	if a.iface == nil {
		if parsed := interfaceFromTrace(trace); parsed != nil {
			a.iface = parsed
		}
	}
	a.prepare()
	return a, nil
}

// interfaceFromTrace recovers the EDL the logger embedded, if any.
func interfaceFromTrace(trace *events.Trace) *edl.Interface {
	var out *edl.Interface
	trace.Enclaves.Scan(func(_ int, meta events.EnclaveMeta) bool {
		if meta.EDL == "" {
			return true
		}
		if iface, _, err := edl.Parse(meta.EDL); err == nil {
			out = iface
			return false
		}
		return true
	})
	return out
}

// prepare merges both call tables, sorts by start time, computes adjusted
// durations, direct-parent offsets and indirect parents (Fig. 4). The
// tables are read with the zero-copy scan path: events are materialised
// once, directly into the prepared slice.
func (a *Analyzer) prepare() {
	a.all = make([]call, 0, a.trace.Ecalls.Len()+a.trace.Ocalls.Len())
	a.trace.Ecalls.Scan(func(_ int, e events.CallEvent) bool {
		if a.opts.Enclave != 0 && e.Enclave != a.opts.Enclave {
			return true
		}
		adj := a.freq.Duration(e.Duration() - a.transition)
		if adj < 0 {
			adj = 0
		}
		a.all = append(a.all, call{ev: e, adjusted: adj, indirect: -1})
		return true
	})
	a.trace.Ocalls.Scan(func(_ int, o events.CallEvent) bool {
		if a.opts.Enclave != 0 && o.Enclave != a.opts.Enclave {
			return true
		}
		a.all = append(a.all, call{ev: o, adjusted: a.freq.Duration(o.Duration()), indirect: -1})
		return true
	})
	sort.SliceStable(a.all, func(i, j int) bool {
		if a.all[i].ev.Start != a.all[j].ev.Start {
			return a.all[i].ev.Start < a.all[j].ev.Start
		}
		return a.all[i].ev.ID < a.all[j].ev.ID
	})

	byID := make(map[events.EventID]int, len(a.all))
	for i := range a.all {
		byID[a.all[i].ev.ID] = i
	}
	for i := range a.all {
		c := &a.all[i]
		a.byName[c.ev.Name] = append(a.byName[c.ev.Name], i)
		if c.ev.Parent != events.NoEvent {
			if pi, ok := byID[c.ev.Parent]; ok {
				c.hasDirect = true
				p := a.all[pi].ev
				c.offsetStart = a.freq.Duration(c.ev.Start - p.Start)
				c.offsetEnd = a.freq.Duration(p.End - c.ev.End)
			}
		}
	}
	a.perNames = make([]string, 0, len(a.byName))
	for n := range a.byName {
		a.perNames = append(a.perNames, n)
	}
	sort.Strings(a.perNames)

	// Indirect parents: within each (thread, kind, direct parent) group,
	// in start order, the indirect parent is simply the previous call —
	// calls on one thread do not overlap (Fig. 4).
	type groupKey struct {
		thread int64
		kind   events.CallKind
		parent events.EventID
	}
	last := make(map[groupKey]int)
	for i := range a.all {
		c := &a.all[i]
		k := groupKey{int64(c.ev.Thread), c.ev.Kind, c.ev.Parent}
		if pi, ok := last[k]; ok {
			c.indirect = pi
			c.gap = a.freq.Duration(c.ev.Start - a.all[pi].ev.End)
			if c.gap < 0 {
				c.gap = 0
			}
		}
		last[k] = i
	}
}

// IndirectParentOf returns the event ID of a call's indirect parent
// (Fig. 4), or (NoEvent, false) when it has none.
func (a *Analyzer) IndirectParentOf(id events.EventID) (events.EventID, bool) {
	for i := range a.all {
		if a.all[i].ev.ID != id {
			continue
		}
		if a.all[i].indirect < 0 {
			return events.NoEvent, false
		}
		return a.all[a.all[i].indirect].ev.ID, true
	}
	return events.NoEvent, false
}

// CallNames returns every distinct call name in the trace, sorted.
func (a *Analyzer) CallNames() []string {
	out := make([]string, len(a.perNames))
	copy(out, a.perNames)
	return out
}

// Interface returns the EDL interface in use (explicit or recovered), or
// nil.
func (a *Analyzer) Interface() *edl.Interface { return a.iface }

// callsNamed returns the prepared calls with the given name.
func (a *Analyzer) callsNamed(name string) []*call {
	idx := a.byName[name]
	out := make([]*call, len(idx))
	for i, j := range idx {
		out[i] = &a.all[j]
	}
	return out
}

// kindOf returns the kind of the named call (all events of one name share
// a kind).
func (a *Analyzer) kindOf(name string) events.CallKind {
	idx := a.byName[name]
	if len(idx) == 0 {
		return 0
	}
	return a.all[idx[0]].ev.Kind
}

// Analyze produces the full report. Unless Options.Serial is set, the
// kernels run concurrently on the shared worker pool and are merged
// deterministically; the result is reflect.DeepEqual to the serial
// pipeline's on any trace (see parallel.go for the determinism
// argument).
func (a *Analyzer) Analyze() *Report {
	r, _ := a.AnalyzeContext(context.Background())
	return r
}

// AnalyzeContext is Analyze with cooperative cancellation: long
// analyses stop claiming new work once ctx is done and the call returns
// ctx.Err() with a nil report. Cancellation is observed between
// kernels and between pool partitions, never mid-partition, so an
// uncancelled AnalyzeContext produces exactly Analyze's report — the
// deterministic-merge guarantee is unchanged.
func (a *Analyzer) AnalyzeContext(ctx context.Context) (*Report, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	var r *Report
	if a.opts.Serial {
		r = a.analyzeSerial(ctx)
	} else {
		r = a.analyzeParallel(ctx)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return r, nil
}

// analyzeSerial is the single-threaded reference pipeline: each kernel
// runs to completion before the next starts, in a fixed order.
// Cancellation is checked between kernels.
func (a *Analyzer) analyzeSerial(ctx context.Context) *Report {
	r := &Report{Workload: a.workload()}
	steps := []func(){
		func() { r.Stats = a.AllStats() },
		func() { r.Graph = a.CallGraph() },
		func() { r.Paging = a.PagingSummary() },
		func() { r.WakeGraph = a.WakeGraph() },
		func() { r.Switchless = a.SwitchlessSummary() },
		func() { r.Findings = append(r.Findings, a.DetectMoving()...) },
		func() { r.Findings = append(r.Findings, a.DetectReordering()...) },
		func() { r.Findings = append(r.Findings, a.DetectMerging()...) },
		func() { r.Findings = append(r.Findings, a.DetectSSC()...) },
		func() { r.Findings = append(r.Findings, a.DetectPaging()...) },
		func() { SortFindings(r.Findings) },
		func() { r.Security = a.SecurityHints() },
	}
	for _, step := range steps {
		if ctx.Err() != nil {
			return nil
		}
		step()
	}
	return r
}

func (a *Analyzer) workload() string {
	if a.trace.Meta.Len() > 0 {
		return a.trace.Meta.At(0).Workload
	}
	return ""
}

// micros is a readability helper.
func micros(n int) time.Duration { return time.Duration(n) * time.Microsecond }
