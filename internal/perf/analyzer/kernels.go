package analyzer

// The stats and detector kernels: pure functions from accumulated
// aggregates to CallStats and Findings. The post-mortem analyser builds
// the aggregates by scanning a finished trace; the live streaming engine
// (internal/perf/live) maintains the same aggregates incrementally as
// events arrive. Both call these kernels, which is what makes the live
// engine's equivalence guarantee hold: after a workload quiesces, a live
// snapshot and Analyze over the full trace run identical code over
// identical aggregates.

import (
	"fmt"
	"math"
	"sort"
	"time"

	"sgxperf/internal/perf/events"
)

// StatsFromDurations computes the §4.3.1 statistics for one call from the
// multiset of its adjusted execution durations (ecalls:
// transition-subtracted). durs is sorted in place; all derived values —
// including the mean, summed in sorted order — depend only on the
// multiset, never on recording order. Returns ok=false for an empty set.
func StatsFromDurations(name string, kind events.CallKind, durs []time.Duration, totalAEX int) (CallStats, bool) {
	if len(durs) == 0 {
		return CallStats{}, false
	}
	s := CallStats{Name: name, Kind: kind, Count: len(durs), TotalAEX: totalAEX}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	var sum float64
	for _, d := range durs {
		sum += float64(d)
		switch {
		case d < time.Microsecond:
			s.FracBelow1us++
			fallthrough
		case d < 5*time.Microsecond:
			s.FracBelow5us++
			fallthrough
		case d < 10*time.Microsecond:
			s.FracBelow10us++
		}
	}
	n := float64(len(durs))
	s.FracBelow1us /= n
	s.FracBelow5us /= n
	s.FracBelow10us /= n

	s.Min, s.Max = durs[0], durs[len(durs)-1]
	s.Mean = time.Duration(sum / n)
	s.Median = percentile(durs, 0.50)
	s.P90 = percentile(durs, 0.90)
	s.P95 = percentile(durs, 0.95)
	s.P99 = percentile(durs, 0.99)

	var varSum float64
	for _, d := range durs {
		diff := float64(d) - float64(s.Mean)
		varSum += diff * diff
	}
	s.Std = time.Duration(math.Sqrt(varSum / n))
	return s, true
}

// StatsFromHistogram computes the same statistics as StatsFromDurations
// from a duration→count histogram — the bounded-memory representation
// the streaming fold carries. The float accumulations replay the exact
// per-execution addition sequence StatsFromDurations performs over the
// sorted multiset (one add per execution, ascending), so the two
// kernels return bit-identical CallStats for equal multisets.
func StatsFromHistogram(name string, kind events.CallKind, hist map[time.Duration]int, totalAEX int) (CallStats, bool) {
	n := 0
	for _, k := range hist {
		n += k
	}
	if n == 0 {
		return CallStats{}, false
	}
	durs := make([]time.Duration, 0, len(hist))
	for d := range hist {
		durs = append(durs, d)
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })

	s := CallStats{Name: name, Kind: kind, Count: n, TotalAEX: totalAEX}
	var sum float64
	for _, d := range durs {
		for i := 0; i < hist[d]; i++ {
			sum += float64(d)
		}
		k := float64(hist[d])
		switch {
		case d < time.Microsecond:
			s.FracBelow1us += k
			fallthrough
		case d < 5*time.Microsecond:
			s.FracBelow5us += k
			fallthrough
		case d < 10*time.Microsecond:
			s.FracBelow10us += k
		}
	}
	fn := float64(n)
	s.FracBelow1us /= fn
	s.FracBelow5us /= fn
	s.FracBelow10us /= fn

	s.Min, s.Max = durs[0], durs[len(durs)-1]
	s.Mean = time.Duration(sum / fn)

	rank := func(p float64) time.Duration {
		r := int(math.Ceil(p*fn)) - 1
		if r < 0 {
			r = 0
		}
		if r >= n {
			r = n - 1
		}
		cum := 0
		for _, d := range durs {
			cum += hist[d]
			if r < cum {
				return d
			}
		}
		return durs[len(durs)-1]
	}
	s.Median = rank(0.50)
	s.P90 = rank(0.90)
	s.P95 = rank(0.95)
	s.P99 = rank(0.99)

	var varSum float64
	for _, d := range durs {
		diff := float64(d) - float64(s.Mean)
		for i := 0; i < hist[d]; i++ {
			varSum += diff * diff
		}
	}
	s.Std = time.Duration(math.Sqrt(varSum / fn))
	return s, true
}

// SortStats orders a stats overview by descending execution count,
// preserving the existing (name-sorted) order among equals — the §4.3.1
// overview ordering.
func SortStats(stats []CallStats) {
	sort.SliceStable(stats, func(i, j int) bool { return stats[i].Count > stats[j].Count })
}

// MovingFinding applies Equation 1 to one call's stats: a call dominated
// by executions shorter than the transition cost should be moved across
// the enclave boundary (ecalls: the SISC problem class; ocalls: SNC, with
// in-enclave duplication as the alternative). Sync ocalls are the SSC
// detector's business and never produce a moving finding.
func MovingFinding(s CallStats, w Weights) (Finding, bool) {
	if s.Count == 0 || (s.Kind == events.KindOcall && isSyncName(s.Name)) {
		return Finding{}, false
	}
	if !(s.FracBelow1us >= w.Move1 || s.FracBelow5us >= w.Move5 || s.FracBelow10us >= w.Move10) {
		return Finding{}, false
	}
	f := Finding{
		Call: s.Name,
		Kind: s.Kind,
		Evidence: fmt.Sprintf(
			"%d executions; %.0f%% <1µs, %.0f%% <5µs, %.0f%% <10µs (mean %v)",
			s.Count, s.FracBelow1us*100, s.FracBelow5us*100, s.FracBelow10us*100, s.Mean),
		Score: s.FracBelow10us * float64(s.Count),
	}
	if s.Kind == events.KindEcall {
		f.Problem = ProblemSISC
		f.Solutions = []Solution{SolutionBatch, SolutionMoveCaller}
		f.SecurityNote = "moving an ecall's code outside the enclave may expose sensitive data; perform a security evaluation first (§3.1)"
	} else {
		f.Problem = ProblemSNC
		f.Solutions = []Solution{SolutionReorder, SolutionMoveCaller, SolutionDuplicate}
		f.SecurityNote = "duplicating ocall functionality inside the enclave increases the TCB (§3.3)"
	}
	return f, true
}

// ReorderAgg accumulates the Equation 2 counters for one call name over
// its executions that have a direct parent.
type ReorderAgg struct {
	// Total counts executions with a known direct parent.
	Total int
	// S10/S20 count starts within the first 10µs / 10–20µs of the parent.
	S10, S20 int
	// E10/E20 count ends within the last 10µs / 10–20µs of the parent.
	E10, E20 int
}

// Add accumulates one execution's offsets from its direct parent:
// offsetStart is the distance from the parent's start to the call's
// start, offsetEnd from the call's end to the parent's end.
func (g *ReorderAgg) Add(offsetStart, offsetEnd time.Duration) {
	g.Total++
	switch {
	case offsetStart < micros(10):
		g.S10++
	case offsetStart < micros(20):
		g.S20++
	}
	switch {
	case offsetEnd >= 0 && offsetEnd < micros(10):
		g.E10++
	case offsetEnd >= 0 && offsetEnd < micros(20):
		g.E20++
	}
}

// ReorderFindings applies Equation 2 to one call's aggregate: nested
// calls issued in the first (or last) band of their direct parent can
// often execute before (or after) the parent instead, saving transitions
// without TCB changes.
func ReorderFindings(name string, kind events.CallKind, g ReorderAgg, w Weights) []Finding {
	if g.Total == 0 {
		return nil
	}
	n := float64(g.Total)
	startScore := float64(g.S10)/n*w.ReorderW10 + float64(g.S20)/n*w.ReorderW20
	endScore := float64(g.E10)/n*w.ReorderW10 + float64(g.E20)/n*w.ReorderW20
	var out []Finding
	report := func(where string, score float64, c10, c20 int) {
		out = append(out, Finding{
			Problem: ProblemSNC,
			Call:    name,
			Kind:    kind,
			Evidence: fmt.Sprintf(
				"%d/%d nested executions within %s 10µs (+%d within 20µs) of the parent (weighted score %.2f ≥ %.2f)",
				c10, g.Total, where, c20, score, w.ReorderThreshold),
			Solutions:    []Solution{SolutionReorder},
			SecurityNote: "",
			Score:        score,
		})
	}
	if startScore >= w.ReorderThreshold {
		report("the first", startScore, g.S10, g.S20)
	}
	if endScore >= w.ReorderThreshold {
		report("the last", endScore, g.E10, g.E20)
	}
	return out
}

// MergePair identifies one (indirect parent, call) name pair.
type MergePair struct {
	Parent, Child string
}

// MergeAgg accumulates the Equation 3 gap-band counters for one pair.
type MergeAgg struct {
	// Count is how often Parent was Child's indirect parent.
	Count int
	// G1/G5/G10/G20 bucket the parent-end→child-start gaps.
	G1, G5, G10, G20 int
}

// Add accumulates one occurrence with the given (non-negative) gap
// between the indirect parent's end and the call's start.
func (g *MergeAgg) Add(gap time.Duration) {
	g.Count++
	switch {
	case gap < micros(1):
		g.G1++
	case gap < micros(5):
		g.G5++
	case gap < micros(10):
		g.G10++
	case gap < micros(20):
		g.G20++
	}
}

// MergeFindings applies Equation 3 over all accumulated pairs. totalOf
// must report the total execution count of a call name and kindOf its
// kind. Batching is the special case of merging with the call being its
// own indirect parent (§4.3.2) and is reported as SISC. The output is
// ordered deterministically by pair name.
func MergeFindings(pairs map[MergePair]*MergeAgg, totalOf func(string) int, kindOf func(string) events.CallKind, w Weights) []Finding {
	keys := make([]MergePair, 0, len(pairs))
	for k := range pairs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Parent != keys[j].Parent {
			return keys[i].Parent < keys[j].Parent
		}
		return keys[i].Child < keys[j].Child
	})
	var out []Finding
	for _, k := range keys {
		agg := pairs[k]
		if isSyncName(k.Child) || isSyncName(k.Parent) {
			continue
		}
		childTotal := totalOf(k.Child)
		parentTotal := totalOf(k.Parent)
		if childTotal == 0 || parentTotal == 0 {
			continue
		}
		// λ: the parent must be the indirect parent of the call most of
		// the time.
		if float64(agg.Count)/float64(childTotal) < w.MergeMinPairFrac {
			continue
		}
		pn := float64(parentTotal)
		score := float64(agg.G1)/pn*w.MergeW1 +
			float64(agg.G5)/pn*w.MergeW5 +
			float64(agg.G10)/pn*w.MergeW10 +
			float64(agg.G20)/pn*w.MergeW20
		if score < w.MergeThreshold {
			continue
		}
		f := Finding{
			Call:    k.Child,
			Kind:    kindOf(k.Child),
			Partner: k.Parent,
			Evidence: fmt.Sprintf(
				"%d executions follow %s closely (gaps: %d<1µs, %d<5µs, %d<10µs, %d<20µs; weighted score %.2f ≥ %.2f)",
				agg.Count, k.Parent, agg.G1, agg.G5, agg.G10, agg.G20, score, w.MergeThreshold),
			Score: score,
		}
		if k.Parent == k.Child {
			f.Problem = ProblemSISC
			f.Solutions = []Solution{SolutionBatch, SolutionMoveCaller}
		} else {
			f.Problem = ProblemSDSC
			f.Solutions = []Solution{SolutionMerge, SolutionMoveCaller}
		}
		out = append(out, f)
	}
	return out
}

// SyncAgg accumulates the §4.1.3 sleep/wake counters for the SSC
// detector.
type SyncAgg struct {
	// Total is the number of sync events recorded.
	Total int
	// Sleeps and Wakes count the two event kinds.
	Sleeps, Wakes int
	// ShortWakes counts wake-ups whose carrying ocall ran shorter than
	// Weights.SyncShortLimit.
	ShortWakes int
}

// SSCFindings applies the §3.4 rule: frequent short wake-ups indicate
// short critical sections where leaving the enclave to sleep is wasteful.
func SSCFindings(g SyncAgg, w Weights) []Finding {
	if g.Total < w.SyncMinOcalls {
		return nil
	}
	if g.Wakes == 0 && g.Sleeps == 0 {
		return nil
	}
	return []Finding{{
		Problem: ProblemSSC,
		Call:    "sdk synchronisation",
		Kind:    events.KindOcall,
		Evidence: fmt.Sprintf(
			"%d sync ocall events: %d sleeps, %d wake-ups (%d wake-ups <%v)",
			g.Total, g.Sleeps, g.Wakes, g.ShortWakes, w.SyncShortLimit),
		Solutions:    []Solution{SolutionHybridLock, SolutionLockFree},
		SecurityNote: "",
		Score:        float64(g.Total),
	}}
}

// PagingFindings applies the §3.5 rule to a paging summary: every
// page-out requires re-encryption and every fault an AEX, so enclaves
// should rarely page.
func PagingFindings(p PagingStats, w Weights) []Finding {
	if p.PageIns+p.PageOuts < w.PagingMinEvents {
		return nil
	}
	return []Finding{{
		Problem: ProblemPaging,
		Call:    "enclave memory",
		Evidence: fmt.Sprintf(
			"%d page-ins, %d page-outs (%d during calls)",
			p.PageIns, p.PageOuts, p.DuringCalls),
		Solutions: []Solution{SolutionReduceMemory, SolutionPreloadPages, SolutionSelfPaging},
		Score:     float64(p.PageIns + p.PageOuts),
	}}
}

// WakeEdges turns an accumulated (from thread, to thread) → count map
// into the sorted wake-graph edge list of §4.1.3: descending count, then
// by thread pair.
func WakeEdges(agg map[[2]int64]int) []WakeEdge {
	out := make([]WakeEdge, 0, len(agg))
	for k, n := range agg {
		out = append(out, WakeEdge{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// SortFindings orders findings for a report: by problem class, then
// descending score, then by call name, partner, kind and evidence text.
// Every comparison key is part of the order, so the result is one total
// order that does not depend on how (or in what order, or on how many
// goroutines) the findings were produced — the property the parallel
// pipeline's merge relies on.
func SortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Problem != fs[j].Problem {
			return fs[i].Problem < fs[j].Problem
		}
		if fs[i].Score != fs[j].Score {
			return fs[i].Score > fs[j].Score
		}
		if fs[i].Call != fs[j].Call {
			return fs[i].Call < fs[j].Call
		}
		if fs[i].Partner != fs[j].Partner {
			return fs[i].Partner < fs[j].Partner
		}
		if fs[i].Kind != fs[j].Kind {
			return fs[i].Kind < fs[j].Kind
		}
		return fs[i].Evidence < fs[j].Evidence
	})
}
