package analyzer

import (
	"context"
	"errors"
	"reflect"
	"testing"
)

// TestAnalyzeContextUncancelled proves the context variant is a pure
// extension: with a background context both pipelines produce exactly
// Analyze's report.
func TestAnalyzeContextUncancelled(t *testing.T) {
	trace := goldenTrace(t, 7, 400)
	for _, serial := range []bool{false, true} {
		a, err := New(trace, Options{Serial: serial})
		if err != nil {
			t.Fatal(err)
		}
		want := a.Analyze()
		got, err := a.AnalyzeContext(context.Background())
		if err != nil {
			t.Fatalf("serial=%v: AnalyzeContext = %v", serial, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("serial=%v: AnalyzeContext diverged from Analyze", serial)
		}
	}
}

// TestAnalyzeContextCancelled proves a done context aborts both
// pipelines with ctx.Err() and a nil report.
func TestAnalyzeContextCancelled(t *testing.T) {
	trace := goldenTrace(t, 7, 400)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, serial := range []bool{false, true} {
		a, err := New(trace, Options{Serial: serial})
		if err != nil {
			t.Fatal(err)
		}
		r, err := a.AnalyzeContext(ctx)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("serial=%v: err = %v, want context.Canceled", serial, err)
		}
		if r != nil {
			t.Errorf("serial=%v: cancelled analysis returned a report", serial)
		}
	}
}
