package analyzer

import (
	"fmt"
	"sort"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/events"
)

// SecurityHintKind classifies the three interface hardenings of §3.6.
type SecurityHintKind int

const (
	// HintMakePrivate suggests declaring an ecall private because it was
	// only ever issued during ocalls.
	HintMakePrivate SecurityHintKind = iota + 1
	// HintShrinkAllow lists allow-list entries never exercised.
	HintShrinkAllow
	// HintUserCheck flags user_check pointer parameters.
	HintUserCheck
	// HintMinimalAllow states the smallest observed allow set when no EDL
	// is available.
	HintMinimalAllow
)

// String names the hint kind.
func (k SecurityHintKind) String() string {
	switch k {
	case HintMakePrivate:
		return "make-private"
	case HintShrinkAllow:
		return "shrink-allow"
	case HintUserCheck:
		return "user-check"
	case HintMinimalAllow:
		return "minimal-allow"
	default:
		return "unknown"
	}
}

// SecurityHint is one enclave-interface recommendation (§4.3.2). Hints
// derived from observed calls are workload-dependent, as the paper notes.
type SecurityHint struct {
	Kind SecurityHintKind
	// Call is the ecall (make-private, user-check) or ocall (allow hints)
	// concerned.
	Call string
	// Names carries the related call names: the ocalls that must be
	// allowed to call a newly private ecall, the removable allow entries,
	// or the minimal allow set.
	Names []string
	Text  string
}

// SecurityHints computes all interface hints from the trace (and the EDL,
// when available).
func (a *Analyzer) SecurityHints() []SecurityHint {
	var out []SecurityHint
	out = append(out, a.privateCandidates()...)
	out = append(out, a.allowHints()...)
	out = append(out, a.userCheckHints()...)
	return out
}

// privateCandidates finds ecalls whose every instance has a direct parent
// (i.e. was issued during an ocall): those can be declared private,
// limiting the paths into the enclave (§4.3.2).
func (a *Analyzer) privateCandidates() []SecurityHint {
	byID := make(map[events.EventID]string)
	for i := range a.all {
		byID[a.all[i].ev.ID] = a.all[i].ev.Name
	}
	var out []SecurityHint
	for _, name := range a.perNames {
		if a.kindOf(name) != events.KindEcall {
			continue
		}
		if a.iface != nil {
			if f, ok := a.iface.Lookup(name); ok && !f.Public {
				continue // already private
			}
		}
		calls := a.callsNamed(name)
		parentOcalls := make(map[string]bool)
		allNested := true
		for _, c := range calls {
			if c.ev.Parent == events.NoEvent {
				allNested = false
				break
			}
			if pn, ok := byID[c.ev.Parent]; ok {
				parentOcalls[pn] = true
			}
		}
		if !allNested || len(calls) == 0 {
			continue
		}
		out = append(out, makePrivateHint(name, sortedKeys(parentOcalls)))
	}
	return out
}

// makePrivateHint renders one make-private hint; shared by the resident
// scan and the streaming fold's assembly.
func makePrivateHint(name string, parents []string) SecurityHint {
	return SecurityHint{
		Kind:  HintMakePrivate,
		Call:  name,
		Names: parents,
		Text: fmt.Sprintf(
			"ecall %s was only issued during ocalls; declare it private and allow it from: %v (workload-dependent)",
			name, parents),
	}
}

// allowHints compares declared allow lists with the ecalls actually issued
// during each ocall. With an EDL it reports removable entries; without,
// it states the smallest observed set (§4.3.2).
func (a *Analyzer) allowHints() []SecurityHint {
	byID := make(map[events.EventID]string)
	for i := range a.all {
		byID[a.all[i].ev.ID] = a.all[i].ev.Name
	}
	// observed[ocall] = set of nested ecall names
	observed := make(map[string]map[string]bool)
	for i := range a.all {
		c := &a.all[i]
		if c.ev.Kind != events.KindEcall || c.ev.Parent == events.NoEvent {
			continue
		}
		pn, ok := byID[c.ev.Parent]
		if !ok {
			continue
		}
		if observed[pn] == nil {
			observed[pn] = make(map[string]bool)
		}
		observed[pn][c.ev.Name] = true
	}
	return allowHintsFrom(a.iface, observed, func(name string) int { return len(a.byName[name]) })
}

// allowHintsFrom renders the allow-list hints from the observed
// ocall→ecall nesting sets; shared by the resident scan and the
// streaming fold's assembly. totalOf reports a call name's execution
// count so undeclared-but-unexercised ocalls are not judged.
func allowHintsFrom(iface *edl.Interface, observed map[string]map[string]bool, totalOf func(string) int) []SecurityHint {
	var out []SecurityHint
	if iface == nil {
		for _, ocall := range sortedKeys2(observed) {
			set := sortedKeys(observed[ocall])
			out = append(out, SecurityHint{
				Kind:  HintMinimalAllow,
				Call:  ocall,
				Names: set,
				Text:  fmt.Sprintf("no EDL provided; smallest allow set observed for ocall %s: %v", ocall, set),
			})
		}
		return out
	}
	for _, o := range iface.Ocalls() {
		if len(o.Allow) == 0 {
			continue
		}
		// Only judge ocalls the workload exercised.
		if totalOf(o.Name) == 0 {
			continue
		}
		var removable []string
		for _, allowed := range o.Allow {
			if !observed[o.Name][allowed] {
				removable = append(removable, allowed)
			}
		}
		if len(removable) == 0 {
			continue
		}
		sort.Strings(removable)
		out = append(out, SecurityHint{
			Kind:  HintShrinkAllow,
			Call:  o.Name,
			Names: removable,
			Text: fmt.Sprintf(
				"ocall %s allows ecalls never observed during it; consider removing: %v",
				o.Name, removable),
		})
	}
	return out
}

// userCheckHints highlights calls with user_check pointers so developers
// re-verify their pointer handling (§3.6).
func (a *Analyzer) userCheckHints() []SecurityHint {
	return userCheckHintsFor(a.iface)
}

// userCheckHintsFor derives the user_check hints from the interface
// alone; shared by the resident scan and the streaming fold's assembly.
func userCheckHintsFor(iface *edl.Interface) []SecurityHint {
	if iface == nil {
		return nil
	}
	var out []SecurityHint
	flag := func(f *edl.Func) {
		var params []string
		for _, p := range f.Params {
			if p.Dir == edl.DirUserCheck {
				params = append(params, p.Name)
			}
		}
		if len(params) == 0 {
			return
		}
		out = append(out, SecurityHint{
			Kind:  HintUserCheck,
			Call:  f.Name,
			Names: params,
			Text: fmt.Sprintf(
				"%s %s passes user_check pointers %v: verify bounds, TOCTTOU and enclave-address checks (§3.6)",
				f.Kind, f.Name, params),
		})
	}
	for _, f := range iface.Ecalls() {
		flag(f)
	}
	for _, f := range iface.Ocalls() {
		flag(f)
	}
	return out
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func sortedKeys2(m map[string]map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
