package analyzer

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sgxperf/internal/perf/events"
)

// Comparing two traces is the paper's workflow in §5.2: record a
// baseline, apply a recommendation, record again, and check that the
// transitions went away. Compare aligns two analysed traces by call name
// and reports the deltas.

// CompareRow is one call's before/after numbers.
type CompareRow struct {
	Name string
	Kind events.CallKind
	// Counts and mean execution times in each trace (zero when absent).
	CountA, CountB int
	MeanA, MeanB   time.Duration
	// TotalA/TotalB approximate the call's aggregate execution time.
	TotalA, TotalB time.Duration
}

// Comparison is the result of Compare.
type Comparison struct {
	WorkloadA, WorkloadB string
	Rows                 []CompareRow
	// CallsA/CallsB are total call events — each one is an enclave
	// transition round trip, the quantity the recommendations minimise.
	CallsA, CallsB int
}

// Compare aligns two analysers' statistics by call name.
func Compare(a, b *Analyzer) *Comparison {
	out := &Comparison{WorkloadA: a.workload(), WorkloadB: b.workload()}
	rows := make(map[string]*CompareRow)
	row := func(name string, kind events.CallKind) *CompareRow {
		r, ok := rows[name]
		if !ok {
			r = &CompareRow{Name: name, Kind: kind}
			rows[name] = r
		}
		return r
	}
	for _, s := range a.AllStats() {
		r := row(s.Name, s.Kind)
		r.CountA = s.Count
		r.MeanA = s.Mean
		r.TotalA = time.Duration(s.Count) * s.Mean
		out.CallsA += s.Count
	}
	for _, s := range b.AllStats() {
		r := row(s.Name, s.Kind)
		r.CountB = s.Count
		r.MeanB = s.Mean
		r.TotalB = time.Duration(s.Count) * s.Mean
		out.CallsB += s.Count
	}
	for _, r := range rows {
		out.Rows = append(out.Rows, *r)
	}
	sort.Slice(out.Rows, func(i, j int) bool {
		ti := out.Rows[i].TotalA + out.Rows[i].TotalB
		tj := out.Rows[j].TotalA + out.Rows[j].TotalB
		if ti != tj {
			return ti > tj
		}
		return out.Rows[i].Name < out.Rows[j].Name
	})
	return out
}

// TransitionsSaved returns how many call events (≈ transition round
// trips) the second trace avoids relative to the first.
func (c *Comparison) TransitionsSaved() int { return c.CallsA - c.CallsB }

// Render formats the comparison.
func (c *Comparison) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== trace comparison: %s vs %s ==\n",
		orUnnamed(c.WorkloadA), orUnnamed(c.WorkloadB))
	fmt.Fprintf(&b, "call events: %d -> %d (%+d transitions", c.CallsA, c.CallsB, c.CallsB-c.CallsA)
	if c.CallsA > 0 {
		fmt.Fprintf(&b, ", %.1f%%", float64(c.CallsB-c.CallsA)/float64(c.CallsA)*100)
	}
	b.WriteString(")\n\n")
	fmt.Fprintf(&b, "%-44s %5s %9s %9s %10s %10s\n",
		"call", "kind", "count A", "count B", "mean A", "mean B")
	for _, r := range c.Rows {
		fmt.Fprintf(&b, "%-44s %5s %9d %9d %10s %10s\n",
			truncate(r.Name, 44), r.Kind, r.CountA, r.CountB, short(r.MeanA), short(r.MeanB))
	}
	return b.String()
}
