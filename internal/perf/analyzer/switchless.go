package analyzer

import (
	"sort"
	"time"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/pool"
	"sgxperf/internal/vtime"
)

// SwitchlessCallStats summarises one call name's switchless activity.
type SwitchlessCallStats struct {
	Name string
	Kind events.CallKind
	// Served counts calls serviced by a pool worker, Fallbacks calls
	// that took the regular transition path because the queue was full.
	Served    int
	Fallbacks int
	// AvgWait is the mean submit→collect latency of served calls.
	AvgWait time.Duration
}

// SwitchlessStats summarises the switchless runtime's activity in a
// trace: the served/fallback totals the blind-spot fix makes visible.
type SwitchlessStats struct {
	Served    int
	Fallbacks int
	// Calls holds the per-name rows, sorted by name.
	Calls []SwitchlessCallStats
}

// SwitchlessAgg is the integer accumulator behind SwitchlessCallStats.
// Every pipeline — serial, chunk-sharded parallel, and the live
// collector — folds events into the same accumulator and renders it
// with SwitchlessStatsFrom, so their outputs are identical by
// construction (integer sums commute).
type SwitchlessAgg struct {
	Kind       events.CallKind
	Served     int
	Fallbacks  int
	WaitCycles vtime.Cycles
}

// SwitchlessFold folds one event into a per-name aggregate map.
func SwitchlessFold(agg map[string]*SwitchlessAgg, ev *events.SwitchlessEvent) {
	a := agg[ev.Name]
	if a == nil {
		a = &SwitchlessAgg{Kind: ev.Kind}
		agg[ev.Name] = a
	}
	if ev.Fallback {
		a.Fallbacks++
		return
	}
	a.Served++
	a.WaitCycles += ev.End - ev.Start
}

// SwitchlessStatsFrom renders per-name aggregates into the final stats.
// Only integer arithmetic (the mean is an integer cycle division), so
// identical aggregates give identical stats regardless of fold order.
func SwitchlessStatsFrom(agg map[string]*SwitchlessAgg, freq vtime.Frequency) SwitchlessStats {
	var out SwitchlessStats
	names := make([]string, 0, len(agg))
	for n := range agg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		a := agg[n]
		out.Served += a.Served
		out.Fallbacks += a.Fallbacks
		row := SwitchlessCallStats{Name: n, Kind: a.Kind, Served: a.Served, Fallbacks: a.Fallbacks}
		if a.Served > 0 {
			row.AvgWait = freq.Duration(a.WaitCycles / vtime.Cycles(a.Served))
		}
		out.Calls = append(out.Calls, row)
	}
	return out
}

// SwitchlessSummary aggregates the trace's switchless events — the
// serial reference kernel.
func (a *Analyzer) SwitchlessSummary() SwitchlessStats {
	agg := make(map[string]*SwitchlessAgg)
	a.trace.Switchless.Scan(func(_ int, ev events.SwitchlessEvent) bool {
		SwitchlessFold(agg, &ev)
		return true
	})
	return SwitchlessStatsFrom(agg, a.trace.Frequency())
}

// switchlessSummarySharded computes the same stats with the table
// sharded by storage chunk; per-name sums are integers, so the merged
// aggregates equal the serial kernel's exactly.
//
//sgxperf:hotpath
func (a *Analyzer) switchlessSummarySharded() SwitchlessStats {
	var chunks [][]events.SwitchlessEvent
	a.trace.Switchless.ScanChunks(func(rows []events.SwitchlessEvent) bool {
		if len(rows) > 0 {
			chunks = append(chunks, rows)
		}
		return true
	})
	if len(chunks) == 0 {
		return SwitchlessStatsFrom(nil, a.trace.Frequency())
	}
	parts := make([]map[string]*SwitchlessAgg, len(chunks))
	pool.ForEach(len(chunks), func(ci int) {
		agg := make(map[string]*SwitchlessAgg)
		for i := range chunks[ci] {
			SwitchlessFold(agg, &chunks[ci][i])
		}
		parts[ci] = agg
	})
	merged := make(map[string]*SwitchlessAgg)
	for _, part := range parts {
		for name, p := range part {
			m := merged[name]
			if m == nil {
				merged[name] = p
				continue
			}
			m.Served += p.Served
			m.Fallbacks += p.Fallbacks
			m.WaitCycles += p.WaitCycles
		}
	}
	return SwitchlessStatsFrom(merged, a.trace.Frequency())
}
