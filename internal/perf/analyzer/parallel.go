package analyzer

// The parallel analysis pipeline. Analyze partitions the prepared call
// index by call-name and the paging/sync tables by storage chunk, runs
// every kernel on the shared bounded worker pool (internal/pool), and
// merges the partial results deterministically.
//
// Determinism argument (why the parallel report is reflect.DeepEqual to
// the serial one):
//
//   - per-name kernels (stats, Equation 1 moving, Equation 2 reordering,
//     Equation 3 pair accumulation) read only that name's calls, so the
//     partition is exact, and each kernel is the same pure function the
//     serial path calls;
//   - cross-partition aggregates (merge pair counters, paging counters,
//     wake edge counts) are integer sums, which commute — no
//     floating-point accumulation ever crosses a partition boundary, so
//     scheduling order cannot perturb a single bit;
//   - partial results land in slots indexed by partition (never appended
//     concurrently), and the final report is assembled from those slots
//     in the serial pipeline's exact order before the same stable sorts
//     (SortStats, SortFindings) run over them.
//
// The only intentional divergence from the serial code is the paging
// summary's DuringCalls test: the serial path scans every call per
// paging event, the parallel path answers the same ∃-question from a
// per-thread interval index (sorted starts + prefix-max ends) in
// O(log n). Both compute "is there a call on this thread whose window
// contains the event", so the counts agree.

import (
	"context"
	"sort"
	"time"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/pool"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// nameResult holds one call-name partition's kernel outputs.
type nameResult struct {
	stats   CallStats
	ok      bool
	moving  []Finding
	reorder []Finding
	// pairs are the Equation 3 accumulators for pairs whose *child* is
	// this partition's name; child names are unique per partition, so the
	// per-partition maps have disjoint key sets and merge by copy.
	pairs map[MergePair]*MergeAgg
}

// analyzeParallel produces the full report with every kernel running
// concurrently on the shared pool. Cancellation is observed between
// kernels and between per-name partitions: a cancelled run returns nil
// instead of assembling a partial report.
func (a *Analyzer) analyzeParallel(ctx context.Context) *Report {
	var (
		res      = make([]nameResult, len(a.perNames))
		graph    *CallGraph
		paging   PagingStats
		wake     []WakeEdge
		sless    SwitchlessStats
		sscF     []Finding
		security []SecurityHint
	)
	live := func(f func()) func() {
		return func() {
			if ctx.Err() == nil {
				f()
			}
		}
	}
	pool.Do(
		live(func() { graph = a.CallGraph() }),
		live(func() { paging = a.pagingSummaryIndexed() }),
		live(func() { wake = a.wakeGraphSharded() }),
		live(func() { sless = a.switchlessSummarySharded() }),
		live(func() { sscF = a.DetectSSC() }),
		live(func() { security = a.SecurityHints() }),
		func() {
			pool.ForEachCtx(ctx, len(a.perNames), func(i int) {
				res[i] = a.nameKernels(a.perNames[i])
			})
		},
	)
	if ctx.Err() != nil {
		return nil
	}

	// Deterministic merge, mirroring the serial pipeline's order exactly.
	r := &Report{
		Workload:   a.workload(),
		Graph:      graph,
		Paging:     paging,
		WakeGraph:  wake,
		Switchless: sless,
	}
	r.Stats = make([]CallStats, 0, len(a.perNames))
	for i := range res {
		if res[i].ok {
			r.Stats = append(r.Stats, res[i].stats)
		}
	}
	SortStats(r.Stats)

	for i := range res {
		r.Findings = append(r.Findings, res[i].moving...)
	}
	for i := range res {
		r.Findings = append(r.Findings, res[i].reorder...)
	}
	pairs := make(map[MergePair]*MergeAgg)
	for i := range res {
		for k, agg := range res[i].pairs {
			pairs[k] = agg
		}
	}
	totalOf := func(name string) int { return len(a.byName[name]) }
	r.Findings = append(r.Findings, MergeFindings(pairs, totalOf, a.kindOf, a.opts.Weights)...)
	r.Findings = append(r.Findings, sscF...)
	r.Findings = append(r.Findings, PagingFindings(paging, a.opts.Weights)...)
	SortFindings(r.Findings)
	r.Security = security
	return r
}

// nameKernels runs the per-name kernels — stats, Equation 1, Equation 2
// and the Equation 3 pair accumulation — over one call-name partition.
// It reads only prepared (immutable) state and writes only its own
// result, so partitions need no synchronisation beyond pool completion.
//
//sgxperf:hotpath
func (a *Analyzer) nameKernels(name string) nameResult {
	var out nameResult
	idx := a.byName[name]
	if len(idx) == 0 {
		return out
	}
	kind := a.all[idx[0]].ev.Kind

	durs := make([]time.Duration, len(idx))
	totalAEX := 0
	var reorder ReorderAgg
	for i, j := range idx {
		c := &a.all[j]
		durs[i] = c.adjusted
		totalAEX += c.ev.AEXCount
		if c.hasDirect {
			reorder.Add(c.offsetStart, c.offsetEnd)
		}
		if c.indirect >= 0 {
			k := MergePair{Parent: a.all[c.indirect].ev.Name, Child: name}
			if out.pairs == nil {
				out.pairs = make(map[MergePair]*MergeAgg)
			}
			agg := out.pairs[k]
			if agg == nil {
				agg = &MergeAgg{}
				out.pairs[k] = agg
			}
			agg.Add(c.gap)
		}
	}

	out.stats, out.ok = StatsFromDurations(name, kind, durs, totalAEX)
	if out.ok {
		if f, ok := MovingFinding(out.stats, a.opts.Weights); ok {
			out.moving = append(out.moving, f)
		}
	}
	out.reorder = ReorderFindings(name, kind, reorder, a.opts.Weights)
	return out
}

// callIntervals is a per-thread index over the prepared calls answering
// "does any call window on thread t contain time x" in O(log n): starts
// are sorted (a.all is start-ordered) and maxEnd[i] is the running
// maximum of End over starts[0..i], so an interval containing x exists
// iff the last interval starting at or before x has maxEnd >= x.
type callIntervals struct {
	byThread map[sgx.ThreadID]*threadIntervals
}

type threadIntervals struct {
	starts []vtime.Cycles
	maxEnd []vtime.Cycles
}

func (a *Analyzer) buildCallIntervals() *callIntervals {
	idx := &callIntervals{byThread: make(map[sgx.ThreadID]*threadIntervals)}
	for i := range a.all {
		ev := &a.all[i].ev
		ti := idx.byThread[ev.Thread]
		if ti == nil {
			ti = &threadIntervals{}
			idx.byThread[ev.Thread] = ti
		}
		end := ev.End
		if n := len(ti.maxEnd); n > 0 && ti.maxEnd[n-1] > end {
			end = ti.maxEnd[n-1]
		}
		ti.starts = append(ti.starts, ev.Start)
		ti.maxEnd = append(ti.maxEnd, end)
	}
	return idx
}

// contains reports whether any call on the thread spans time x.
//
//sgxperf:hotpath
func (ci *callIntervals) contains(thread sgx.ThreadID, x vtime.Cycles) bool {
	ti := ci.byThread[thread]
	if ti == nil {
		return false
	}
	// Last interval with Start <= x.
	k := sort.Search(len(ti.starts), func(i int) bool { return ti.starts[i] > x }) - 1
	return k >= 0 && ti.maxEnd[k] >= x
}

// pagingSummaryIndexed computes the same PagingStats as PagingSummary,
// sharding the paging table by storage chunk across the pool and
// answering the during-call test from the interval index. All counters
// are integers, so the shard merge is order-independent.
//
//sgxperf:hotpath
func (a *Analyzer) pagingSummaryIndexed() PagingStats {
	out := PagingStats{ByRegion: make(map[string]int)}
	var chunks [][]events.PagingEvent
	a.trace.Paging.ScanChunks(func(rows []events.PagingEvent) bool {
		if len(rows) > 0 {
			chunks = append(chunks, rows)
		}
		return true
	})
	if len(chunks) == 0 {
		return out
	}
	intervals := a.buildCallIntervals()
	parts := make([]PagingStats, len(chunks))
	pool.ForEach(len(chunks), func(ci int) {
		p := PagingStats{ByRegion: make(map[string]int)}
		for i := range chunks[ci] {
			ev := &chunks[ci][i]
			if ev.Kind == events.PageIn {
				p.PageIns++
			} else {
				p.PageOuts++
			}
			p.ByRegion[ev.PageKind]++
			if intervals.contains(ev.Thread, ev.Time) {
				p.DuringCalls++
			}
		}
		parts[ci] = p
	})
	for i := range parts {
		out.PageIns += parts[i].PageIns
		out.PageOuts += parts[i].PageOuts
		out.DuringCalls += parts[i].DuringCalls
		for region, n := range parts[i].ByRegion {
			out.ByRegion[region] += n
		}
	}
	return out
}

// wakeGraphSharded computes the same wake graph as WakeGraph, sharding
// the sync table by storage chunk; edge counts are integer sums and
// WakeEdges sorts the merged map, so the output is deterministic.
//
//sgxperf:hotpath
func (a *Analyzer) wakeGraphSharded() []WakeEdge {
	var chunks [][]events.SyncEvent
	a.trace.Syncs.ScanChunks(func(rows []events.SyncEvent) bool {
		if len(rows) > 0 {
			chunks = append(chunks, rows)
		}
		return true
	})
	if len(chunks) == 0 {
		return WakeEdges(nil)
	}
	parts := make([]map[[2]int64]int, len(chunks))
	pool.ForEach(len(chunks), func(ci int) {
		agg := make(map[[2]int64]int)
		for i := range chunks[ci] {
			s := &chunks[ci][i]
			if s.Kind != events.SyncWake {
				continue
			}
			for _, t := range s.Targets {
				agg[[2]int64{int64(s.Thread), int64(t)}]++
			}
		}
		parts[ci] = agg
	})
	merged := make(map[[2]int64]int)
	for _, part := range parts {
		for k, n := range part {
			merged[k] += n
		}
	}
	return WakeEdges(merged)
}
