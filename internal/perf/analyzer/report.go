package analyzer

import (
	"fmt"
	"strings"
	"time"
)

// Report is the analyser's full output for one trace.
type Report struct {
	Workload  string
	Stats     []CallStats
	Findings  []Finding
	Security  []SecurityHint
	Paging    PagingStats
	WakeGraph []WakeEdge
	// Switchless summarises the switchless runtime's synthetic events —
	// calls that bypass the interposable paths entirely.
	Switchless SwitchlessStats
	Graph      *CallGraph
}

// TotalCalls sums recorded executions over all calls.
func (r *Report) TotalCalls() int {
	n := 0
	for _, s := range r.Stats {
		n += s.Count
	}
	return n
}

// FindingsFor returns the findings concerning one call name.
func (r *Report) FindingsFor(call string) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Call == call {
			out = append(out, f)
		}
	}
	return out
}

// HasProblem reports whether any finding of the given problem class
// exists.
func (r *Report) HasProblem(p Problem) bool {
	for _, f := range r.Findings {
		if f.Problem == p {
			return true
		}
	}
	return false
}

// Render produces the human-readable report the sgx-perf analyser prints:
// general statistics, detected problems with ranked recommendations
// (reordering first — it does not grow the TCB, §4.3.2), and security
// hints. The developer remains responsible for checking applicability.
func (r *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== sgx-perf analysis: %s ==\n\n", orUnnamed(r.Workload))

	fmt.Fprintf(&b, "-- general statistics (%d calls) --\n", r.TotalCalls())
	fmt.Fprintf(&b, "%-44s %5s %9s %9s %9s %9s %9s %9s %9s\n",
		"call", "kind", "count", "mean", "median", "stddev", "p90", "p95", "p99")
	for _, s := range r.Stats {
		fmt.Fprintf(&b, "%-44s %5s %9d %9s %9s %9s %9s %9s %9s\n",
			truncate(s.Name, 44), s.Kind, s.Count,
			short(s.Mean), short(s.Median), short(s.Std),
			short(s.P90), short(s.P95), short(s.P99))
	}
	b.WriteString("\n")

	if len(r.Findings) == 0 {
		b.WriteString("-- no performance problems detected --\n")
	} else {
		fmt.Fprintf(&b, "-- detected problems (%d) --\n", len(r.Findings))
		for _, f := range r.Findings {
			fmt.Fprintf(&b, "* [%s] %s", f.Problem, f.Call)
			if f.Partner != "" && f.Partner != f.Call {
				fmt.Fprintf(&b, " (with %s)", f.Partner)
			}
			fmt.Fprintf(&b, "\n    evidence: %s\n", f.Evidence)
			sols := make([]string, len(f.Solutions))
			for i, s := range f.Solutions {
				sols[i] = s.String()
			}
			fmt.Fprintf(&b, "    recommendations (in priority order): %s\n", strings.Join(sols, "; "))
			if f.SecurityNote != "" {
				fmt.Fprintf(&b, "    note: %s\n", f.SecurityNote)
			}
		}
	}
	b.WriteString("\n")

	if r.Paging.PageIns+r.Paging.PageOuts > 0 {
		fmt.Fprintf(&b, "-- paging --\n%d page-ins, %d page-outs (%d during calls)\n",
			r.Paging.PageIns, r.Paging.PageOuts, r.Paging.DuringCalls)
		for region, n := range r.Paging.ByRegion {
			fmt.Fprintf(&b, "    %-8s %d\n", region, n)
		}
		b.WriteString("\n")
	}

	if r.Switchless.Served+r.Switchless.Fallbacks > 0 {
		fmt.Fprintf(&b, "-- switchless calls --\n%d served by workers, %d fell back to transitions\n",
			r.Switchless.Served, r.Switchless.Fallbacks)
		for _, c := range r.Switchless.Calls {
			fmt.Fprintf(&b, "    %-40s %5s %8d served %6d fallback  avg wait %s\n",
				truncate(c.Name, 40), c.Kind, c.Served, c.Fallbacks, short(c.AvgWait))
		}
		b.WriteString("\n")
	}

	if len(r.WakeGraph) > 0 {
		b.WriteString("-- thread wake-up dependencies --\n")
		for _, e := range r.WakeGraph {
			fmt.Fprintf(&b, "    thread %d -> thread %d: %d wake-ups\n", e.From, e.To, e.Count)
		}
		b.WriteString("\n")
	}

	if len(r.Security) > 0 {
		fmt.Fprintf(&b, "-- security hints (%d) --\n", len(r.Security))
		for _, h := range r.Security {
			fmt.Fprintf(&b, "* [%s] %s\n", h.Kind, h.Text)
		}
		b.WriteString("\n")
	}
	return b.String()
}

func orUnnamed(s string) string {
	if s == "" {
		return "(unnamed workload)"
	}
	return s
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-1] + "…"
}

// short renders durations compactly with µs precision below 1ms.
func short(d time.Duration) string {
	switch {
	case d < time.Millisecond:
		return fmt.Sprintf("%.2fµs", float64(d)/float64(time.Microsecond))
	case d < time.Second:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	default:
		return fmt.Sprintf("%.2fs", d.Seconds())
	}
}
