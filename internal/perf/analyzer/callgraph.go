package analyzer

import (
	"fmt"
	"sort"
	"strings"

	"sgxperf/internal/perf/events"
)

// GraphNode is one call in the graph (Fig. 5: square = ecall, round =
// ocall; the bracketed number is the call ID).
type GraphNode struct {
	Name   string
	Kind   events.CallKind
	CallID int
	Count  int
}

// GraphEdge connects a parent call to a call issued under it. Direct
// edges (solid arrows in Fig. 5) link direct parents; indirect edges
// (dashed) link indirect parents.
type GraphEdge struct {
	From, To string
	Count    int
	Indirect bool
}

// CallGraph is the application's call-pattern graph (§4.3.1).
type CallGraph struct {
	Nodes []GraphNode
	Edges []GraphEdge
}

// CallGraph builds the graph over all recorded calls.
func (a *Analyzer) CallGraph() *CallGraph {
	g := &CallGraph{}
	for _, name := range a.perNames {
		calls := a.callsNamed(name)
		g.Nodes = append(g.Nodes, GraphNode{
			Name:   name,
			Kind:   calls[0].ev.Kind,
			CallID: calls[0].ev.CallID,
			Count:  len(calls),
		})
	}
	type edgeKey struct {
		from, to string
		indirect bool
	}
	agg := make(map[edgeKey]int)
	byID := make(map[events.EventID]string, len(a.all))
	for i := range a.all {
		byID[a.all[i].ev.ID] = a.all[i].ev.Name
	}
	for i := range a.all {
		c := &a.all[i]
		if c.ev.Parent != events.NoEvent {
			if pn, ok := byID[c.ev.Parent]; ok {
				agg[edgeKey{pn, c.ev.Name, false}]++
			}
		}
		if c.indirect >= 0 {
			agg[edgeKey{a.all[c.indirect].ev.Name, c.ev.Name, true}]++
		}
	}
	for k, n := range agg {
		g.Edges = append(g.Edges, GraphEdge{From: k.from, To: k.to, Count: n, Indirect: k.indirect})
	}
	sortGraphEdges(g.Edges)
	return g
}

// sortGraphEdges fixes the edge order of a rendered graph: by (From,
// To), direct before indirect. Shared by the resident builder and the
// streaming fold's assembly.
func sortGraphEdges(edges []GraphEdge) {
	sort.Slice(edges, func(i, j int) bool {
		a, b := edges[i], edges[j]
		if a.From != b.From {
			return a.From < b.From
		}
		if a.To != b.To {
			return a.To < b.To
		}
		return !a.Indirect && b.Indirect
	})
}

// Node returns the named node, if present.
func (g *CallGraph) Node(name string) (GraphNode, bool) {
	for _, n := range g.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return GraphNode{}, false
}

// EdgeCount returns the count on the (from, to, indirect) edge, or 0.
func (g *CallGraph) EdgeCount(from, to string, indirect bool) int {
	for _, e := range g.Edges {
		if e.From == from && e.To == to && e.Indirect == indirect {
			return e.Count
		}
	}
	return 0
}

// DOT renders the graph in Graphviz format, styled like Fig. 5: square
// boxes for ecalls, ellipses for ocalls, solid edges for direct parents,
// dashed for indirect parents, edge labels carrying call counts.
func (g *CallGraph) DOT() string {
	var b strings.Builder
	b.WriteString("digraph calls {\n")
	b.WriteString("    rankdir=TB;\n")
	ids := make(map[string]string, len(g.Nodes))
	for i, n := range g.Nodes {
		id := fmt.Sprintf("n%d", i)
		ids[n.Name] = id
		shape := "box"
		if n.Kind == events.KindOcall {
			shape = "ellipse"
		}
		fmt.Fprintf(&b, "    %s [label=\"[%d] %s\\n%d calls\", shape=%s];\n",
			id, n.CallID, n.Name, n.Count, shape)
	}
	for _, e := range g.Edges {
		style := "solid"
		if e.Indirect {
			style = "dashed"
		}
		fmt.Fprintf(&b, "    %s -> %s [label=\"%d\", style=%s];\n",
			ids[e.From], ids[e.To], e.Count, style)
	}
	b.WriteString("}\n")
	return b.String()
}
