package analyzer

import (
	"reflect"
	"testing"

	"sgxperf/internal/perf/events"
)

// TestSortFindingsDeterministicOnTies feeds SortFindings permutations of
// a finding set with deliberate score ties (same problem, same score,
// differing only in call/partner/kind/evidence) and requires one total
// order regardless of input order — the property the parallel merge
// depends on.
func TestSortFindingsDeterministicOnTies(t *testing.T) {
	base := []Finding{
		{Problem: ProblemSISC, Call: "b", Score: 2, Evidence: "x"},
		{Problem: ProblemSISC, Call: "a", Score: 2, Evidence: "y"},
		{Problem: ProblemSISC, Call: "a", Score: 2, Evidence: "x"},
		{Problem: ProblemSISC, Call: "a", Partner: "p", Score: 2, Evidence: "x"},
		{Problem: ProblemSISC, Call: "a", Score: 2, Kind: events.KindOcall, Evidence: "x"},
		{Problem: ProblemSNC, Call: "a", Score: 9, Evidence: "x"},
		{Problem: ProblemSISC, Call: "c", Score: 5, Evidence: "x"},
	}

	want := append([]Finding(nil), base...)
	SortFindings(want)

	// Exhaustive-ish: rotate and reverse the input several ways.
	perms := [][]Finding{
		append([]Finding(nil), base...),
	}
	rev := make([]Finding, len(base))
	for i, f := range base {
		rev[len(base)-1-i] = f
	}
	perms = append(perms, rev)
	for r := 1; r < len(base); r++ {
		rot := append(append([]Finding(nil), base[r:]...), base[:r]...)
		perms = append(perms, rot)
	}
	for i, p := range perms {
		SortFindings(p)
		if !reflect.DeepEqual(p, want) {
			t.Fatalf("permutation %d sorted differently:\ngot  %+v\nwant %+v", i, p, want)
		}
	}

	// And the order itself is the documented one: problem asc, score
	// desc, call asc, partner asc, kind asc, evidence asc.
	if want[0].Problem != ProblemSISC || want[0].Score != 5 {
		t.Fatalf("expected the score-5 SISC finding first, got %+v", want[0])
	}
	last := want[len(want)-1]
	if last.Problem != ProblemSNC {
		t.Fatalf("expected the SNC finding last, got %+v", last)
	}
}
