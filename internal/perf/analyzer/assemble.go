package analyzer

import (
	"sort"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/events"
)

// SyncPrescan is the order-free digest of the sync table the fold needs
// before sweeping calls: a wake sync's carrying ocall can end after the
// sync's own timestamp, so short-wake classification must wait for the
// call sweep. Refs records how many wake syncs each ocall carries; the
// sweep resolves ShortWakes from it the moment it prices the call.
type SyncPrescan struct {
	Total, Sleeps, Wakes int
	Refs                 map[events.EventID]int
	WakeAgg              map[[2]int64]int
}

// PrescanSyncs digests the sync table chunk-by-chunk. Sync events are
// order-free for every kernel that consumes them, so no sortedness is
// required.
func PrescanSyncs(seq ChunkSeq[events.SyncEvent]) (*SyncPrescan, error) {
	pre := &SyncPrescan{
		Refs:    make(map[events.EventID]int),
		WakeAgg: make(map[[2]int64]int),
	}
	for i := 0; i < seq.NumChunks(); i++ {
		rows, err := seq.Chunk(i)
		if err != nil {
			return nil, err
		}
		for j := range rows {
			s := &rows[j]
			pre.Total++
			switch s.Kind {
			case events.SyncWake:
				pre.Wakes++
				pre.Refs[s.Call]++
				for _, t := range s.Targets {
					pre.WakeAgg[[2]int64{int64(s.Thread), int64(t)}]++
				}
			case events.SyncSleep:
				pre.Sleeps++
			}
		}
	}
	return pre, nil
}

// FoldSwitchless digests the switchless table chunk-by-chunk into the
// shared per-name aggregates (order-free integer sums).
func FoldSwitchless(seq ChunkSeq[events.SwitchlessEvent]) (map[string]*SwitchlessAgg, error) {
	agg := make(map[string]*SwitchlessAgg)
	for i := 0; i < seq.NumChunks(); i++ {
		rows, err := seq.Chunk(i)
		if err != nil {
			return nil, err
		}
		for j := range rows {
			SwitchlessFold(agg, &rows[j])
		}
	}
	return agg, nil
}

// AssembleReport renders the merged fold delta, the sync prescan and
// the switchless summary into the full Report, running the identical
// kernels (MovingFinding, ReorderFindings, MergeFindings, SSCFindings,
// PagingFindings, WakeEdges, SortFindings, SortStats) the resident
// pipeline runs over the same aggregates.
func AssembleReport(workload string, cfg *FoldConfig, delta *FoldDelta, pre *SyncPrescan, sw SwitchlessStats, iface *edl.Interface) *Report {
	w := cfg.Weights
	r := &Report{Workload: workload, Switchless: sw}

	names := make([]string, 0, len(delta.Names))
	for n := range delta.Names {
		names = append(names, n)
	}
	sort.Strings(names)
	kindOf := func(name string) events.CallKind {
		if na := delta.Names[name]; na != nil {
			return na.Kind
		}
		return 0
	}
	totalOf := func(name string) int {
		if na := delta.Names[name]; na != nil {
			return na.Count
		}
		return 0
	}

	statByName := make(map[string]CallStats, len(names))
	r.Stats = make([]CallStats, 0, len(names))
	for _, n := range names {
		na := delta.Names[n]
		if s, ok := StatsFromHistogram(n, na.Kind, na.Hist, na.TotalAEX); ok {
			statByName[n] = s
			r.Stats = append(r.Stats, s)
		}
	}
	SortStats(r.Stats)

	g := &CallGraph{}
	for _, n := range names {
		na := delta.Names[n]
		g.Nodes = append(g.Nodes, GraphNode{Name: n, Kind: na.Kind, CallID: na.CallID, Count: na.Count})
	}
	for k, n := range delta.Edges {
		g.Edges = append(g.Edges, GraphEdge{From: k.From, To: k.To, Count: n, Indirect: k.Indirect})
	}
	sortGraphEdges(g.Edges)
	r.Graph = g

	r.Paging = PagingStats{
		PageIns:     delta.Paging.PageIns,
		PageOuts:    delta.Paging.PageOuts,
		DuringCalls: delta.Paging.DuringCalls,
		ByRegion:    make(map[string]int, len(delta.Paging.ByRegion)),
	}
	for region, n := range delta.Paging.ByRegion {
		r.Paging.ByRegion[region] = n
	}

	r.WakeGraph = WakeEdges(pre.WakeAgg)

	for _, n := range names {
		if f, ok := MovingFinding(statByName[n], w); ok {
			r.Findings = append(r.Findings, f)
		}
	}
	for _, n := range names {
		var agg ReorderAgg
		if g := delta.Reorder[n]; g != nil {
			agg = *g
		}
		r.Findings = append(r.Findings, ReorderFindings(n, kindOf(n), agg, w)...)
	}
	r.Findings = append(r.Findings, MergeFindings(delta.Merge, totalOf, kindOf, w)...)
	syncAgg := SyncAgg{
		Total:      pre.Total,
		Sleeps:     pre.Sleeps,
		Wakes:      pre.Wakes,
		ShortWakes: delta.ShortWakes,
	}
	r.Findings = append(r.Findings, SSCFindings(syncAgg, w)...)
	r.Findings = append(r.Findings, PagingFindings(r.Paging, w)...)
	SortFindings(r.Findings)

	// Security hints, in the resident order: make-private, allow-list,
	// user_check.
	for _, n := range names {
		na := delta.Names[n]
		if na.Kind != events.KindEcall {
			continue
		}
		if iface != nil {
			if f, ok := iface.Lookup(n); ok && !f.Public {
				continue
			}
		}
		pa := delta.Private[n]
		if pa == nil || pa.TopLevel {
			continue
		}
		r.Security = append(r.Security, makePrivateHint(n, sortedKeys(pa.Parents)))
	}
	r.Security = append(r.Security, allowHintsFrom(iface, delta.Observed, totalOf)...)
	r.Security = append(r.Security, userCheckHintsFor(iface)...)

	return r
}
