package analyzer_test

// The streaming-equivalence gate of the out-of-core pipeline: the fold
// must reproduce the resident analyser's report bit-for-bit, from both
// a resident trace's tables and a saved trace file read chunk-by-chunk.

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"sgxperf/internal/edl"
	"sgxperf/internal/experiments"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

const streamTestEDL = `
enclave {
    trusted {
        public ecall_put();
        public ecall_get();
        ecall_del();
        ecall_tick([user_check] p);
        ecall_never_seen();
    };
    untrusted {
        ocall_write() allow(ecall_del, ecall_never_seen);
        ocall_read() allow(ecall_del);
        ocall_log();
    };
};
`

// streamTrace builds the stream-sorted synthetic trace the fold
// requires.
func streamTrace(t *testing.T, nOps int) *events.Trace {
	t.Helper()
	tr, err := experiments.SynthAnalysisTrace(nOps)
	if err != nil {
		t.Fatal(err)
	}
	events.StreamSort(tr)
	return tr
}

func TestAnalyzeStreamingMatchesResident(t *testing.T) {
	iface, _, err := edl.Parse(streamTestEDL)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opts analyzer.Options
	}{
		{"default", analyzer.Options{}},
		{"enclave-filter", analyzer.Options{Enclave: sgx.EnclaveID(1)}},
		{"with-edl", analyzer.Options{Interface: iface}},
		{"edl-and-filter", analyzer.Options{Interface: iface, Enclave: sgx.EnclaveID(2)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr := streamTrace(t, 3000)

			serialOpts := tc.opts
			serialOpts.Serial = true
			a, err := analyzer.New(tr, serialOpts)
			if err != nil {
				t.Fatal(err)
			}
			want := a.Analyze()

			// Parallel resident agrees with serial (existing guarantee,
			// re-checked here so the chain serial == parallel == stream
			// holds on this trace).
			ap, err := analyzer.New(tr, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if got := ap.Analyze(); !reflect.DeepEqual(got, want) {
				t.Fatal("parallel resident report differs from serial reference")
			}

			// Fold fed from the resident tables.
			got, err := analyzer.AnalyzeStream(analyzer.NewTraceSource(tr), tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("streaming (resident-fed) report differs from serial reference:\ngot  %+v\nwant %+v", got, want)
			}

			// Fold fed from a saved file, chunk by chunk.
			path := filepath.Join(t.TempDir(), "trace.evc")
			if err := tr.SaveFile(path); err != nil {
				t.Fatal(err)
			}
			st, err := events.OpenStreamTrace(path)
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()
			src, err := analyzer.NewStreamTraceSource(st)
			if err != nil {
				t.Fatal(err)
			}
			got, err = analyzer.AnalyzeStream(src, tc.opts)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("streaming (file-fed) report differs from serial reference:\ngot  %+v\nwant %+v", got, want)
			}
		})
	}
}

func TestAnalyzeStreamUnsorted(t *testing.T) {
	tr, err := experiments.SynthAnalysisTrace(500)
	if err != nil {
		t.Fatal(err)
	}
	// SynthAnalysisTrace interleaves threads: per-thread monotone but
	// globally unsorted, exactly the layout the fold must reject.
	_, err = analyzer.AnalyzeStream(analyzer.NewTraceSource(tr), analyzer.Options{})
	if !errors.Is(err, analyzer.ErrUnsorted) {
		t.Fatalf("AnalyzeStream on an unsorted trace: err = %v, want ErrUnsorted", err)
	}
}

func TestStreamContentKeyMatchesResident(t *testing.T) {
	tr := streamTrace(t, 800)
	path := filepath.Join(t.TempDir(), "trace.evc")
	if err := tr.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	st, err := events.OpenStreamTrace(path)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if got, want := st.ContentKey(), tr.ContentKey(); got != want {
		t.Fatalf("stream ContentKey = %s, resident = %s", got, want)
	}
	if got, want := st.Rows("ecalls"), tr.Ecalls.Len(); got != want {
		t.Fatalf("stream ecall rows = %d, resident = %d", got, want)
	}
	if st.Workload() != "analyze-bench" {
		t.Fatalf("workload = %q", st.Workload())
	}
}

// TestFoldWindowedMatchesSinglePass drives FoldWindow window-by-window
// with carry chaining — the serve daemon's access pattern — and checks
// the merged deltas assemble to the same report as one final pass.
func TestFoldWindowedMatchesSinglePass(t *testing.T) {
	tr := streamTrace(t, 3000)
	serial, err := analyzer.New(tr, analyzer.Options{Serial: true})
	if err != nil {
		t.Fatal(err)
	}
	want := serial.Analyze()

	src := analyzer.NewTraceSource(tr)
	pre, err := analyzer.PrescanSyncs(src.Syncs)
	if err != nil {
		t.Fatal(err)
	}
	swAgg, err := analyzer.FoldSwitchless(src.Switchless)
	if err != nil {
		t.Fatal(err)
	}
	cfg := &analyzer.FoldConfig{
		Weights:    analyzer.DefaultWeights(),
		Freq:       tr.Frequency(),
		Transition: tr.TransitionCycles(),
		SyncRefs:   pre.Refs,
	}
	in := analyzer.FoldInput{Ecalls: src.Ecalls, Ocalls: src.Ocalls, Paging: src.Paging}

	nE, nO := src.Ecalls.NumChunks(), src.Ocalls.NumChunks()
	n := nE
	if nO > n {
		n = nO
	}
	if n < 2 {
		t.Fatalf("want a multi-chunk trace, got %d ecall / %d ocall chunks", nE, nO)
	}
	carry := analyzer.NewFoldCarry()
	total := analyzer.NewFoldDelta()
	for k := 0; k < n; k++ {
		final := k == n-1
		var bound vtime.Cycles
		if !final {
			b, ok, err := analyzer.WindowBound(in, k)
			if err != nil {
				t.Fatal(err)
			}
			if !ok {
				final = true
			}
			bound = b
		}
		delta, carryOut, err := analyzer.FoldWindow(cfg, carry, in, bound, final)
		if err != nil {
			t.Fatalf("window %d: %v", k, err)
		}
		total.MergeFrom(delta)
		carry = carryOut
		if final {
			break
		}
	}
	got := analyzer.AssembleReport("analyze-bench", cfg, total, pre,
		analyzer.SwitchlessStatsFrom(swAgg, tr.Frequency()), nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("windowed fold differs from serial reference:\ngot  %+v\nwant %+v", got, want)
	}
}
