package analyzer

import (
	"strings"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// builder constructs synthetic traces with µs-resolution timestamps.
type builder struct {
	t     *testing.T
	trace *events.Trace
	freq  vtime.Frequency
}

func newBuilder(t *testing.T) *builder {
	t.Helper()
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	trace.Meta.Insert(events.TraceMeta{
		Workload:    "synthetic",
		FrequencyHz: float64(vtime.DefaultFrequency),
		// Transition subtraction is exercised explicitly where needed;
		// default to zero so durations are literal.
		TransitionCycles: 0,
	})
	return &builder{t: t, trace: trace, freq: vtime.DefaultFrequency}
}

func (b *builder) cyc(us float64) vtime.Cycles {
	return b.freq.Cycles(time.Duration(us * float64(time.Microsecond)))
}

func (b *builder) call(kind events.CallKind, name string, thread int64, startUS, durUS float64, parent events.EventID) events.EventID {
	id := b.trace.NextID()
	ev := events.CallEvent{
		ID:      id,
		Kind:    kind,
		Enclave: 1,
		Thread:  sgx.ThreadID(thread),
		Name:    name,
		Start:   b.cyc(startUS),
		End:     b.cyc(startUS + durUS),
		Parent:  parent,
	}
	if kind == events.KindEcall {
		b.trace.Ecalls.Insert(ev)
	} else {
		b.trace.Ocalls.Insert(ev)
	}
	return id
}

func (b *builder) ecall(name string, thread int64, startUS, durUS float64, parent events.EventID) events.EventID {
	return b.call(events.KindEcall, name, thread, startUS, durUS, parent)
}

func (b *builder) ocall(name string, thread int64, startUS, durUS float64, parent events.EventID) events.EventID {
	return b.call(events.KindOcall, name, thread, startUS, durUS, parent)
}

func (b *builder) analyze(opts Options) *Analyzer {
	b.t.Helper()
	a, err := New(b.trace, opts)
	if err != nil {
		b.t.Fatal(err)
	}
	return a
}

// --- Fig. 4: direct and indirect parents ------------------------------

func TestIndirectParents_Fig4Case1(t *testing.T) {
	// (1) E1 E2 E3 top level: each ecall's indirect parent is the
	// previous one, except the first.
	b := newBuilder(t)
	e1 := b.ecall("E", 1, 0, 10, events.NoEvent)
	e2 := b.ecall("E", 1, 20, 10, events.NoEvent)
	e3 := b.ecall("E", 1, 40, 10, events.NoEvent)
	a := b.analyze(Options{})

	if _, ok := a.IndirectParentOf(e1); ok {
		t.Error("E1 has an indirect parent")
	}
	if p, ok := a.IndirectParentOf(e2); !ok || p != e1 {
		t.Errorf("E2 indirect parent = %d, want %d", p, e1)
	}
	if p, ok := a.IndirectParentOf(e3); !ok || p != e2 {
		t.Errorf("E3 indirect parent = %d, want %d", p, e2)
	}
}

func TestIndirectParents_Fig4Case2(t *testing.T) {
	// (2) E1 with O2, O3 nested: O3's indirect parent is O2 (same direct
	// parent E1); O2 has none.
	b := newBuilder(t)
	e1 := b.ecall("E1", 1, 0, 100, events.NoEvent)
	o2 := b.ocall("O", 1, 10, 5, e1)
	o3 := b.ocall("O", 1, 30, 5, e1)
	a := b.analyze(Options{})

	if _, ok := a.IndirectParentOf(o2); ok {
		t.Error("O2 has an indirect parent")
	}
	if p, ok := a.IndirectParentOf(o3); !ok || p != o2 {
		t.Errorf("O3 indirect parent = %d, want %d", p, o2)
	}
}

func TestIndirectParents_Fig4Case3(t *testing.T) {
	// (3) E1 -> O2 -> E3 (nested ecall during ocall): no indirect parents
	// anywhere.
	b := newBuilder(t)
	e1 := b.ecall("E1", 1, 0, 100, events.NoEvent)
	o2 := b.ocall("O2", 1, 10, 50, e1)
	e3 := b.ecall("E3", 1, 20, 10, o2)
	a := b.analyze(Options{})

	for _, id := range []events.EventID{e1, o2, e3} {
		if p, ok := a.IndirectParentOf(id); ok {
			t.Errorf("event %d has indirect parent %d, want none", id, p)
		}
	}
}

func TestIndirectParents_Fig4Case4(t *testing.T) {
	// (4) E1, O2 (during E1), then top-level E3: E3's indirect parent is
	// E1 — the call before O2, because O2 is of a different kind.
	b := newBuilder(t)
	e1 := b.ecall("E", 1, 0, 20, events.NoEvent)
	_ = b.ocall("O", 1, 5, 5, e1)
	e3 := b.ecall("E", 1, 30, 10, events.NoEvent)
	a := b.analyze(Options{})

	if p, ok := a.IndirectParentOf(e3); !ok || p != e1 {
		t.Errorf("E3 indirect parent = %d, want %d (skipping the ocall)", p, e1)
	}
}

func TestIndirectParentsSeparateThreads(t *testing.T) {
	// Calls on different threads never become indirect parents.
	b := newBuilder(t)
	_ = b.ecall("E", 1, 0, 10, events.NoEvent)
	e2 := b.ecall("E", 2, 20, 10, events.NoEvent)
	a := b.analyze(Options{})
	if _, ok := a.IndirectParentOf(e2); ok {
		t.Error("cross-thread indirect parent")
	}
}

// --- statistics --------------------------------------------------------

func TestStatsBasics(t *testing.T) {
	b := newBuilder(t)
	durations := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10} // µs
	for i, d := range durations {
		b.ecall("work", 1, float64(i*100), d, events.NoEvent)
	}
	a := b.analyze(Options{})
	s, ok := a.Stats("work")
	if !ok {
		t.Fatal("no stats for work")
	}
	if s.Count != 10 {
		t.Fatalf("count = %d", s.Count)
	}
	if got := s.Mean.Round(100 * time.Nanosecond); got != 5500*time.Nanosecond {
		t.Errorf("mean = %v, want 5.5µs", got)
	}
	if s.Median < 4900*time.Nanosecond || s.Median > 5100*time.Nanosecond {
		t.Errorf("median = %v, want ≈5µs", s.Median)
	}
	if s.P90 < 8900*time.Nanosecond || s.P90 > 9100*time.Nanosecond {
		t.Errorf("p90 = %v, want ≈9µs", s.P90)
	}
	if s.P99 < 9900*time.Nanosecond || s.P99 > 10100*time.Nanosecond {
		t.Errorf("p99 = %v, want ≈10µs", s.P99)
	}
	if s.Min >= s.Max {
		t.Errorf("min %v >= max %v", s.Min, s.Max)
	}
	// Fractions: 0 below 1µs is false (1µs dur is not <1µs after rounding…
	// durations start at exactly 1µs), 4 below 5µs, 9 below 10µs.
	if s.FracBelow5us < 0.35 || s.FracBelow5us > 0.45 {
		t.Errorf("frac<5µs = %.2f, want 0.4", s.FracBelow5us)
	}
	if s.FracBelow10us < 0.85 || s.FracBelow10us > 0.95 {
		t.Errorf("frac<10µs = %.2f, want 0.9", s.FracBelow10us)
	}
}

func TestStatsTransitionSubtraction(t *testing.T) {
	// §4.1.2: ecall durations include both transitions; the analyser must
	// subtract them. Ocalls are untouched.
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	freq := vtime.DefaultFrequency
	rt := freq.Cycles(2130 * time.Nanosecond)
	trace.Meta.Insert(events.TraceMeta{FrequencyHz: float64(freq), TransitionCycles: int64(rt)})
	mk := func(kind events.CallKind, name string, start, dur time.Duration) {
		ev := events.CallEvent{
			ID: trace.NextID(), Kind: kind, Name: name, Thread: 1,
			Start: freq.Cycles(start), End: freq.Cycles(start + dur),
			Parent: events.NoEvent,
		}
		if kind == events.KindEcall {
			trace.Ecalls.Insert(ev)
		} else {
			trace.Ocalls.Insert(ev)
		}
	}
	mk(events.KindEcall, "e", 0, 10*time.Microsecond)
	mk(events.KindOcall, "o", 100*time.Microsecond, 10*time.Microsecond)
	a, err := New(trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	es, _ := a.Stats("e")
	os, _ := a.Stats("o")
	wantE := 10*time.Microsecond - 2130*time.Nanosecond
	if diff := es.Mean - wantE; diff < -50*time.Nanosecond || diff > 50*time.Nanosecond {
		t.Errorf("ecall mean = %v, want %v (transition-adjusted)", es.Mean, wantE)
	}
	if diff := os.Mean - 10*time.Microsecond; diff < -50*time.Nanosecond || diff > 50*time.Nanosecond {
		t.Errorf("ocall mean = %v, want 10µs (unadjusted)", os.Mean)
	}
}

func TestHistogram(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 100; i++ {
		b.ecall("h", 1, float64(i*50), float64(10+i%10), events.NoEvent)
	}
	a := b.analyze(Options{})
	bins := a.Histogram("h", 10)
	if len(bins) != 10 {
		t.Fatalf("bins = %d", len(bins))
	}
	total := 0
	for _, bin := range bins {
		total += bin.Count
		if bin.Hi <= bin.Lo {
			t.Fatalf("degenerate bin %+v", bin)
		}
	}
	if total != 100 {
		t.Fatalf("histogram total = %d, want 100", total)
	}
	if a.Histogram("missing", 10) != nil {
		t.Fatal("histogram for unknown call")
	}
}

func TestScatter(t *testing.T) {
	b := newBuilder(t)
	b.ecall("s", 1, 100, 5, events.NoEvent)
	b.ecall("s", 1, 0, 3, events.NoEvent)
	a := b.analyze(Options{})
	pts := a.Scatter("s")
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[0].T > pts[1].T {
		t.Fatal("scatter not time-ordered")
	}
	if pts[0].T != 0 {
		t.Fatalf("first point at %v, want 0 (relative to first event)", pts[0].T)
	}
}

// --- Equation 1: moving/duplication ------------------------------------

func TestEquation1FlagsShortEcalls(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 100; i++ {
		b.ecall("bn_sub_part_words", 1, float64(i*100), 0.5, events.NoEvent)
	}
	a := b.analyze(Options{})
	findings := a.DetectMoving()
	if len(findings) != 1 {
		t.Fatalf("findings = %d, want 1", len(findings))
	}
	f := findings[0]
	if f.Problem != ProblemSISC || f.Call != "bn_sub_part_words" {
		t.Fatalf("finding = %+v", f)
	}
	if f.Solutions[0] != SolutionBatch {
		t.Fatalf("first solution = %v, want batch", f.Solutions[0])
	}
	if f.SecurityNote == "" {
		t.Fatal("moving an ecall out needs a security note (§3.1)")
	}
}

func TestEquation1FlagsShortOcallsAsSNC(t *testing.T) {
	b := newBuilder(t)
	parent := b.ecall("e", 1, 0, 100000, events.NoEvent)
	for i := 0; i < 100; i++ {
		b.ocall("ocall_malloc", 1, float64(100+i*100), 0.8, parent)
	}
	a := b.analyze(Options{})
	var found *Finding
	for _, f := range a.DetectMoving() {
		if f.Call == "ocall_malloc" {
			f := f
			found = &f
		}
	}
	if found == nil || found.Problem != ProblemSNC {
		t.Fatalf("short ocall not flagged as SNC: %+v", found)
	}
	hasDup := false
	for _, s := range found.Solutions {
		if s == SolutionDuplicate {
			hasDup = true
		}
	}
	if !hasDup {
		t.Fatal("SNC ocall finding lacks the duplicate-inside solution")
	}
}

func TestEquation1IgnoresLongCalls(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 100; i++ {
		b.ecall("long", 1, float64(i*200), 100, events.NoEvent)
	}
	a := b.analyze(Options{})
	if fs := a.DetectMoving(); len(fs) != 0 {
		t.Fatalf("long calls flagged: %+v", fs)
	}
}

func TestEquation1Boundaries(t *testing.T) {
	// Exactly at threshold: 35% below 1µs fires; 34% does not.
	mk := func(shortCount int) []Finding {
		b := newBuilder(t)
		for i := 0; i < shortCount; i++ {
			b.ecall("x", 1, float64(i*100), 0.5, events.NoEvent)
		}
		for i := shortCount; i < 100; i++ {
			b.ecall("x", 1, float64(i*100), 50, events.NoEvent)
		}
		return b.analyze(Options{}).DetectMoving()
	}
	if fs := mk(35); len(fs) != 1 {
		t.Fatalf("35%% short: findings = %d, want 1", len(fs))
	}
	if fs := mk(34); len(fs) != 0 {
		t.Fatalf("34%% short: findings = %d, want 0", len(fs))
	}
}

// --- Equation 2: reordering --------------------------------------------

func TestEquation2FlagsCallsNearParentStart(t *testing.T) {
	// An ocall always issued 2µs into its ecall: the classic
	// allocate-at-ecall-start pattern (§3.3).
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 1000)
		e := b.ecall("e", 1, start, 500, events.NoEvent)
		b.ocall("ocall_malloc", 1, start+2, 30, e) // long ocall: Eq.1 silent
	}
	a := b.analyze(Options{})
	findings := a.DetectReordering()
	if len(findings) != 1 {
		t.Fatalf("findings = %v", findings)
	}
	f := findings[0]
	if f.Problem != ProblemSNC || f.Call != "ocall_malloc" {
		t.Fatalf("finding = %+v", f)
	}
	if f.Solutions[0] != SolutionReorder {
		t.Fatal("reorder not recommended")
	}
	if !strings.Contains(f.Evidence, "first") {
		t.Fatalf("evidence should mention call position: %s", f.Evidence)
	}
}

func TestEquation2FlagsCallsNearParentEnd(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 1000)
		e := b.ecall("e", 1, start, 500, events.NoEvent)
		b.ocall("ocall_flush", 1, start+465, 30, e) // ends 5µs before parent end
	}
	a := b.analyze(Options{})
	findings := a.DetectReordering()
	if len(findings) != 1 || !strings.Contains(findings[0].Evidence, "last") {
		t.Fatalf("findings = %+v", findings)
	}
}

func TestEquation2SilentForMidCalls(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 1000)
		e := b.ecall("e", 1, start, 500, events.NoEvent)
		b.ocall("ocall_mid", 1, start+250, 30, e)
	}
	a := b.analyze(Options{})
	if fs := a.DetectReordering(); len(fs) != 0 {
		t.Fatalf("mid-call ocall flagged: %+v", fs)
	}
}

// --- Equation 3: merging/batching ---------------------------------------

func TestEquation3FlagsMergeablePairs(t *testing.T) {
	// The SQLite pattern (§5.2.2): every write ocall directly follows an
	// lseek ocall under the same ecall.
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 1000)
		e := b.ecall("insert", 1, start, 500, events.NoEvent)
		lseek := start + 100
		b.ocall("lseek", 1, lseek, 40, e)
		b.ocall("write", 1, lseek+40.5, 170, e) // 0.5µs gap
	}
	a := b.analyze(Options{})
	var merge *Finding
	for _, f := range a.DetectMerging() {
		if f.Problem == ProblemSDSC && f.Call == "write" && f.Partner == "lseek" {
			f := f
			merge = &f
		}
	}
	if merge == nil {
		t.Fatalf("lseek+write merge not detected: %+v", a.DetectMerging())
	}
	if merge.Solutions[0] != SolutionMerge {
		t.Fatal("merge not the primary solution")
	}
}

func TestEquation3FlagsBatchableRepeats(t *testing.T) {
	// bn_sub_part_words called in tight pairs (§5.2.3): call is its own
	// indirect parent → batching (SISC).
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 1000)
		b.ecall("bn_sub", 1, start, 3, events.NoEvent)
		b.ecall("bn_sub", 1, start+3.2, 3, events.NoEvent)
	}
	a := b.analyze(Options{})
	var batch *Finding
	for _, f := range a.DetectMerging() {
		if f.Problem == ProblemSISC && f.Call == "bn_sub" {
			f := f
			batch = &f
		}
	}
	if batch == nil {
		t.Fatalf("self-batching not detected: %+v", a.DetectMerging())
	}
	if batch.Solutions[0] != SolutionBatch {
		t.Fatal("batch not the primary solution")
	}
}

func TestEquation3SilentForDistantCalls(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 50; i++ {
		start := float64(i * 10000)
		e := b.ecall("e", 1, start, 5000, events.NoEvent)
		b.ocall("a", 1, start+100, 40, e)
		b.ocall("b", 1, start+2000, 40, e) // ~1.9ms gap
	}
	a := b.analyze(Options{})
	if fs := a.DetectMerging(); len(fs) != 0 {
		t.Fatalf("distant calls flagged for merging: %+v", fs)
	}
}

// --- SSC and paging -----------------------------------------------------

func TestDetectSSC(t *testing.T) {
	b := newBuilder(t)
	parent := b.ecall("handle", 1, 0, 100000, events.NoEvent)
	for i := 0; i < 12; i++ {
		start := float64(10 + i*50)
		oid := b.ocall("sgx_thread_set_untrusted_event_ocall", 1, start, 2, parent)
		b.trace.Syncs.Insert(events.SyncEvent{
			ID: b.trace.NextID(), Kind: events.SyncWake,
			Thread: 1, Targets: []sgx.ThreadID{2}, Time: b.cyc(start), Call: oid,
		})
	}
	a := b.analyze(Options{})
	findings := a.DetectSSC()
	if len(findings) != 1 || findings[0].Problem != ProblemSSC {
		t.Fatalf("findings = %+v", findings)
	}
	sols := findings[0].Solutions
	if sols[0] != SolutionHybridLock && sols[0] != SolutionLockFree {
		t.Fatalf("SSC solutions = %v", sols)
	}
	// Wake graph: thread 1 woke thread 2 twelve times.
	wg := a.WakeGraph()
	if len(wg) != 1 || wg[0].From != 1 || wg[0].To != 2 || wg[0].Count != 12 {
		t.Fatalf("wake graph = %+v", wg)
	}
}

func TestDetectSSCBelowThresholdSilent(t *testing.T) {
	b := newBuilder(t)
	parent := b.ecall("handle", 1, 0, 1000, events.NoEvent)
	oid := b.ocall("sgx_thread_set_untrusted_event_ocall", 1, 10, 2, parent)
	b.trace.Syncs.Insert(events.SyncEvent{
		ID: b.trace.NextID(), Kind: events.SyncWake, Thread: 1,
		Targets: []sgx.ThreadID{2}, Time: b.cyc(10), Call: oid,
	})
	a := b.analyze(Options{})
	if fs := a.DetectSSC(); len(fs) != 0 {
		t.Fatalf("SSC fired below threshold: %+v", fs)
	}
}

func TestDetectPaging(t *testing.T) {
	b := newBuilder(t)
	e := b.ecall("big", 1, 0, 1000, events.NoEvent)
	_ = e
	for i := 0; i < 5; i++ {
		kind := events.PageIn
		if i%2 == 1 {
			kind = events.PageOut
		}
		b.trace.Paging.Insert(events.PagingEvent{
			ID: b.trace.NextID(), Kind: kind, Enclave: 1, Thread: 1,
			Vaddr: uint64(0x1000 * (i + 1)), PageKind: "heap", Time: b.cyc(float64(10 + i)),
		})
	}
	a := b.analyze(Options{})
	findings := a.DetectPaging()
	if len(findings) != 1 || findings[0].Problem != ProblemPaging {
		t.Fatalf("findings = %+v", findings)
	}
	sum := a.PagingSummary()
	if sum.PageIns != 3 || sum.PageOuts != 2 {
		t.Fatalf("paging summary = %+v", sum)
	}
	if sum.DuringCalls != 5 {
		t.Fatalf("during-calls = %d, want 5 (all inside the ecall window)", sum.DuringCalls)
	}
	if sum.ByRegion["heap"] != 5 {
		t.Fatalf("by-region = %+v", sum.ByRegion)
	}
}

// --- security hints ------------------------------------------------------

func TestPrivateEcallCandidates(t *testing.T) {
	b := newBuilder(t)
	e := b.ecall("entry", 1, 0, 1000, events.NoEvent)
	o := b.ocall("ocall_cb", 1, 10, 500, e)
	b.ecall("ecall_nested", 1, 20, 10, o)
	a := b.analyze(Options{})

	var private *SecurityHint
	for _, h := range a.SecurityHints() {
		if h.Kind == HintMakePrivate {
			h := h
			private = &h
		}
	}
	if private == nil {
		t.Fatal("no make-private hint")
	}
	if private.Call != "ecall_nested" || len(private.Names) != 1 || private.Names[0] != "ocall_cb" {
		t.Fatalf("hint = %+v", private)
	}
}

func TestShrinkAllowWithEDL(t *testing.T) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("entry", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("used", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("unused", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("gate", []string{"used", "unused"}); err != nil {
		t.Fatal(err)
	}

	b := newBuilder(t)
	e := b.ecall("entry", 1, 0, 1000, events.NoEvent)
	o := b.ocall("gate", 1, 10, 500, e)
	b.ecall("used", 1, 20, 10, o)
	a := b.analyze(Options{Interface: iface})

	var shrink *SecurityHint
	for _, h := range a.SecurityHints() {
		if h.Kind == HintShrinkAllow {
			h := h
			shrink = &h
		}
	}
	if shrink == nil {
		t.Fatal("no shrink-allow hint")
	}
	if shrink.Call != "gate" || len(shrink.Names) != 1 || shrink.Names[0] != "unused" {
		t.Fatalf("hint = %+v", shrink)
	}
}

func TestMinimalAllowWithoutEDL(t *testing.T) {
	b := newBuilder(t)
	e := b.ecall("entry", 1, 0, 1000, events.NoEvent)
	o := b.ocall("gate", 1, 10, 500, e)
	b.ecall("nested", 1, 20, 10, o)
	a := b.analyze(Options{})

	var minimal *SecurityHint
	for _, h := range a.SecurityHints() {
		if h.Kind == HintMinimalAllow {
			h := h
			minimal = &h
		}
	}
	if minimal == nil {
		t.Fatal("no minimal-allow hint without EDL")
	}
	if minimal.Call != "gate" || len(minimal.Names) != 1 || minimal.Names[0] != "nested" {
		t.Fatalf("hint = %+v", minimal)
	}
}

func TestUserCheckHints(t *testing.T) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true, edl.Param{Name: "p", Dir: edl.DirUserCheck}); err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t)
	b.ecall("e", 1, 0, 10, events.NoEvent)
	a := b.analyze(Options{Interface: iface})
	var uc *SecurityHint
	for _, h := range a.SecurityHints() {
		if h.Kind == HintUserCheck {
			h := h
			uc = &h
		}
	}
	if uc == nil || uc.Call != "e" || uc.Names[0] != "p" {
		t.Fatalf("user_check hint = %+v", uc)
	}
}

func TestAlreadyPrivateEcallNotSuggested(t *testing.T) {
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("nested", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("entry", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("gate", []string{"nested"}); err != nil {
		t.Fatal(err)
	}
	b := newBuilder(t)
	e := b.ecall("entry", 1, 0, 1000, events.NoEvent)
	o := b.ocall("gate", 1, 10, 500, e)
	b.ecall("nested", 1, 20, 10, o)
	a := b.analyze(Options{Interface: iface})
	for _, h := range a.SecurityHints() {
		if h.Kind == HintMakePrivate && h.Call == "nested" {
			t.Fatal("already-private ecall suggested as private candidate")
		}
	}
}

// --- call graph -----------------------------------------------------------

func TestCallGraphShapeAndDOT(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 3; i++ {
		start := float64(i * 1000)
		e := b.ecall("SSL_read", 1, start, 100, events.NoEvent)
		b.ocall("ocall_read", 1, start+10, 20, e)
	}
	a := b.analyze(Options{})
	g := a.CallGraph()

	n, ok := g.Node("SSL_read")
	if !ok || n.Kind != events.KindEcall || n.Count != 3 {
		t.Fatalf("node = %+v", n)
	}
	if c := g.EdgeCount("SSL_read", "ocall_read", false); c != 3 {
		t.Fatalf("direct edge count = %d", c)
	}
	if c := g.EdgeCount("SSL_read", "SSL_read", true); c != 2 {
		t.Fatalf("indirect self edge count = %d", c)
	}
	dot := g.DOT()
	for _, want := range []string{"digraph", "shape=box", "shape=ellipse", "style=dashed", "style=solid", "SSL_read"} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%s", want, dot)
		}
	}
}

// --- catalogue and report -------------------------------------------------

func TestCatalogueMatchesTable1(t *testing.T) {
	cat := Catalogue()
	want := map[Problem][]Solution{
		ProblemSISC:   {SolutionBatch, SolutionMoveCaller},
		ProblemSDSC:   {SolutionMerge, SolutionMoveCaller},
		ProblemSNC:    {SolutionReorder, SolutionDuplicate},
		ProblemSSC:    {SolutionLockFree, SolutionHybridLock},
		ProblemPaging: {SolutionReduceMemory, SolutionPreloadPages, SolutionSelfPaging},
		ProblemPermissiveInterface: {
			SolutionLimitPublicEcalls, SolutionLimitEcallsFromOcalls, SolutionCheckPointers,
		},
		ProblemReentrancy: {SolutionLimitEcallsFromOcalls, SolutionRemoveDead},
		ProblemLargeCopies: {
			SolutionReduceCopies, SolutionSwitchless, SolutionMoveCaller,
		},
		ProblemTransitionBound: {SolutionSwitchless, SolutionBatch, SolutionDuplicate},
		ProblemBoundarySync:    {SolutionReorder, SolutionHybridLock, SolutionLockFree},
		ProblemTransitionAmplification: {
			SolutionBatch, SolutionSwitchless, SolutionMoveCaller,
		},
		ProblemBoundaryDataHazard: {SolutionCheckPointers, SolutionReduceCopies},
		ProblemSecretLeak: {
			SolutionCheckPointers, SolutionReduceCopies, SolutionMoveCaller,
		},
		ProblemDirectionMismatch: {SolutionCheckPointers, SolutionReduceCopies},
	}
	if len(cat) != len(want) {
		t.Fatalf("catalogue has %d problems, want %d", len(cat), len(want))
	}
	for p, sols := range want {
		got := cat[p]
		if len(got) != len(sols) {
			t.Fatalf("%v: %v, want %v", p, got, sols)
		}
		for i := range sols {
			if got[i] != sols[i] {
				t.Fatalf("%v solution %d = %v, want %v", p, i, got[i], sols[i])
			}
		}
	}
}

func TestReportRender(t *testing.T) {
	b := newBuilder(t)
	for i := 0; i < 100; i++ {
		b.ecall("tiny", 1, float64(i*10), 0.4, events.NoEvent)
	}
	a := b.analyze(Options{})
	r := a.Analyze()
	if !r.HasProblem(ProblemSISC) {
		t.Fatal("expected a SISC finding")
	}
	if fs := r.FindingsFor("tiny"); len(fs) == 0 {
		t.Fatal("FindingsFor empty")
	}
	text := r.Render()
	for _, want := range []string{
		"sgx-perf analysis", "general statistics", "detected problems",
		"tiny", "batch calls", "recommendations (in priority order)",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("report missing %q:\n%s", want, text)
		}
	}
	if r.TotalCalls() != 100 {
		t.Fatalf("total calls = %d", r.TotalCalls())
	}
}

func TestReportNoFindingsOnQuietTrace(t *testing.T) {
	b := newBuilder(t)
	b.ecall("fine", 1, 0, 1000, events.NoEvent)
	r := b.analyze(Options{}).Analyze()
	if len(r.Findings) != 0 {
		t.Fatalf("quiet trace produced findings: %+v", r.Findings)
	}
	if !strings.Contains(r.Render(), "no performance problems detected") {
		t.Fatal("render should say no problems were found")
	}
}

func TestCompareTraces(t *testing.T) {
	// Baseline: many short ecalls. Optimised: they were batched away.
	before := newBuilder(t)
	for i := 0; i < 200; i++ {
		before.ecall("bn_sub", 1, float64(i*10), 0.5, events.NoEvent)
	}
	before.ecall("ecall_mul", 1, 5000, 50, events.NoEvent)
	after := newBuilder(t)
	for i := 0; i < 10; i++ {
		after.ecall("ecall_mul", 1, float64(i*100), 55, events.NoEvent)
	}
	a := before.analyze(Options{})
	b := after.analyze(Options{})

	cmp := Compare(a, b)
	if cmp.CallsA != 201 || cmp.CallsB != 10 {
		t.Fatalf("calls = %d/%d", cmp.CallsA, cmp.CallsB)
	}
	if cmp.TransitionsSaved() != 191 {
		t.Fatalf("saved = %d", cmp.TransitionsSaved())
	}
	var sub, mul *CompareRow
	for i := range cmp.Rows {
		switch cmp.Rows[i].Name {
		case "bn_sub":
			sub = &cmp.Rows[i]
		case "ecall_mul":
			mul = &cmp.Rows[i]
		}
	}
	if sub == nil || mul == nil {
		t.Fatalf("rows = %+v", cmp.Rows)
	}
	if sub.CountA != 200 || sub.CountB != 0 {
		t.Fatalf("sub row = %+v", sub)
	}
	if mul.CountA != 1 || mul.CountB != 10 {
		t.Fatalf("mul row = %+v", mul)
	}
	text := cmp.Render()
	for _, want := range []string{"trace comparison", "bn_sub", "ecall_mul", "-191 transitions"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q:\n%s", want, text)
		}
	}
}

func TestEnclaveFilter(t *testing.T) {
	trace, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	trace.Meta.Insert(events.TraceMeta{FrequencyHz: float64(vtime.DefaultFrequency)})
	mk := func(enclave int, name string) {
		trace.Ecalls.Insert(events.CallEvent{
			ID: trace.NextID(), Kind: events.KindEcall, Name: name,
			Enclave: sgx.EnclaveID(enclave), Thread: 1,
			Start:  vtime.DefaultFrequency.Cycles(time.Microsecond),
			End:    vtime.DefaultFrequency.Cycles(2 * time.Microsecond),
			Parent: events.NoEvent,
		})
	}
	mk(1, "a")
	mk(1, "a")
	mk(2, "b")

	all, err := New(trace, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(all.CallNames()) != 2 {
		t.Fatalf("unfiltered names = %v", all.CallNames())
	}
	only1, err := New(trace, Options{Enclave: 1})
	if err != nil {
		t.Fatal(err)
	}
	if names := only1.CallNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("filtered names = %v", names)
	}
	if s, ok := only1.Stats("a"); !ok || s.Count != 2 {
		t.Fatalf("filtered stats = %+v", s)
	}
	if _, ok := only1.Stats("b"); ok {
		t.Fatal("foreign enclave's call leaked through the filter")
	}
}
