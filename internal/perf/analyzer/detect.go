package analyzer

import (
	"time"

	"sgxperf/internal/perf/events"
)

// Problem is one of the five SGX performance anti-patterns of Table 1.
type Problem int

const (
	// ProblemSISC is Short Identical Successive Calls (§3.1).
	ProblemSISC Problem = iota + 1
	// ProblemSDSC is Short Different Successive Calls (§3.2).
	ProblemSDSC
	// ProblemSNC is Short Nested Calls (§3.3).
	ProblemSNC
	// ProblemSSC is Short Synchronisation Calls (§3.4).
	ProblemSSC
	// ProblemPaging is EPC paging (§3.5).
	ProblemPaging
	// ProblemPermissiveInterface is the security row of Table 1 (§3.6):
	// an enclave interface that is wider or looser than the workload
	// needs. The analyser reports it through SecurityHints rather than
	// Findings, but it is part of the problem catalogue.
	ProblemPermissiveInterface
	// ProblemReentrancy flags ecall→ocall→ecall cycles reachable through
	// the interface's allow-lists: an allowed ecall may re-issue the same
	// ocall, so the nesting depth is unbounded and every level consumes
	// trusted stack (§3.6). Found statically by the interface analyser.
	ProblemReentrancy
	// ProblemLargeCopies flags calls whose [in]/[out] buffer copies are
	// large or statically unbounded: the marshalling cost grows past the
	// transition round-trip itself (§6, "reduce copies"). Found statically
	// by the interface analyser from the machine's cost model.
	ProblemLargeCopies
	// ProblemTransitionBound flags calls that marshal almost nothing, so
	// the transition round-trip is their dominant cost — the static
	// counterpart of Equation 1's transition-dominated calls, and the
	// candidate set for switchless workers ("SGX Switchless Calls Made
	// Configless").
	ProblemTransitionBound
	// ProblemBoundarySync flags enclave code that holds an in-enclave lock
	// across an enclave transition or another blocking point: every thread
	// that contends on the lock meanwhile leaves the enclave through the
	// sleep/wake ocall pair (§3.4), so the critical section's cost is no
	// longer bounded by the work inside it. Found statically by the
	// concurrency dataflow analysis over the workload sources.
	ProblemBoundarySync
	// ProblemTransitionAmplification flags an ocall dispatch reached
	// inside a loop — directly or through a callee that transitively
	// dispatches — so the per-transition round trip (§3.1) multiplies by
	// the loop trip count. Found statically by the interprocedural
	// call-graph analysis; the fix is §6's: batch the buffer, cross once.
	ProblemTransitionAmplification
	// ProblemBoundaryDataHazard flags untrusted-shared data misuse at
	// the boundary (§3.6): an ecall handler re-reading a boundary-buffer
	// expression after an ocall crossing (TOCTOU double fetch), or an
	// enclave pointer escaping through an ocall argument. Found
	// statically by the interprocedural call-graph analysis.
	ProblemBoundaryDataHazard
	// ProblemSecretLeak flags enclave-confidential data — declarations
	// carrying //sgxperf:secret — reaching a boundary sink (an ocall
	// argument, a copy-back field, a user_check write) without passing a
	// seal/encrypt function (§3.6). Found statically by the secret-flow
	// taint analysis over the workload sources; the copy itself is also
	// priced by the machine model, so the leak shows up in the
	// performance ranking, not just as a security note.
	ProblemSecretLeak
	// ProblemDirectionMismatch flags an ecall handler whose boundary
	// buffer use contradicts the EDL's declared directions: an [in]
	// parameter written (the write is dropped at copy-back), an [out]
	// parameter read before its first write (stale enclave memory leaks
	// to the caller), or a [user_check] pointer dereferenced without a
	// bounds guard (§3.6). Found statically by the EDL cross-validation
	// of the taint analysis.
	ProblemDirectionMismatch
)

// String names the problem as in the paper.
func (p Problem) String() string {
	switch p {
	case ProblemSISC:
		return "Short Identical Successive Calls"
	case ProblemSDSC:
		return "Short Different Successive Calls"
	case ProblemSNC:
		return "Short Nested Calls"
	case ProblemSSC:
		return "Short Synchronisation Calls"
	case ProblemPaging:
		return "Paging"
	case ProblemPermissiveInterface:
		return "Permissive Enclave Interface"
	case ProblemReentrancy:
		return "Reentrant Enclave Interface"
	case ProblemLargeCopies:
		return "Expensive Boundary Copies"
	case ProblemTransitionBound:
		return "Transition-Bound Calls"
	case ProblemBoundarySync:
		return "Lock Held Across Enclave Boundary"
	case ProblemTransitionAmplification:
		return "Loop-Amplified Transitions"
	case ProblemBoundaryDataHazard:
		return "Boundary Data Hazard"
	case ProblemSecretLeak:
		return "Secret Data Crossing Boundary"
	case ProblemDirectionMismatch:
		return "Boundary Direction Mismatch"
	default:
		return "Unknown"
	}
}

// Solution is one mitigation strategy from Table 1.
type Solution int

const (
	// SolutionBatch batches repeated identical calls into one.
	SolutionBatch Solution = iota + 1
	// SolutionMerge merges different successive calls into one.
	SolutionMerge
	// SolutionMoveCaller moves the calling function across the boundary.
	SolutionMoveCaller
	// SolutionReorder moves a nested call before/after its parent.
	SolutionReorder
	// SolutionDuplicate duplicates ocall functionality inside the enclave.
	SolutionDuplicate
	// SolutionLockFree uses non-blocking data structures.
	SolutionLockFree
	// SolutionHybridLock spins in-enclave before sleeping outside.
	SolutionHybridLock
	// SolutionReduceMemory shrinks the enclave's working set.
	SolutionReduceMemory
	// SolutionPreloadPages loads pages into the EPC before the ecall.
	SolutionPreloadPages
	// SolutionSelfPaging manages memory inside the enclave instead of SGX
	// paging (Eleos/STANlite style).
	SolutionSelfPaging
	// SolutionLimitPublicEcalls declares ecalls private where possible.
	SolutionLimitPublicEcalls
	// SolutionLimitEcallsFromOcalls trims per-ocall allow lists.
	SolutionLimitEcallsFromOcalls
	// SolutionCheckPointers verifies user_check pointer handling.
	SolutionCheckPointers
	// SolutionSwitchless services the call with a worker thread instead of
	// an enclave transition ("SGX Switchless Calls Made Configless").
	SolutionSwitchless
	// SolutionReduceCopies shrinks or chunks the [in]/[out] buffer copies
	// of a call (§6).
	SolutionReduceCopies
	// SolutionRemoveDead deletes interface surface no caller can reach
	// (private ecalls allowed by no ocall).
	SolutionRemoveDead
)

// String names the solution.
func (s Solution) String() string {
	switch s {
	case SolutionBatch:
		return "batch calls"
	case SolutionMerge:
		return "merge calls"
	case SolutionMoveCaller:
		return "move caller in/out of enclave"
	case SolutionReorder:
		return "reorder calls"
	case SolutionDuplicate:
		return "duplicate ocalls inside enclave"
	case SolutionLockFree:
		return "use lock-free data structures"
	case SolutionHybridLock:
		return "use hybrid synchronisation primitives"
	case SolutionReduceMemory:
		return "reduce memory usage"
	case SolutionPreloadPages:
		return "load pages before ecall"
	case SolutionSelfPaging:
		return "do not use SGX paging"
	case SolutionLimitPublicEcalls:
		return "limit public ecalls"
	case SolutionLimitEcallsFromOcalls:
		return "limit ecalls from ocalls"
	case SolutionCheckPointers:
		return "check data and pointers"
	case SolutionSwitchless:
		return "use switchless calls"
	case SolutionReduceCopies:
		return "reduce boundary copies"
	case SolutionRemoveDead:
		return "remove unreachable ecalls"
	default:
		return "unknown"
	}
}

// Catalogue maps each problem to its Table 1 solutions.
func Catalogue() map[Problem][]Solution {
	return map[Problem][]Solution{
		ProblemSISC:   {SolutionBatch, SolutionMoveCaller},
		ProblemSDSC:   {SolutionMerge, SolutionMoveCaller},
		ProblemSNC:    {SolutionReorder, SolutionDuplicate},
		ProblemSSC:    {SolutionLockFree, SolutionHybridLock},
		ProblemPaging: {SolutionReduceMemory, SolutionPreloadPages, SolutionSelfPaging},
		ProblemPermissiveInterface: {
			SolutionLimitPublicEcalls, SolutionLimitEcallsFromOcalls, SolutionCheckPointers,
		},
		ProblemReentrancy: {SolutionLimitEcallsFromOcalls, SolutionRemoveDead},
		ProblemLargeCopies: {
			SolutionReduceCopies, SolutionSwitchless, SolutionMoveCaller,
		},
		ProblemTransitionBound: {SolutionSwitchless, SolutionBatch, SolutionDuplicate},
		ProblemBoundarySync:    {SolutionReorder, SolutionHybridLock, SolutionLockFree},
		ProblemTransitionAmplification: {
			SolutionBatch, SolutionSwitchless, SolutionMoveCaller,
		},
		ProblemBoundaryDataHazard: {SolutionCheckPointers, SolutionReduceCopies},
		ProblemSecretLeak: {
			SolutionCheckPointers, SolutionReduceCopies, SolutionMoveCaller,
		},
		ProblemDirectionMismatch: {SolutionCheckPointers, SolutionReduceCopies},
	}
}

// Finding is one detected problem with evidence and ranked solutions
// (§4.3.2: reordering first, then the TCB-increasing options; moving code
// out of the enclave requires a security evaluation).
type Finding struct {
	Problem  Problem
	Call     string
	Kind     events.CallKind
	Partner  string // merge partner / indirect parent, when applicable
	Evidence string
	// Solutions are ordered by recommendation priority.
	Solutions []Solution
	// SecurityNote flags solutions that change the TCB or move sensitive
	// code out of the enclave.
	SecurityNote string
	// Score orders findings within a problem class (higher = stronger).
	Score float64
}

// DetectMoving applies Equation 1: calls dominated by executions shorter
// than the transition cost should be moved across the enclave boundary
// (or, for ocalls during ecalls, duplicated inside — the SNC solution).
func (a *Analyzer) DetectMoving() []Finding {
	var out []Finding
	for _, name := range a.perNames {
		s, ok := a.Stats(name)
		if !ok {
			continue
		}
		if f, ok := MovingFinding(s, a.opts.Weights); ok {
			out = append(out, f)
		}
	}
	return out
}

// DetectReordering applies Equation 2: nested calls issued in the first
// (or last) 10/20µs of their direct parent can often execute before (or
// after) the parent instead, saving transitions without TCB changes.
func (a *Analyzer) DetectReordering() []Finding {
	var out []Finding
	for _, name := range a.perNames {
		var agg ReorderAgg
		for _, c := range a.callsNamed(name) {
			if c.hasDirect {
				agg.Add(c.offsetStart, c.offsetEnd)
			}
		}
		out = append(out, ReorderFindings(name, a.kindOf(name), agg, a.opts.Weights)...)
	}
	return out
}

// DetectMerging applies Equation 3: calls whose indirect parent ends just
// before they start can be merged into one call (batched, when a call is
// its own indirect parent — the SISC case).
func (a *Analyzer) DetectMerging() []Finding {
	pairs := make(map[MergePair]*MergeAgg)
	for i := range a.all {
		c := &a.all[i]
		if c.indirect < 0 {
			continue
		}
		k := MergePair{Parent: a.all[c.indirect].ev.Name, Child: c.ev.Name}
		agg := pairs[k]
		if agg == nil {
			agg = &MergeAgg{}
			pairs[k] = agg
		}
		agg.Add(c.gap)
	}
	totalOf := func(name string) int { return len(a.byName[name]) }
	return MergeFindings(pairs, totalOf, a.kindOf, a.opts.Weights)
}

// DetectSSC analyses the sleep/wake events of the SDK synchronisation
// ocalls (§3.4, §4.1.3): frequent short wake-ups indicate short critical
// sections where leaving the enclave to sleep is wasteful.
func (a *Analyzer) DetectSSC() []Finding {
	w := a.opts.Weights
	agg := SyncAgg{Total: a.trace.Syncs.Len()}
	if agg.Total < w.SyncMinOcalls {
		return nil
	}
	byCall := make(map[events.EventID]time.Duration)
	for i := range a.all {
		byCall[a.all[i].ev.ID] = a.all[i].adjusted
	}
	a.trace.Syncs.Scan(func(_ int, s events.SyncEvent) bool {
		switch s.Kind {
		case events.SyncWake:
			agg.Wakes++
			if d, ok := byCall[s.Call]; ok && d < w.SyncShortLimit {
				agg.ShortWakes++
			}
		case events.SyncSleep:
			agg.Sleeps++
		}
		return true
	})
	return SSCFindings(agg, w)
}

// DetectPaging flags EPC paging activity (§3.5): every page-out requires
// re-encryption and every fault an AEX, so enclaves should rarely page.
func (a *Analyzer) DetectPaging() []Finding {
	return PagingFindings(a.PagingSummary(), a.opts.Weights)
}

// PagingStats summarises EPC paging activity.
type PagingStats struct {
	PageIns  int
	PageOuts int
	// DuringCalls counts paging events that fell inside a recorded call
	// window on the same thread.
	DuringCalls int
	// ByRegion counts events per enclave page kind (heap, stack, code…).
	ByRegion map[string]int
}

// PagingSummary aggregates the paging events (§4.1.5).
func (a *Analyzer) PagingSummary() PagingStats {
	out := PagingStats{ByRegion: make(map[string]int)}
	a.trace.Paging.Scan(func(_ int, p events.PagingEvent) bool {
		if p.Kind == events.PageIn {
			out.PageIns++
		} else {
			out.PageOuts++
		}
		out.ByRegion[p.PageKind]++
		for i := range a.all {
			c := &a.all[i]
			if c.ev.Thread == p.Thread && c.ev.Start <= p.Time && p.Time <= c.ev.End {
				out.DuringCalls++
				break
			}
		}
		return true
	})
	return out
}

// WakeEdge says thread From woke thread To n times (§4.1.3 dependency
// tracking).
type WakeEdge struct {
	From  int64
	To    int64
	Count int
}

// WakeGraph aggregates which thread wakes which, exposing the
// high-contention pairs the paper uses to diagnose SecureKeeper's connect
// phase (§5.2.4).
func (a *Analyzer) WakeGraph() []WakeEdge {
	agg := make(map[[2]int64]int)
	a.trace.Syncs.Scan(func(_ int, s events.SyncEvent) bool {
		if s.Kind != events.SyncWake {
			return true
		}
		for _, t := range s.Targets {
			agg[[2]int64{int64(s.Thread), int64(t)}]++
		}
		return true
	})
	return WakeEdges(agg)
}

// isSyncName reports whether the call is one of the SDK sync ocalls.
func isSyncName(name string) bool {
	switch name {
	case "sgx_thread_wait_untrusted_event_ocall",
		"sgx_thread_set_untrusted_event_ocall",
		"sgx_thread_set_multiple_untrusted_events_ocall",
		"sgx_thread_setwait_untrusted_events_ocall":
		return true
	}
	return false
}
