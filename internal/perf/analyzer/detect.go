package analyzer

import (
	"fmt"
	"sort"
	"time"

	"sgxperf/internal/perf/events"
)

// Problem is one of the five SGX performance anti-patterns of Table 1.
type Problem int

const (
	// ProblemSISC is Short Identical Successive Calls (§3.1).
	ProblemSISC Problem = iota + 1
	// ProblemSDSC is Short Different Successive Calls (§3.2).
	ProblemSDSC
	// ProblemSNC is Short Nested Calls (§3.3).
	ProblemSNC
	// ProblemSSC is Short Synchronisation Calls (§3.4).
	ProblemSSC
	// ProblemPaging is EPC paging (§3.5).
	ProblemPaging
	// ProblemPermissiveInterface is the security row of Table 1 (§3.6):
	// an enclave interface that is wider or looser than the workload
	// needs. The analyser reports it through SecurityHints rather than
	// Findings, but it is part of the problem catalogue.
	ProblemPermissiveInterface
)

// String names the problem as in the paper.
func (p Problem) String() string {
	switch p {
	case ProblemSISC:
		return "Short Identical Successive Calls"
	case ProblemSDSC:
		return "Short Different Successive Calls"
	case ProblemSNC:
		return "Short Nested Calls"
	case ProblemSSC:
		return "Short Synchronisation Calls"
	case ProblemPaging:
		return "Paging"
	case ProblemPermissiveInterface:
		return "Permissive Enclave Interface"
	default:
		return "Unknown"
	}
}

// Solution is one mitigation strategy from Table 1.
type Solution int

const (
	// SolutionBatch batches repeated identical calls into one.
	SolutionBatch Solution = iota + 1
	// SolutionMerge merges different successive calls into one.
	SolutionMerge
	// SolutionMoveCaller moves the calling function across the boundary.
	SolutionMoveCaller
	// SolutionReorder moves a nested call before/after its parent.
	SolutionReorder
	// SolutionDuplicate duplicates ocall functionality inside the enclave.
	SolutionDuplicate
	// SolutionLockFree uses non-blocking data structures.
	SolutionLockFree
	// SolutionHybridLock spins in-enclave before sleeping outside.
	SolutionHybridLock
	// SolutionReduceMemory shrinks the enclave's working set.
	SolutionReduceMemory
	// SolutionPreloadPages loads pages into the EPC before the ecall.
	SolutionPreloadPages
	// SolutionSelfPaging manages memory inside the enclave instead of SGX
	// paging (Eleos/STANlite style).
	SolutionSelfPaging
	// SolutionLimitPublicEcalls declares ecalls private where possible.
	SolutionLimitPublicEcalls
	// SolutionLimitEcallsFromOcalls trims per-ocall allow lists.
	SolutionLimitEcallsFromOcalls
	// SolutionCheckPointers verifies user_check pointer handling.
	SolutionCheckPointers
)

// String names the solution.
func (s Solution) String() string {
	switch s {
	case SolutionBatch:
		return "batch calls"
	case SolutionMerge:
		return "merge calls"
	case SolutionMoveCaller:
		return "move caller in/out of enclave"
	case SolutionReorder:
		return "reorder calls"
	case SolutionDuplicate:
		return "duplicate ocalls inside enclave"
	case SolutionLockFree:
		return "use lock-free data structures"
	case SolutionHybridLock:
		return "use hybrid synchronisation primitives"
	case SolutionReduceMemory:
		return "reduce memory usage"
	case SolutionPreloadPages:
		return "load pages before ecall"
	case SolutionSelfPaging:
		return "do not use SGX paging"
	case SolutionLimitPublicEcalls:
		return "limit public ecalls"
	case SolutionLimitEcallsFromOcalls:
		return "limit ecalls from ocalls"
	case SolutionCheckPointers:
		return "check data and pointers"
	default:
		return "unknown"
	}
}

// Catalogue maps each problem to its Table 1 solutions.
func Catalogue() map[Problem][]Solution {
	return map[Problem][]Solution{
		ProblemSISC:   {SolutionBatch, SolutionMoveCaller},
		ProblemSDSC:   {SolutionMerge, SolutionMoveCaller},
		ProblemSNC:    {SolutionReorder, SolutionDuplicate},
		ProblemSSC:    {SolutionLockFree, SolutionHybridLock},
		ProblemPaging: {SolutionReduceMemory, SolutionPreloadPages, SolutionSelfPaging},
		ProblemPermissiveInterface: {
			SolutionLimitPublicEcalls, SolutionLimitEcallsFromOcalls, SolutionCheckPointers,
		},
	}
}

// Finding is one detected problem with evidence and ranked solutions
// (§4.3.2: reordering first, then the TCB-increasing options; moving code
// out of the enclave requires a security evaluation).
type Finding struct {
	Problem  Problem
	Call     string
	Kind     events.CallKind
	Partner  string // merge partner / indirect parent, when applicable
	Evidence string
	// Solutions are ordered by recommendation priority.
	Solutions []Solution
	// SecurityNote flags solutions that change the TCB or move sensitive
	// code out of the enclave.
	SecurityNote string
	// Score orders findings within a problem class (higher = stronger).
	Score float64
}

// sortFindings orders findings for the report: by problem, then score.
func sortFindings(fs []Finding) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Problem != fs[j].Problem {
			return fs[i].Problem < fs[j].Problem
		}
		return fs[i].Score > fs[j].Score
	})
}

// DetectMoving applies Equation 1: calls dominated by executions shorter
// than the transition cost should be moved across the enclave boundary
// (or, for ocalls during ecalls, duplicated inside — the SNC solution).
func (a *Analyzer) DetectMoving() []Finding {
	w := a.opts.Weights
	var out []Finding
	for _, name := range a.perNames {
		if a.kindOf(name) == events.KindOcall && isSyncName(name) {
			continue // sync ocalls are handled by the SSC detector
		}
		s, ok := a.Stats(name)
		if !ok || s.Count == 0 {
			continue
		}
		if !(s.FracBelow1us >= w.Move1 || s.FracBelow5us >= w.Move5 || s.FracBelow10us >= w.Move10) {
			continue
		}
		f := Finding{
			Call: name,
			Kind: s.Kind,
			Evidence: fmt.Sprintf(
				"%d executions; %.0f%% <1µs, %.0f%% <5µs, %.0f%% <10µs (mean %v)",
				s.Count, s.FracBelow1us*100, s.FracBelow5us*100, s.FracBelow10us*100, s.Mean),
			Score: s.FracBelow10us * float64(s.Count),
		}
		if s.Kind == events.KindEcall {
			f.Problem = ProblemSISC
			f.Solutions = []Solution{SolutionBatch, SolutionMoveCaller}
			f.SecurityNote = "moving an ecall's code outside the enclave may expose sensitive data; perform a security evaluation first (§3.1)"
		} else {
			f.Problem = ProblemSNC
			f.Solutions = []Solution{SolutionReorder, SolutionMoveCaller, SolutionDuplicate}
			f.SecurityNote = "duplicating ocall functionality inside the enclave increases the TCB (§3.3)"
		}
		out = append(out, f)
	}
	return out
}

// DetectReordering applies Equation 2: nested calls issued in the first
// (or last) 10/20µs of their direct parent can often execute before (or
// after) the parent instead, saving transitions without TCB changes.
func (a *Analyzer) DetectReordering() []Finding {
	w := a.opts.Weights
	var out []Finding
	for _, name := range a.perNames {
		calls := a.callsNamed(name)
		var total, s10, s20, e10, e20 int
		for _, c := range calls {
			if !c.hasDirect {
				continue
			}
			total++
			switch {
			case c.offsetStart < micros(10):
				s10++
			case c.offsetStart < micros(20):
				s20++
			}
			switch {
			case c.offsetEnd >= 0 && c.offsetEnd < micros(10):
				e10++
			case c.offsetEnd >= 0 && c.offsetEnd < micros(20):
				e20++
			}
		}
		if total == 0 {
			continue
		}
		n := float64(total)
		startScore := float64(s10)/n*w.ReorderW10 + float64(s20)/n*w.ReorderW20
		endScore := float64(e10)/n*w.ReorderW10 + float64(e20)/n*w.ReorderW20
		report := func(where string, score float64, c10, c20 int) {
			out = append(out, Finding{
				Problem: ProblemSNC,
				Call:    name,
				Kind:    a.kindOf(name),
				Evidence: fmt.Sprintf(
					"%d/%d nested executions within %s 10µs (+%d within 20µs) of the parent (weighted score %.2f ≥ %.2f)",
					c10, total, where, c20, score, w.ReorderThreshold),
				Solutions:    []Solution{SolutionReorder},
				SecurityNote: "",
				Score:        score,
			})
		}
		if startScore >= w.ReorderThreshold {
			report("the first", startScore, s10, s20)
		}
		if endScore >= w.ReorderThreshold {
			report("the last", endScore, e10, e20)
		}
	}
	return out
}

// DetectMerging applies Equation 3: calls whose indirect parent ends just
// before they start can be merged into one call (batched, when a call is
// its own indirect parent — the SISC case).
func (a *Analyzer) DetectMerging() []Finding {
	w := a.opts.Weights
	type pairKey struct{ parent, child string }
	type pairAgg struct {
		count            int
		g1, g5, g10, g20 int
	}
	pairs := make(map[pairKey]*pairAgg)
	for i := range a.all {
		c := &a.all[i]
		if c.indirect < 0 {
			continue
		}
		p := &a.all[c.indirect]
		k := pairKey{p.ev.Name, c.ev.Name}
		agg := pairs[k]
		if agg == nil {
			agg = &pairAgg{}
			pairs[k] = agg
		}
		agg.count++
		switch {
		case c.gap < micros(1):
			agg.g1++
		case c.gap < micros(5):
			agg.g5++
		case c.gap < micros(10):
			agg.g10++
		case c.gap < micros(20):
			agg.g20++
		}
	}
	var out []Finding
	for k, agg := range pairs {
		if isSyncName(k.child) || isSyncName(k.parent) {
			continue
		}
		childTotal := len(a.byName[k.child])
		parentTotal := len(a.byName[k.parent])
		if childTotal == 0 || parentTotal == 0 {
			continue
		}
		// λ: the parent must be the indirect parent of the call most of
		// the time.
		if float64(agg.count)/float64(childTotal) < w.MergeMinPairFrac {
			continue
		}
		pn := float64(parentTotal)
		score := float64(agg.g1)/pn*w.MergeW1 +
			float64(agg.g5)/pn*w.MergeW5 +
			float64(agg.g10)/pn*w.MergeW10 +
			float64(agg.g20)/pn*w.MergeW20
		if score < w.MergeThreshold {
			continue
		}
		f := Finding{
			Call:    k.child,
			Kind:    a.kindOf(k.child),
			Partner: k.parent,
			Evidence: fmt.Sprintf(
				"%d executions follow %s closely (gaps: %d<1µs, %d<5µs, %d<10µs, %d<20µs; weighted score %.2f ≥ %.2f)",
				agg.count, k.parent, agg.g1, agg.g5, agg.g10, agg.g20, score, w.MergeThreshold),
			Score: score,
		}
		if k.parent == k.child {
			// Batching is the special case of merging with the call being
			// its own indirect parent (§4.3.2).
			f.Problem = ProblemSISC
			f.Solutions = []Solution{SolutionBatch, SolutionMoveCaller}
		} else {
			f.Problem = ProblemSDSC
			f.Solutions = []Solution{SolutionMerge, SolutionMoveCaller}
		}
		out = append(out, f)
	}
	return out
}

// DetectSSC analyses the sleep/wake events of the SDK synchronisation
// ocalls (§3.4, §4.1.3): frequent short wake-ups indicate short critical
// sections where leaving the enclave to sleep is wasteful.
func (a *Analyzer) DetectSSC() []Finding {
	w := a.opts.Weights
	nsyncs := a.trace.Syncs.Len()
	if nsyncs < w.SyncMinOcalls {
		return nil
	}
	var wakes, shortWakes, sleeps int
	byCall := make(map[events.EventID]time.Duration)
	for i := range a.all {
		byCall[a.all[i].ev.ID] = a.all[i].adjusted
	}
	a.trace.Syncs.Scan(func(_ int, s events.SyncEvent) bool {
		switch s.Kind {
		case events.SyncWake:
			wakes++
			if d, ok := byCall[s.Call]; ok && d < w.SyncShortLimit {
				shortWakes++
			}
		case events.SyncSleep:
			sleeps++
		}
		return true
	})
	if wakes == 0 && sleeps == 0 {
		return nil
	}
	return []Finding{{
		Problem: ProblemSSC,
		Call:    "sdk synchronisation",
		Kind:    events.KindOcall,
		Evidence: fmt.Sprintf(
			"%d sync ocall events: %d sleeps, %d wake-ups (%d wake-ups <%v)",
			nsyncs, sleeps, wakes, shortWakes, w.SyncShortLimit),
		Solutions:    []Solution{SolutionHybridLock, SolutionLockFree},
		SecurityNote: "",
		Score:        float64(nsyncs),
	}}
}

// DetectPaging flags EPC paging activity (§3.5): every page-out requires
// re-encryption and every fault an AEX, so enclaves should rarely page.
func (a *Analyzer) DetectPaging() []Finding {
	p := a.PagingSummary()
	if p.PageIns+p.PageOuts < a.opts.Weights.PagingMinEvents {
		return nil
	}
	return []Finding{{
		Problem: ProblemPaging,
		Call:    "enclave memory",
		Evidence: fmt.Sprintf(
			"%d page-ins, %d page-outs (%d during calls)",
			p.PageIns, p.PageOuts, p.DuringCalls),
		Solutions: []Solution{SolutionReduceMemory, SolutionPreloadPages, SolutionSelfPaging},
		Score:     float64(p.PageIns + p.PageOuts),
	}}
}

// PagingStats summarises EPC paging activity.
type PagingStats struct {
	PageIns  int
	PageOuts int
	// DuringCalls counts paging events that fell inside a recorded call
	// window on the same thread.
	DuringCalls int
	// ByRegion counts events per enclave page kind (heap, stack, code…).
	ByRegion map[string]int
}

// PagingSummary aggregates the paging events (§4.1.5).
func (a *Analyzer) PagingSummary() PagingStats {
	out := PagingStats{ByRegion: make(map[string]int)}
	a.trace.Paging.Scan(func(_ int, p events.PagingEvent) bool {
		if p.Kind == events.PageIn {
			out.PageIns++
		} else {
			out.PageOuts++
		}
		out.ByRegion[p.PageKind]++
		for i := range a.all {
			c := &a.all[i]
			if c.ev.Thread == p.Thread && c.ev.Start <= p.Time && p.Time <= c.ev.End {
				out.DuringCalls++
				break
			}
		}
		return true
	})
	return out
}

// WakeEdge says thread From woke thread To n times (§4.1.3 dependency
// tracking).
type WakeEdge struct {
	From  int64
	To    int64
	Count int
}

// WakeGraph aggregates which thread wakes which, exposing the
// high-contention pairs the paper uses to diagnose SecureKeeper's connect
// phase (§5.2.4).
func (a *Analyzer) WakeGraph() []WakeEdge {
	agg := make(map[[2]int64]int)
	a.trace.Syncs.Scan(func(_ int, s events.SyncEvent) bool {
		if s.Kind != events.SyncWake {
			return true
		}
		for _, t := range s.Targets {
			agg[[2]int64{int64(s.Thread), int64(t)}]++
		}
		return true
	})
	out := make([]WakeEdge, 0, len(agg))
	for k, n := range agg {
		out = append(out, WakeEdge{From: k[0], To: k[1], Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if out[i].From != out[j].From {
			return out[i].From < out[j].From
		}
		return out[i].To < out[j].To
	})
	return out
}

// isSyncName reports whether the call is one of the SDK sync ocalls.
func isSyncName(name string) bool {
	switch name {
	case "sgx_thread_wait_untrusted_event_ocall",
		"sgx_thread_set_untrusted_event_ocall",
		"sgx_thread_set_multiple_untrusted_events_ocall",
		"sgx_thread_setwait_untrusted_events_ocall":
		return true
	}
	return false
}
