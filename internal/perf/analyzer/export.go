package analyzer

import (
	"fmt"
	"strings"
)

// The paper's analyser "can generate histograms for the call execution
// times as well as scatter plots" (§4.3.1, Figs. 7–8). This file provides
// the plot-ready exports: CSV data plus gnuplot scripts that render in
// the figures' style.

// StatsCSV renders the per-call statistics table as CSV (durations in
// nanoseconds).
func (a *Analyzer) StatsCSV() string {
	var b strings.Builder
	b.WriteString("call,kind,count,mean_ns,median_ns,stddev_ns,p90_ns,p95_ns,p99_ns,min_ns,max_ns,frac_below_1us,frac_below_5us,frac_below_10us,total_aex\n")
	for _, s := range a.AllStats() {
		fmt.Fprintf(&b, "%s,%s,%d,%d,%d,%d,%d,%d,%d,%d,%d,%.4f,%.4f,%.4f,%d\n",
			csvEscape(s.Name), s.Kind, s.Count,
			s.Mean.Nanoseconds(), s.Median.Nanoseconds(), s.Std.Nanoseconds(),
			s.P90.Nanoseconds(), s.P95.Nanoseconds(), s.P99.Nanoseconds(),
			s.Min.Nanoseconds(), s.Max.Nanoseconds(),
			s.FracBelow1us, s.FracBelow5us, s.FracBelow10us, s.TotalAEX)
	}
	return b.String()
}

// HistogramCSV renders one call's histogram as CSV: bin low/high bounds
// in nanoseconds and the count (Fig. 7's data).
func (a *Analyzer) HistogramCSV(name string, bins int) (string, error) {
	hist := a.Histogram(name, bins)
	if hist == nil {
		return "", fmt.Errorf("analyzer: no events for call %q", name)
	}
	var b strings.Builder
	b.WriteString("bin_lo_ns,bin_hi_ns,count\n")
	for _, bin := range hist {
		fmt.Fprintf(&b, "%d,%d,%d\n", bin.Lo.Nanoseconds(), bin.Hi.Nanoseconds(), bin.Count)
	}
	return b.String(), nil
}

// ScatterCSV renders one call's executions over application time as CSV
// (Fig. 8's data).
func (a *Analyzer) ScatterCSV(name string) (string, error) {
	pts := a.Scatter(name)
	if pts == nil {
		return "", fmt.Errorf("analyzer: no events for call %q", name)
	}
	var b strings.Builder
	b.WriteString("t_since_start_ns,execution_ns\n")
	for _, p := range pts {
		fmt.Fprintf(&b, "%d,%d\n", p.T.Nanoseconds(), p.Dur.Nanoseconds())
	}
	return b.String(), nil
}

// WakeGraphCSV renders the thread wake-up dependencies (§4.1.3).
func (a *Analyzer) WakeGraphCSV() string {
	var b strings.Builder
	b.WriteString("waker_thread,woken_thread,count\n")
	for _, e := range a.WakeGraph() {
		fmt.Fprintf(&b, "%d,%d,%d\n", e.From, e.To, e.Count)
	}
	return b.String()
}

// GnuplotHistogram returns a gnuplot script rendering a HistogramCSV file
// in the style of Fig. 7 (execution time on x, count on y).
func GnuplotHistogram(call, csvPath, outPath string) string {
	return fmt.Sprintf(`set terminal pdfcairo size 10cm,7cm
set output %q
set datafile separator ","
set title "%s"
set xlabel "Execution time (µs)"
set ylabel "# of Executions"
set style fill solid 0.8
set boxwidth 0.9 relative
plot %q using (($1+$2)/2000.0):3 every ::1 with boxes notitle
`, outPath, gnuplotEscape(call), csvPath)
}

// GnuplotScatter returns a gnuplot script rendering a ScatterCSV file in
// the style of Fig. 8 (time since application start on x, execution time
// on y).
func GnuplotScatter(call, csvPath, outPath string) string {
	return fmt.Sprintf(`set terminal pdfcairo size 10cm,7cm
set output %q
set datafile separator ","
set title "%s"
set xlabel "Time since application start (ns)"
set ylabel "Execution time (ns)"
plot %q using 1:2 every ::1 with points pointtype 7 pointsize 0.2 notitle
`, outPath, gnuplotEscape(call), csvPath)
}

func csvEscape(s string) string {
	if !strings.ContainsAny(s, ",\"\n") {
		return s
	}
	return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
}

func gnuplotEscape(s string) string {
	return strings.ReplaceAll(s, "_", `\_`)
}
