package logger_test

import (
	"testing"

	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
)

func TestLoggerFunctionalOptions(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h,
		logger.WithWorkload("opts"),
		logger.WithAEX(logger.AEXCount),
		logger.WithPagingTrace(false),
		logger.WithFlushEvery(1),
	)
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_noop", nil)
	tr := l.Trace()
	if tr.Meta.Len() != 1 || tr.Meta.At(0).Workload != "opts" {
		t.Fatalf("workload meta = %+v", tr.Meta.Rows())
	}
	if n := tr.Ecalls.Len(); n != 1 {
		t.Fatalf("recorded %d ecalls, want 1", n)
	}
}

func TestLoggerFlushAndDetached(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h, logger.WithWorkload("flush"), logger.WithPagingTrace(false))
	if err != nil {
		t.Fatal(err)
	}
	if l.Detached() {
		t.Fatal("fresh logger reports detached")
	}
	// Subscribers are notified on insert only, never on read — so a
	// subscriber observing the event after Flush proves Flush drained the
	// shard buffer into the database without any reader's help.
	tr := l.Trace()
	seen := 0
	cancel := tr.Ecalls.Subscribe(func(rows []events.CallEvent) { seen += len(rows) }, false)
	defer cancel()
	a.call(t, "ecall_noop", nil)
	if seen != 0 {
		t.Fatalf("event flushed before Flush (batch size is %d)", 256)
	}
	l.Flush()
	if seen != 1 {
		t.Fatalf("after Flush subscriber saw %d ecalls, want 1", seen)
	}
	l.Detach()
	if !l.Detached() {
		t.Fatal("Detach did not mark the logger detached")
	}
}
