package logger_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// TestStressWholeStack exercises the full stack concurrently: two
// enclaves, eight threads, mixed ecalls/ocalls, in-enclave locking (sync
// ocalls), heap traffic under EPC pressure (paging events), and timer
// AEXs — all while the logger records. It asserts global invariants
// rather than exact numbers, and is most valuable under -race.
func TestStressWholeStack(t *testing.T) {
	h, err := host.New(host.WithEPCCapacity(400))
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "stress", AEX: logger.AEXTrace})
	if err != nil {
		t.Fatal(err)
	}

	type enclaveUnderTest struct {
		proxies map[string]sdk.Proxy
		id      sgx.EnclaveID
	}
	var encs []enclaveUnderTest
	for e := 0; e < 2; e++ {
		iface := edl.NewInterface()
		for _, n := range []string{"ecall_mix", "ecall_touch"} {
			if _, err := iface.AddEcall(n, true); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := iface.AddOcall("ocall_noop", nil); err != nil {
			t.Fatal(err)
		}
		var m sdk.Mutex
		var heapOnce sync.Once
		var heap sgx.Vaddr
		impl := map[string]sdk.TrustedFn{
			"ecall_mix": func(env *sdk.Env, args any) (any, error) {
				if err := m.Lock(env); err != nil {
					return nil, err
				}
				env.Compute(time.Duration(20+args.(int)%80) * time.Microsecond)
				if err := m.Unlock(env); err != nil {
					return nil, err
				}
				if args.(int)%3 == 0 {
					return env.Ocall("ocall_noop", nil)
				}
				return nil, nil
			},
			"ecall_touch": func(env *sdk.Env, args any) (any, error) {
				var initErr error
				heapOnce.Do(func() {
					heap, initErr = env.Alloc(120 * sgx.PageSize)
				})
				if initErr != nil {
					return nil, initErr
				}
				off := sgx.Vaddr(args.(int) % 100 * sgx.PageSize)
				return nil, env.Touch(heap+off, 2*sgx.PageSize, true)
			},
		}
		ctx := h.NewContext(fmt.Sprintf("builder-%d", e))
		app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
			Name:      fmt.Sprintf("stress-%d", e),
			HeapBytes: 128 * sgx.PageSize,
			NumTCS:    10,
		}, iface, impl)
		if err != nil {
			t.Fatal(err)
		}
		otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
			"ocall_noop": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		encs = append(encs, enclaveUnderTest{
			proxies: sdk.Proxies(app, h.Proc, otab),
			id:      app.ID(),
		})
	}

	const threads = 8
	const opsPerThread = 120
	errs := make(chan error, threads)
	for w := 0; w < threads; w++ {
		w := w
		if err := h.Spawn(fmt.Sprintf("stress-%d", w), func(ctx *sgx.Context) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < opsPerThread; i++ {
				enc := encs[rng.Intn(len(encs))]
				var err error
				if rng.Intn(2) == 0 {
					_, err = enc.proxies["ecall_mix"](ctx, i)
				} else {
					_, err = enc.proxies["ecall_touch"](ctx, i)
				}
				if err != nil {
					errs <- fmt.Errorf("thread %d op %d: %w", w, i, err)
					return
				}
			}
			errs <- nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	trace := l.Trace()
	wantCalls := threads * opsPerThread
	if got := trace.Ecalls.Len(); got != wantCalls {
		t.Fatalf("ecall events = %d, want %d", got, wantCalls)
	}
	// Invariants over every recorded event.
	ids := map[events.EventID]bool{}
	byID := map[events.EventID]events.CallEvent{}
	checkCall := func(e events.CallEvent) {
		if ids[e.ID] {
			t.Fatalf("duplicate event id %d", e.ID)
		}
		ids[e.ID] = true
		byID[e.ID] = e
		if e.End < e.Start {
			t.Fatalf("event %d ends before it starts", e.ID)
		}
		if e.Enclave != encs[0].id && e.Enclave != encs[1].id {
			t.Fatalf("event %d attributed to unknown enclave %d", e.ID, e.Enclave)
		}
	}
	for _, e := range trace.Ecalls.Rows() {
		checkCall(e)
	}
	for _, o := range trace.Ocalls.Rows() {
		checkCall(o)
	}
	// Every ocall's parent is a recorded ecall that encloses it in time
	// on the same thread.
	for _, o := range trace.Ocalls.Rows() {
		p, ok := byID[o.Parent]
		if !ok {
			t.Fatalf("ocall %d has unknown parent %d", o.ID, o.Parent)
		}
		if p.Kind != events.KindEcall || p.Thread != o.Thread {
			t.Fatalf("ocall %d parent mismatch: %+v", o.ID, p)
		}
		if o.Start < p.Start || o.End > p.End {
			t.Fatalf("ocall %d window outside its parent", o.ID)
		}
	}
	// AEX events reference live calls.
	for _, x := range trace.AEXs.Rows() {
		if x.During != events.NoEvent {
			if _, ok := byID[x.During]; !ok {
				t.Fatalf("AEX references unknown call %d", x.During)
			}
		}
	}
	// The heap pressure must have produced paging traffic, and the
	// contended mutex sync events (scheduling permitting, usually both).
	if trace.Paging.Len() == 0 {
		t.Log("note: no paging events this run (EPC pressure not reached)")
	}
	t.Logf("stress: %d ecalls, %d ocalls, %d aex, %d paging, %d sync",
		trace.Ecalls.Len(), trace.Ocalls.Len(), trace.AEXs.Len(),
		trace.Paging.Len(), trace.Syncs.Len())
}
