package logger_test

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// runGoldenWorkload runs a fixed multi-threaded workload with the logger
// attached at the given flush batch size and returns the recorded trace.
// The workload is deterministic in virtual time: threads never share
// locks, never page, and every compute duration is a pure function of
// (worker, iteration), so the only run-to-run variation is the order in
// which threads interleave on the global event-ID counter — exactly the
// nondeterminism Canonicalize removes.
func runGoldenWorkload(t *testing.T, flushEvery int) *events.Trace {
	t.Helper()
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{
		Workload:   "golden",
		AEX:        logger.AEXTrace,
		FlushEvery: flushEvery,
	})
	if err != nil {
		t.Fatal(err)
	}

	iface := edl.NewInterface()
	for _, n := range []string{"ecall_work", "ecall_chatty"} {
		if _, err := iface.AddEcall(n, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iface.AddOcall("ocall_ping", nil); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_work": func(env *sdk.Env, args any) (any, error) {
			env.Compute(time.Duration(5+args.(int)%23) * time.Microsecond)
			return nil, nil
		},
		"ecall_chatty": func(env *sdk.Env, args any) (any, error) {
			env.Compute(2 * time.Microsecond)
			if _, err := env.Ocall("ocall_ping", nil); err != nil {
				return nil, err
			}
			env.Compute(3 * time.Microsecond)
			return nil, nil
		},
	}
	ctx := h.NewContext("builder")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:   "golden",
		NumTCS: 8,
	}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_ping": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	proxies := sdk.Proxies(app, h.Proc, otab)

	const threads = 4
	const opsPerThread = 50
	errs := make(chan error, threads)
	for w := 0; w < threads; w++ {
		w := w
		if err := h.Spawn(fmt.Sprintf("golden-%d", w), func(ctx *sgx.Context) {
			for i := 0; i < opsPerThread; i++ {
				name := "ecall_work"
				if (w+i)%3 == 0 {
					name = "ecall_chatty"
				}
				if _, err := proxies[name](ctx, w*1000+i); err != nil {
					errs <- fmt.Errorf("worker %d op %d: %w", w, i, err)
					return
				}
			}
			errs <- nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	h.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	l.Detach()
	return l.Trace()
}

// encodeCanonical canonicalises the trace and serialises it.
func encodeCanonical(t *testing.T, trace *events.Trace) []byte {
	t.Helper()
	trace.Canonicalize()
	var buf bytes.Buffer
	if err := trace.Save(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestGoldenTraceBatchingInvariant is the tentpole's hard invariant: the
// batched per-thread recording pipeline must produce a trace that is
// byte-identical (after canonical event-ID ordering) to the unbatched
// path, which has the same per-event semantics as the old global-mutex
// recorder (FlushEvery=1 publishes every event immediately).
func TestGoldenTraceBatchingInvariant(t *testing.T) {
	unbatched := runGoldenWorkload(t, 1)
	batched := runGoldenWorkload(t, 256)

	a := encodeCanonical(t, unbatched)
	b := encodeCanonical(t, batched)
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical traces differ: unbatched %d bytes, batched %d bytes", len(a), len(b))
	}

	// The analyser must see the two traces identically too.
	ra := analyzeTrace(t, unbatched)
	rb := analyzeTrace(t, batched)
	if !reflect.DeepEqual(ra, rb) {
		t.Fatalf("analyzer reports differ:\nunbatched: %+v\nbatched:   %+v", ra, rb)
	}
}

// TestGoldenTraceDeterminism runs the identical workload twice at the
// default batch size: after canonicalisation the two traces must be
// byte-identical.
func TestGoldenTraceDeterminism(t *testing.T) {
	first := encodeCanonical(t, runGoldenWorkload(t, 0))
	second := encodeCanonical(t, runGoldenWorkload(t, 0))
	if !bytes.Equal(first, second) {
		t.Fatalf("canonical traces differ across identical runs: %d vs %d bytes", len(first), len(second))
	}
}

func analyzeTrace(t *testing.T, trace *events.Trace) *analyzer.Report {
	t.Helper()
	a, err := analyzer.New(trace, analyzer.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return a.Analyze()
}

// TestStubCacheBuildsOnce asserts the stub-table cache's regression
// guarantee: many threads racing through their first ecall with the same
// ocall table must cause exactly one stub-table rewrite, never a
// duplicate rebuild (§4.1.2 rewrites the table once per table identity).
func TestStubCacheBuildsOnce(t *testing.T) {
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{Workload: "stub-race"})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Detach()

	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_ping", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("ocall_noop", nil); err != nil {
		t.Fatal(err)
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_ping": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_noop", nil)
		},
	}
	ctx := h.NewContext("builder")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:   "stub-race",
		NumTCS: 18,
	}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_noop": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	proxy := sdk.MustProxy(sdk.Proxies(app, h.Proc, otab), "ecall_ping")

	// Release all first ecalls as close to simultaneously as possible.
	const threads = 16
	var gate sync.WaitGroup
	gate.Add(1)
	errs := make(chan error, threads)
	for w := 0; w < threads; w++ {
		if err := h.Spawn(fmt.Sprintf("racer-%d", w), func(ctx *sgx.Context) {
			gate.Wait()
			for i := 0; i < 20; i++ {
				if _, err := proxy(ctx, nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	gate.Done()
	h.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	if got := l.StubBuilds(); got != 1 {
		t.Fatalf("stub table built %d times for one ocall table, want exactly 1", got)
	}
	if got, want := l.Trace().Ocalls.Len(), threads*20; got != want {
		t.Fatalf("ocall events = %d, want %d", got, want)
	}
}
