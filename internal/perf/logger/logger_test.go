package logger_test

import (
	"bytes"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// app is a small instrumentable application: one enclave with a noop
// ecall, an ecall issuing one ocall, a long-running ecall, and a
// mutex-guarded ecall for sync-event tests.
type app struct {
	h       *host.Host
	ctx     *sgx.Context
	appEnc  *sdk.AppEnclave
	proxies map[string]sdk.Proxy
	mutex   *sdk.Mutex
}

func newApp(t *testing.T, opts ...host.Option) *app {
	t.Helper()
	h, err := host.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	for _, name := range []string{"ecall_noop", "ecall_with_ocall", "ecall_long", "ecall_locked", "ecall_touch"} {
		if _, err := iface.AddEcall(name, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iface.AddOcall("ocall_noop", nil); err != nil {
		t.Fatal(err)
	}
	var m sdk.Mutex
	impl := map[string]sdk.TrustedFn{
		"ecall_noop": func(env *sdk.Env, args any) (any, error) { return nil, nil },
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_noop", nil)
		},
		"ecall_long": func(env *sdk.Env, args any) (any, error) {
			d, _ := args.(time.Duration)
			env.Compute(d)
			return nil, nil
		},
		"ecall_locked": func(env *sdk.Env, args any) (any, error) {
			if err := m.Lock(env); err != nil {
				return nil, err
			}
			hold, _ := args.(time.Duration)
			env.Compute(hold)
			return nil, m.Unlock(env)
		},
		"ecall_touch": func(env *sdk.Env, args any) (any, error) {
			n, _ := args.(int)
			if err := env.Context().HeapReset(); err != nil {
				return nil, err
			}
			v, err := env.Alloc(n)
			if err != nil {
				return nil, err
			}
			return nil, env.Touch(v, n, true)
		},
	}
	ctx := h.NewContext("main")
	appEnc, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "traced", NumTCS: 4}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_noop": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &app{
		h:       h,
		ctx:     ctx,
		appEnc:  appEnc,
		proxies: sdk.Proxies(appEnc, h.Proc, otab),
		mutex:   &m,
	}
}

func (a *app) call(t *testing.T, name string, args any) {
	t.Helper()
	if _, err := a.proxies[name](a.ctx, args); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

func TestLoggerRecordsEcalls(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{Workload: "unit"})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		a.call(t, "ecall_noop", nil)
	}
	evs := l.Trace().Ecalls.Rows()
	if len(evs) != 5 {
		t.Fatalf("recorded %d ecalls, want 5", len(evs))
	}
	for _, e := range evs {
		if e.Name != "ecall_noop" {
			t.Fatalf("event name %q", e.Name)
		}
		if e.Kind != events.KindEcall || e.Parent != events.NoEvent || e.End <= e.Start {
			t.Fatalf("bad event %+v", e)
		}
		if e.Thread != a.ctx.ID() {
			t.Fatalf("thread %d, want %d", e.Thread, a.ctx.ID())
		}
	}
	// Enclave metadata with embedded EDL was captured.
	metas := l.Trace().Enclaves.Rows()
	if len(metas) != 1 || metas[0].Name != "traced" || metas[0].EDL == "" {
		t.Fatalf("enclave meta = %+v", metas)
	}
	if _, _, err := edl.Parse(metas[0].EDL); err != nil {
		t.Fatalf("embedded EDL unparsable: %v", err)
	}
}

func TestLoggerRecordsOcallsWithParents(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_with_ocall", nil)

	ecalls := l.Trace().Ecalls.Rows()
	ocalls := l.Trace().Ocalls.Rows()
	if len(ecalls) != 1 || len(ocalls) != 1 {
		t.Fatalf("events = %d ecalls, %d ocalls", len(ecalls), len(ocalls))
	}
	o := ocalls[0]
	if o.Name != "ocall_noop" {
		t.Fatalf("ocall name %q", o.Name)
	}
	if o.Parent != ecalls[0].ID {
		t.Fatalf("ocall parent = %d, want %d", o.Parent, ecalls[0].ID)
	}
	// The ocall happened within the ecall's window.
	if o.Start < ecalls[0].Start || o.End > ecalls[0].End {
		t.Fatal("ocall window outside its ecall")
	}
}

func TestLoggerOverheadMatchesTable2(t *testing.T) {
	// Table 2: with logging, a single ecall costs ≈5,572 ns (native 4,205
	// + 1,366 probe) and ecall+ocall ≈10,699 ns.
	a := newApp(t)
	if _, err := logger.Attach(a.h, logger.Options{}); err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_noop", nil)
	start := a.ctx.Now()
	const n = 100
	for i := 0; i < n; i++ {
		a.call(t, "ecall_noop", nil)
	}
	per := a.ctx.Clock().DurationSince(start) / n
	if per < 5450*time.Nanosecond || per > 5750*time.Nanosecond {
		t.Fatalf("logged ecall = %v, want ≈5572ns", per)
	}

	a.call(t, "ecall_with_ocall", nil)
	start = a.ctx.Now()
	for i := 0; i < n; i++ {
		a.call(t, "ecall_with_ocall", nil)
	}
	per = a.ctx.Clock().DurationSince(start) / n
	if per < 10500*time.Nanosecond || per > 10950*time.Nanosecond {
		t.Fatalf("logged ecall+ocall = %v, want ≈10699ns", per)
	}
}

func TestLoggerAEXCounting(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{AEX: logger.AEXCount})
	if err != nil {
		t.Fatal(err)
	}
	// Table 2 experiment (3): a ≈45.4ms ecall crosses the 4ms timer
	// quantum ≈11 times.
	a.call(t, "ecall_long", 45377*time.Microsecond)
	evs := l.Trace().Ecalls.Rows()
	if len(evs) != 1 {
		t.Fatalf("%d ecalls", len(evs))
	}
	if evs[0].AEXCount < 10 || evs[0].AEXCount > 13 {
		t.Fatalf("AEX count = %d, want ≈11", evs[0].AEXCount)
	}
	// Counting mode records no individual AEX events.
	if l.Trace().AEXs.Len() != 0 {
		t.Fatalf("AEX events recorded in counting mode: %d", l.Trace().AEXs.Len())
	}
}

func TestLoggerAEXTracing(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{AEX: logger.AEXTrace})
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_long", 45377*time.Microsecond)
	ecalls := l.Trace().Ecalls.Rows()
	aexs := l.Trace().AEXs.Rows()
	if len(aexs) != ecalls[0].AEXCount {
		t.Fatalf("traced %d AEX events, counted %d", len(aexs), ecalls[0].AEXCount)
	}
	for _, x := range aexs {
		if x.During != ecalls[0].ID {
			t.Fatalf("AEX attributed to %d, want %d", x.During, ecalls[0].ID)
		}
		if x.Time < ecalls[0].Start || x.Time > ecalls[0].End {
			t.Fatal("AEX timestamp outside the ecall window")
		}
	}
}

func TestLoggerSyncEvents(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Two threads contend on the in-enclave mutex: the loser sleeps via
	// ocall, the winner wakes it (§2.3.2).
	for i := 0; i < 2; i++ {
		if err := a.h.Spawn("worker", func(ctx *sgx.Context) {
			for j := 0; j < 20; j++ {
				if _, err := a.proxies["ecall_locked"](ctx, 200*time.Microsecond); err != nil {
					t.Errorf("locked: %v", err)
				}
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.h.Wait()
	syncs := l.Trace().Syncs.Rows()
	if len(syncs) == 0 {
		t.Skip("no contention observed under this scheduling; sync path covered elsewhere")
	}
	var sleeps, wakes int
	for _, s := range syncs {
		switch s.Kind {
		case events.SyncSleep:
			sleeps++
		case events.SyncWake:
			wakes++
			if len(s.Targets) == 0 {
				t.Fatal("wake event without target")
			}
		}
	}
	if sleeps == 0 || wakes == 0 {
		t.Fatalf("sleeps=%d wakes=%d, want both nonzero", sleeps, wakes)
	}
	// The sync ocalls also appear as regular ocall events.
	syncOcalls := l.Trace().Ocalls.Count(func(e events.CallEvent) bool {
		return sdk.IsSyncOcall(e.Name)
	})
	if syncOcalls == 0 {
		t.Fatal("sync ocalls not traced as ocall events")
	}
	// Thread creation was observed through the shadowed pthread_create.
	if l.Trace().Threads.Len() != 2 {
		t.Fatalf("thread events = %d, want 2", l.Trace().Threads.Len())
	}
}

func TestLoggerPagingEvents(t *testing.T) {
	// Enclave (64 pages with the fixture's defaults) + EPC of 72 slots:
	// touching all heap pages after creating a second enclave forces
	// paging, which the logger sees through kprobes.
	a := newApp(t, host.WithEPCCapacity(160))
	l, err := logger.Attach(a.h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the EPC with a second enclave.
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	if _, err := a.h.URTS.CreateEnclave(a.ctx, sgx.Config{HeapBytes: 64 * 4096}, iface,
		map[string]sdk.TrustedFn{"e": func(env *sdk.Env, args any) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	// Touch the traced enclave's whole heap: evicted pages fault back in.
	a.call(t, "ecall_touch", 64*4096)
	pag := l.Trace().Paging.Rows()
	if len(pag) == 0 {
		t.Fatal("no paging events recorded")
	}
	ins := 0
	for _, p := range pag {
		if p.Kind == events.PageIn {
			ins++
		}
		if p.Vaddr == 0 || p.Time == 0 {
			t.Fatalf("bad paging event %+v", p)
		}
	}
	if ins == 0 {
		t.Fatal("no page-in events")
	}
}

func TestLoggerDetachStopsRecording(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{AEX: logger.AEXCount})
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_noop", nil)
	l.Detach()
	a.call(t, "ecall_noop", nil)
	if l.Trace().Ecalls.Len() != 1 {
		t.Fatalf("events after detach: %d, want 1", l.Trace().Ecalls.Len())
	}
	// Detached logger adds no probe cost.
	a.call(t, "ecall_noop", nil)
	start := a.ctx.Now()
	const n = 50
	for i := 0; i < n; i++ {
		a.call(t, "ecall_noop", nil)
	}
	per := a.ctx.Clock().DurationSince(start) / n
	if per > 4400*time.Nanosecond {
		t.Fatalf("detached per-call cost %v, want native ≈4205ns", per)
	}
}

func TestLoggerTraceSaveLoad(t *testing.T) {
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{Workload: "roundtrip"})
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, "ecall_with_ocall", nil)

	var buf bytes.Buffer
	if err := l.Trace().Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := events.NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Ecalls.Len() != 1 || loaded.Ocalls.Len() != 1 {
		t.Fatalf("loaded %d/%d events", loaded.Ecalls.Len(), loaded.Ocalls.Len())
	}
	if loaded.Meta.At(0).Workload != "roundtrip" {
		t.Fatalf("meta = %+v", loaded.Meta.At(0))
	}
	if loaded.Meta.At(0).TransitionCycles == 0 {
		t.Fatal("transition cycles not recorded")
	}
	// New IDs continue past loaded ones.
	id := loaded.NextID()
	for _, e := range loaded.Ecalls.Rows() {
		if id <= e.ID {
			t.Fatalf("NextID %d collides with loaded %d", id, e.ID)
		}
	}
}

func TestLoggerNestedCallStacks(t *testing.T) {
	// ecall -> ocall -> nested ecall: parents must chain correctly.
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("outer", true); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddEcall("inner", false); err != nil {
		t.Fatal(err)
	}
	if _, err := iface.AddOcall("gate", []string{"inner"}); err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	impl := map[string]sdk.TrustedFn{
		"outer": func(env *sdk.Env, args any) (any, error) { return env.Ocall("gate", nil) },
		"inner": func(env *sdk.Env, args any) (any, error) { return nil, nil },
	}
	appEnc, err := h.URTS.CreateEnclave(ctx, sgx.Config{}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	var proxies map[string]sdk.Proxy
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"gate": func(ctx *sgx.Context, args any) (any, error) {
			return proxies["inner"](ctx, nil)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	proxies = sdk.Proxies(appEnc, h.Proc, otab)
	if _, err := proxies["outer"](ctx, nil); err != nil {
		t.Fatal(err)
	}

	ecalls := l.Trace().Ecalls.Rows()
	ocalls := l.Trace().Ocalls.Rows()
	if len(ecalls) != 2 || len(ocalls) != 1 {
		t.Fatalf("events: %d ecalls, %d ocalls", len(ecalls), len(ocalls))
	}
	var outer, inner events.CallEvent
	for _, e := range ecalls {
		switch e.Name {
		case "outer":
			outer = e
		case "inner":
			inner = e
		}
	}
	gate := ocalls[0]
	if gate.Parent != outer.ID {
		t.Fatalf("gate parent = %d, want outer %d", gate.Parent, outer.ID)
	}
	if inner.Parent != gate.ID {
		t.Fatalf("inner parent = %d, want gate %d", inner.Parent, gate.ID)
	}
}

func TestLoggerStubTableBuiltOncePerTable(t *testing.T) {
	// §4.1.2: stub creation happens once per ocall table. Observable
	// effect: repeated ecalls do not change behaviour and events keep
	// flowing; we also check via timing that no per-call table rebuild
	// cost appears (the probe cost stays flat).
	a := newApp(t)
	l, err := logger.Attach(a.h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		a.call(t, "ecall_with_ocall", nil)
	}
	if l.Trace().Ocalls.Len() != 200 {
		t.Fatalf("ocall events = %d", l.Trace().Ocalls.Len())
	}
}

func TestLoggerAttributesEventsPerEnclave(t *testing.T) {
	// Two enclaves in one process: every event must carry the right
	// enclave ID and metadata for both must be captured — the situation
	// SecureKeeper's enclave-per-client design creates (§5.2.4).
	h, err := host.New()
	if err != nil {
		t.Fatal(err)
	}
	l, err := logger.Attach(h, logger.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ctx := h.NewContext("main")
	build := func(name string) sdk.Proxy {
		iface := edl.NewInterface()
		if _, err := iface.AddEcall("ecall_touch_"+name, true); err != nil {
			t.Fatal(err)
		}
		if _, err := iface.AddOcall("ocall_from_"+name, nil); err != nil {
			t.Fatal(err)
		}
		app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: name}, iface,
			map[string]sdk.TrustedFn{"ecall_touch_" + name: func(env *sdk.Env, args any) (any, error) {
				return env.Ocall("ocall_from_"+name, nil)
			}})
		if err != nil {
			t.Fatal(err)
		}
		otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
			"ocall_from_" + name: func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		return sdk.Proxies(app, h.Proc, otab)["ecall_touch_"+name]
	}
	callA := build("alpha")
	callB := build("beta")
	for i := 0; i < 3; i++ {
		if _, err := callA(ctx, nil); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := callB(ctx, nil); err != nil {
		t.Fatal(err)
	}

	byEnclave := map[sgx.EnclaveID]int{}
	for _, e := range l.Trace().Ecalls.Rows() {
		byEnclave[e.Enclave]++
	}
	if len(byEnclave) != 2 {
		t.Fatalf("events attributed to %d enclaves, want 2", len(byEnclave))
	}
	if l.Trace().Enclaves.Len() != 2 {
		t.Fatalf("enclave metadata rows = %d, want 2", l.Trace().Enclaves.Len())
	}
	// Ocall attribution follows the enclave the call left from.
	for _, o := range l.Trace().Ocalls.Rows() {
		wantSuffix := "alpha"
		meta := ""
		for _, m := range l.Trace().Enclaves.Rows() {
			if m.Enclave == o.Enclave {
				meta = m.Name
			}
		}
		if o.Name == "ocall_from_beta" {
			wantSuffix = "beta"
		}
		if meta != wantSuffix {
			t.Fatalf("ocall %s attributed to enclave %q", o.Name, meta)
		}
	}
}
