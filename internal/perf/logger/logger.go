// Package logger implements the sgx-perf event logger (§4): a shared
// library preloaded into the application that shadows sgx_ecall to trace
// ecalls (Fig. 2), rewrites ocall tables with generated call stubs to
// trace ocalls (Fig. 3), overloads the SDK's four synchronisation ocalls
// into sleep/wake events (§4.1.3), patches the AEP to count or trace
// asynchronous exits (§4.1.4), and registers kprobes on the SGX driver's
// paging functions (§4.1.5). All events are serialised to an embedded
// event database.
//
// The logger needs no changes to the application, the enclave, or the
// SDK — only preloading, exactly as in the paper.
package logger

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Probe costs, matching Table 2: the logger adds ≈1,366 ns per ecall,
// ≈1,320 ns per ocall, ≈1,076 ns per counted AEX and ≈1,118 ns per traced
// AEX.
const (
	CostEcallProbe = 1366 * time.Nanosecond
	CostOcallProbe = 1320 * time.Nanosecond
	CostAEXCount   = 1076 * time.Nanosecond
	CostAEXTrace   = 1118 * time.Nanosecond
)

// AEXMode selects how the logger observes asynchronous exits (§4.1.4).
type AEXMode int

const (
	// AEXOff leaves the AEP untouched.
	AEXOff AEXMode = iota + 1
	// AEXCount patches the AEP to count AEXs per ecall.
	AEXCount
	// AEXTrace additionally records the time of every AEX.
	AEXTrace
)

// Options configures the logger.
type Options struct {
	// Workload labels the trace.
	Workload string
	// AEX selects AEX observation (default AEXOff).
	AEX AEXMode
	// TracePaging registers kprobes on the driver's paging functions
	// (default true — set SkipPaging to disable).
	SkipPaging bool
}

type stackEntry struct {
	kind events.CallKind
	id   events.EventID
	aex  int
}

// Logger is an attached sgx-perf event logger.
type Logger struct {
	h     *host.Host
	trace *events.Trace
	opts  Options
	lib   *loader.Library
	next  sdk.EcallFn

	enabled atomic.Bool

	mu           sync.Mutex
	stacks       map[sgx.ThreadID][]*stackEntry
	stubCache    map[*sdk.OcallTable]*sdk.OcallTable
	seenEnclaves map[sgx.EnclaveID]bool
	signalHits   map[kernel.Signal]int

	detachKprobes []func()
	prevAEP       sgx.AEPFunc
	aepPatched    bool
}

// Attach preloads the logger into the host process and starts recording.
func Attach(h *host.Host, opts Options) (*Logger, error) {
	if opts.AEX == 0 {
		opts.AEX = AEXOff
	}
	trace, err := events.NewTrace()
	if err != nil {
		return nil, err
	}
	cost := h.Machine.Cost()
	trace.Meta.Insert(events.TraceMeta{
		Workload:         opts.Workload,
		FrequencyHz:      float64(cost.Frequency),
		Mitigation:       mitigationName(cost),
		TransitionCycles: int64(cost.RoundTrip()),
	})

	l := &Logger{
		h:            h,
		trace:        trace,
		opts:         opts,
		stacks:       make(map[sgx.ThreadID][]*stackEntry),
		stubCache:    make(map[*sdk.OcallTable]*sdk.OcallTable),
		seenEnclaves: make(map[sgx.EnclaveID]bool),
		signalHits:   make(map[kernel.Signal]int),
	}

	// Build liblogger and preload it (LD_PRELOAD, §4). Its sgx_ecall,
	// pthread_create and sigaction shadow the URTS and libc.
	l.lib = loader.NewLibrary("liblogger")
	l.lib.Define(loader.SymSGXEcall, sdk.EcallFn(l.sgxEcall))
	if createNext, err := loader.Lookup[host.PthreadCreateFn](h.Proc, loader.SymPthreadCreate); err == nil {
		l.lib.Define(loader.SymPthreadCreate, host.PthreadCreateFn(func(name string, fn func(ctx *sgx.Context)) {
			createNext(name, func(ctx *sgx.Context) {
				l.trace.Threads.Insert(events.ThreadEvent{Thread: ctx.ID(), Name: name, Time: ctx.Now()})
				fn(ctx)
			})
		}))
	}
	if saNext, err := loader.Lookup[host.SigactionFn](h.Proc, loader.SymSigaction); err == nil {
		shadow := host.SigactionFn(func(sig kernel.Signal, handler kernel.SigHandler) kernel.SigHandler {
			// Register a wrapper so the logger processes the signal first
			// and then calls the saved handler (§4).
			wrapped := handler
			if handler != nil {
				wrapped = func(ctx *sgx.Context, s kernel.Signal, info *kernel.SigInfo) bool {
					l.mu.Lock()
					l.signalHits[s]++
					l.mu.Unlock()
					return handler(ctx, s, info)
				}
			}
			return saNext(sig, wrapped)
		})
		l.lib.Define(loader.SymSigaction, shadow)
		l.lib.Define(loader.SymSignal, shadow)
	}
	h.Proc.Preload(l.lib)

	// Resolve the real sgx_ecall with RTLD_NEXT semantics.
	next, err := loader.LookupNext[sdk.EcallFn](h.Proc, l.lib, loader.SymSGXEcall)
	if err != nil {
		return nil, fmt.Errorf("logger: resolve real sgx_ecall: %w", err)
	}
	l.next = next

	if !opts.SkipPaging {
		for _, sym := range []string{kernel.SymbolELDU, kernel.SymbolEWB} {
			sym := sym
			detach := h.Kernel.Kprobes.Register(sym, func(ev kernel.KprobeEvent) {
				l.onPaging(sym, ev)
			})
			l.detachKprobes = append(l.detachKprobes, detach)
		}
	}
	if opts.AEX != AEXOff {
		l.prevAEP = h.Machine.PatchAEP(l.aep)
		l.aepPatched = true
	}

	l.enabled.Store(true)
	return l, nil
}

func mitigationName(c sgx.CostModel) string {
	rt := c.Frequency.Duration(c.RoundTrip())
	for _, m := range []sgx.MitigationLevel{sgx.MitigationNone, sgx.MitigationSpectre, sgx.MitigationFull} {
		d := m.RoundTripDuration()
		if rt > d-50*time.Nanosecond && rt < d+50*time.Nanosecond {
			return m.String()
		}
	}
	return "custom"
}

// Trace returns the recorded trace.
func (l *Logger) Trace() *events.Trace { return l.trace }

// SignalHits reports how many signals of each number the logger has
// observed through its shadowed handlers.
func (l *Logger) SignalHits() map[kernel.Signal]int {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make(map[kernel.Signal]int, len(l.signalHits))
	for k, v := range l.signalHits {
		out[k] = v
	}
	return out
}

// Detach stops recording: the AEP is restored and kprobes unregistered.
// The preloaded library stays in the process image (as with LD_PRELOAD)
// but becomes a transparent pass-through.
func (l *Logger) Detach() {
	l.enabled.Store(false)
	for _, d := range l.detachKprobes {
		d()
	}
	l.detachKprobes = nil
	if l.aepPatched {
		l.h.Machine.PatchAEP(l.prevAEP)
		l.aepPatched = false
	}
}

// sgxEcall is the logger's shadow of the URTS sgx_ecall (Fig. 2): record
// start time, thread and identifiers, swap in the stub ocall table, call
// the real implementation, record the end time.
func (l *Logger) sgxEcall(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *sdk.OcallTable, args any) (any, error) {
	if !l.enabled.Load() {
		return l.next(ctx, eid, callID, otab, args)
	}
	ctx.Compute(CostEcallProbe / 2)
	l.noteEnclave(eid)
	stub := l.stubTable(otab)

	id := l.trace.NextID()
	entry := &stackEntry{kind: events.KindEcall, id: id}
	parent := l.push(ctx.ID(), entry)

	name := l.ecallName(eid, callID)
	start := ctx.Now()
	res, err := l.next(ctx, eid, callID, stub, args)
	end := ctx.Now()

	l.pop(ctx.ID())
	l.trace.Ecalls.Insert(events.CallEvent{
		ID:       id,
		Kind:     events.KindEcall,
		Enclave:  eid,
		Thread:   ctx.ID(),
		CallID:   callID,
		Name:     name,
		Start:    start,
		End:      end,
		Parent:   parent,
		AEXCount: entry.aex,
		Err:      err != nil,
	})
	ctx.Compute(CostEcallProbe - CostEcallProbe/2)
	return res, err
}

func (l *Logger) ecallName(eid sgx.EnclaveID, callID int) string {
	if app, ok := l.h.URTS.AppEnclaveFor(eid); ok {
		if f, ok := app.Interface().EcallByID(callID); ok {
			return f.Name
		}
	}
	return fmt.Sprintf("ecall_%d", callID)
}

// noteEnclave records enclave metadata on first sight, including its EDL
// interface so the analyser can run its security checks without being
// handed the file separately.
func (l *Logger) noteEnclave(eid sgx.EnclaveID) {
	l.mu.Lock()
	seen := l.seenEnclaves[eid]
	l.seenEnclaves[eid] = true
	l.mu.Unlock()
	if seen {
		return
	}
	meta := events.EnclaveMeta{Enclave: eid}
	if app, ok := l.h.URTS.AppEnclaveFor(eid); ok {
		meta.Name = app.Enclave().Config.Name
		meta.NumPages = app.Enclave().NumPages()
		meta.EDL = app.Interface().Format()
	}
	l.trace.Enclaves.Insert(meta)
}

// stubTable returns (building once per table, §4.1.2) the logger's ocall
// table oT_logger: one generated call stub per original entry, each
// logging events and then calling the original function pointer (Fig. 3).
func (l *Logger) stubTable(orig *sdk.OcallTable) *sdk.OcallTable {
	if orig == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if stub, ok := l.stubCache[orig]; ok {
		return stub
	}
	stub := &sdk.OcallTable{
		Funcs: make([]sdk.OcallFn, len(orig.Funcs)),
		Names: make([]string, len(orig.Names)),
	}
	copy(stub.Names, orig.Names)
	for i := range orig.Funcs {
		ocallID := i
		fn := orig.Funcs[i]
		name := ""
		if i < len(orig.Names) {
			name = orig.Names[i]
		}
		if fn == nil {
			continue
		}
		stub.Funcs[i] = l.makeStub(ocallID, name, fn)
	}
	l.stubCache[orig] = stub
	return stub
}

// makeStub generates one call stub, given the ocall's identifier, name and
// original function pointer.
func (l *Logger) makeStub(ocallID int, name string, orig sdk.OcallFn) sdk.OcallFn {
	return func(ctx *sgx.Context, args any) (any, error) {
		if !l.enabled.Load() {
			return orig(ctx, args)
		}
		ctx.Compute(CostOcallProbe / 2)
		id := l.trace.NextID()
		entry := &stackEntry{kind: events.KindOcall, id: id}
		parent := l.push(ctx.ID(), entry)

		var enclave sgx.EnclaveID
		if enc := ctx.CurrentEnclave(); enc != nil {
			enclave = enc.ID
		}
		start := ctx.Now()
		if sdk.IsSyncOcall(name) {
			l.recordSync(ctx, name, args, id, start)
		}
		res, err := orig(ctx, args)
		end := ctx.Now()

		l.pop(ctx.ID())
		l.trace.Ocalls.Insert(events.CallEvent{
			ID:      id,
			Kind:    events.KindOcall,
			Enclave: enclave,
			Thread:  ctx.ID(),
			CallID:  ocallID,
			Name:    name,
			Start:   start,
			End:     end,
			Parent:  parent,
			Err:     err != nil,
		})
		ctx.Compute(CostOcallProbe - CostOcallProbe/2)
		return res, err
	}
}

// recordSync reduces the four SDK sync ocalls to sleep and wake events
// (§4.1.3), tracking which thread wakes which.
func (l *Logger) recordSync(ctx *sgx.Context, name string, args any, call events.EventID, now vtime.Cycles) {
	switch name {
	case sdk.OcallThreadWait:
		l.trace.Syncs.Insert(events.SyncEvent{
			ID: l.trace.NextID(), Kind: events.SyncSleep,
			Thread: ctx.ID(), Time: now, Call: call,
		})
	case sdk.OcallThreadSet:
		if a, ok := args.(sdk.SetEventArgs); ok {
			l.trace.Syncs.Insert(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: []sgx.ThreadID{a.Target}, Time: now, Call: call,
			})
		}
	case sdk.OcallThreadSetMultiple:
		if a, ok := args.(sdk.SetMultipleEventArgs); ok {
			targets := make([]sgx.ThreadID, len(a.Targets))
			copy(targets, a.Targets)
			l.trace.Syncs.Insert(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: targets, Time: now, Call: call,
			})
		}
	case sdk.OcallThreadSetWait:
		if a, ok := args.(sdk.SetWaitEventArgs); ok {
			l.trace.Syncs.Insert(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: []sgx.ThreadID{a.Target}, Time: now, Call: call,
			})
			l.trace.Syncs.Insert(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncSleep,
				Thread: ctx.ID(), Time: now, Call: call,
			})
		}
	}
}

// aep is the logger's patched Asynchronous Exit Pointer handler (§4.1.4):
// count (and optionally timestamp) the AEX, then chain to the previous
// handler, which resumes the enclave.
func (l *Logger) aep(ctx *sgx.Context, info sgx.AEXInfo) {
	if l.enabled.Load() {
		if l.opts.AEX == AEXTrace {
			ctx.Compute(CostAEXTrace)
		} else {
			ctx.Compute(CostAEXCount)
		}
		during := events.NoEvent
		l.mu.Lock()
		if s := l.stacks[ctx.ID()]; len(s) > 0 {
			top := s[len(s)-1]
			top.aex++
			during = top.id
		}
		l.mu.Unlock()
		if l.opts.AEX == AEXTrace {
			l.trace.AEXs.Insert(events.AEXEvent{
				ID:      l.trace.NextID(),
				Enclave: info.Enclave,
				Thread:  info.Thread,
				Time:    info.Time,
				During:  during,
			})
		}
	}
	l.prevAEP(ctx, info)
}

// onPaging converts a driver kprobe hit into a paging event (§4.1.5).
func (l *Logger) onPaging(sym string, ev kernel.KprobeEvent) {
	if !l.enabled.Load() {
		return
	}
	kind := events.PageIn
	if sym == kernel.SymbolEWB {
		kind = events.PageOut
	}
	l.trace.Paging.Insert(events.PagingEvent{
		ID:       l.trace.NextID(),
		Kind:     kind,
		Enclave:  ev.Enclave,
		Thread:   ev.Thread,
		Vaddr:    uint64(ev.Vaddr),
		PageKind: ev.Kind.String(),
		Time:     ev.Time,
	})
}

// push adds a stack entry for the thread and returns the direct parent's
// event ID (an in-flight call of the opposite kind), or NoEvent.
func (l *Logger) push(tid sgx.ThreadID, e *stackEntry) events.EventID {
	l.mu.Lock()
	defer l.mu.Unlock()
	parent := events.NoEvent
	if s := l.stacks[tid]; len(s) > 0 {
		top := s[len(s)-1]
		if top.kind != e.kind {
			parent = top.id
		}
	}
	l.stacks[tid] = append(l.stacks[tid], e)
	return parent
}

func (l *Logger) pop(tid sgx.ThreadID) {
	l.mu.Lock()
	defer l.mu.Unlock()
	s := l.stacks[tid]
	if len(s) > 0 {
		l.stacks[tid] = s[:len(s)-1]
	}
}
