// Package logger implements the sgx-perf event logger (§4): a shared
// library preloaded into the application that shadows sgx_ecall to trace
// ecalls (Fig. 2), rewrites ocall tables with generated call stubs to
// trace ocalls (Fig. 3), overloads the SDK's four synchronisation ocalls
// into sleep/wake events (§4.1.3), patches the AEP to count or trace
// asynchronous exits (§4.1.4), and registers kprobes on the SGX driver's
// paging functions (§4.1.5). All events are serialised to an embedded
// event database.
//
// Recording is sharded per thread, mirroring the paper's per-thread
// in-memory buffers (§4.1): each simulated thread owns a recorder shard
// holding its call stack and event buffers, reached without any global
// lock on the hot path. Buffers are flushed to the event database in
// batches — either when full or lazily when a reader touches a table — so
// probe costs stay flat as threads are added.
//
// The logger needs no changes to the application, the enclave, or the
// SDK — only preloading, exactly as in the paper.
package logger

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/loader"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Probe costs, matching Table 2: the logger adds ≈1,366 ns per ecall,
// ≈1,320 ns per ocall, ≈1,076 ns per counted AEX and ≈1,118 ns per traced
// AEX.
const (
	CostEcallProbe = 1366 * time.Nanosecond
	CostOcallProbe = 1320 * time.Nanosecond
	CostAEXCount   = 1076 * time.Nanosecond
	CostAEXTrace   = 1118 * time.Nanosecond
)

// defaultFlushEvery is the per-shard buffer capacity before a batch flush
// to the event database.
const defaultFlushEvery = 256

// AEXMode selects how the logger observes asynchronous exits (§4.1.4).
type AEXMode int

const (
	// AEXOff leaves the AEP untouched.
	AEXOff AEXMode = iota + 1
	// AEXCount patches the AEP to count AEXs per ecall.
	AEXCount
	// AEXTrace additionally records the time of every AEX.
	AEXTrace
)

// Options configures the logger.
type Options struct {
	// Workload labels the trace.
	Workload string
	// AEX selects AEX observation (default AEXOff).
	AEX AEXMode
	// TracePaging registers kprobes on the driver's paging functions
	// (default true — set SkipPaging to disable).
	SkipPaging bool
	// FlushEvery sets the per-thread buffer size before events are
	// flushed to the database in a batch (default 256). 1 flushes every
	// event immediately, reproducing the unbatched row-at-a-time path —
	// useful for golden-trace comparisons.
	FlushEvery int
}

type stackEntry struct {
	kind events.CallKind
	id   events.EventID
	aex  int
}

// stubPair is one (original table, stub table) association for the
// one-entry stub cache.
type stubPair struct {
	orig *sdk.OcallTable
	stub *sdk.OcallTable
}

// shard is one thread's recorder: its call stack plus event buffers. The
// mutex is effectively uncontended — the owning thread is the only
// hot-path user; other goroutines only take it to flush buffered events
// to the database. The stack holds entries by value so pushing a call
// allocates nothing in steady state.
type shard struct {
	mu         sync.Mutex
	stack      []stackEntry
	ecalls     []events.CallEvent
	ocalls     []events.CallEvent
	syncs      []events.SyncEvent
	aexs       []events.AEXEvent
	paging     []events.PagingEvent
	switchless []events.SwitchlessEvent
}

// Logger is an attached sgx-perf event logger.
type Logger struct {
	h     *host.Host
	trace *events.Trace
	opts  Options
	lib   *loader.Library
	next  sdk.EcallFn

	enabled atomic.Bool

	// Probe costs pre-converted to cycles at attach time (the machine
	// frequency is fixed), sparing a float conversion on every event.
	ecallPreCycles  vtime.Cycles
	ecallPostCycles vtime.Cycles
	ocallPreCycles  vtime.Cycles
	ocallPostCycles vtime.Cycles
	aexCycles       vtime.Cycles

	// Per-thread recorder shards: a copy-on-write slice indexed by
	// ThreadID (the machine hands out small sequential IDs). Lookups on
	// the hot path are a single atomic load; growth takes shardMu.
	shards  atomic.Pointer[[]*shard]
	shardMu sync.Mutex
	// pending counts non-empty (unflushed) shard buffers; the table read
	// hooks use it to skip flushing when there is nothing to flush. It is
	// bumped only when a buffer goes empty→non-empty, so the steady-state
	// hot path pays one atomic add per batch, not per event.
	pending atomic.Int64

	// stubCache maps original ocall tables to their generated stub
	// tables (§4.1.2). Lookups are lock-free; builds serialise on stubMu
	// so one table is never generated twice. lastStub is a one-entry
	// cache in front: applications pass the same table on every ecall, so
	// the common lookup is one atomic load and a pointer compare.
	stubCache  sync.Map // *sdk.OcallTable -> *sdk.OcallTable
	lastStub   atomic.Pointer[stubPair]
	stubMu     sync.Mutex
	stubBuilds atomic.Int64

	// encNames is a copy-on-write registry indexed by EnclaveID (the
	// machine hands out small sequential IDs): a non-nil entry means the
	// enclave's metadata has been recorded, and holds its ecall names by
	// ID. One atomic load replaces a shared-map lookup per ecall.
	encNames atomic.Pointer[[][]string]
	encMu    sync.Mutex

	signalMu   sync.Mutex
	signalHits map[kernel.Signal]int

	detachKprobes []func()
	prevAEP       sgx.AEPFunc
	aepPatched    bool
}

// Attach preloads the logger into the host process and starts recording.
func Attach(h *host.Host, opts Options) (*Logger, error) {
	if opts.AEX == 0 {
		opts.AEX = AEXOff
	}
	if opts.FlushEvery <= 0 {
		opts.FlushEvery = defaultFlushEvery
	}
	trace, err := events.NewTrace()
	if err != nil {
		return nil, err
	}
	cost := h.Machine.Cost()
	trace.Meta.Insert(events.TraceMeta{
		Workload:         opts.Workload,
		FrequencyHz:      float64(cost.Frequency),
		Mitigation:       mitigationName(cost),
		TransitionCycles: int64(cost.RoundTrip()),
	})

	l := &Logger{
		h:          h,
		trace:      trace,
		opts:       opts,
		signalHits: make(map[kernel.Signal]int),

		ecallPreCycles:  cost.Frequency.Cycles(CostEcallProbe / 2),
		ecallPostCycles: cost.Frequency.Cycles(CostEcallProbe - CostEcallProbe/2),
		ocallPreCycles:  cost.Frequency.Cycles(CostOcallProbe / 2),
		ocallPostCycles: cost.Frequency.Cycles(CostOcallProbe - CostOcallProbe/2),
		aexCycles:       cost.Frequency.Cycles(CostAEXCount),
	}
	if opts.AEX == AEXTrace {
		l.aexCycles = cost.Frequency.Cycles(CostAEXTrace)
	}
	// Readers of the event tables trigger a flush of all shard buffers,
	// so a trace handle taken at attach time always observes every event
	// recorded before the read.
	trace.SetReadFlush(l.flushAll)

	// Build liblogger and preload it (LD_PRELOAD, §4). Its sgx_ecall,
	// pthread_create and sigaction shadow the URTS and libc.
	l.lib = loader.NewLibrary("liblogger")
	l.lib.Define(loader.SymSGXEcall, sdk.EcallFn(l.sgxEcall))
	if createNext, err := loader.Lookup[host.PthreadCreateFn](h.Proc, loader.SymPthreadCreate); err == nil {
		l.lib.Define(loader.SymPthreadCreate, host.PthreadCreateFn(func(name string, fn func(ctx *sgx.Context)) {
			createNext(name, func(ctx *sgx.Context) {
				l.trace.Threads.Insert(events.ThreadEvent{Thread: ctx.ID(), Name: name, Time: ctx.Now()})
				fn(ctx)
			})
		}))
	}
	if saNext, err := loader.Lookup[host.SigactionFn](h.Proc, loader.SymSigaction); err == nil {
		shadow := host.SigactionFn(func(sig kernel.Signal, handler kernel.SigHandler) kernel.SigHandler {
			// Register a wrapper so the logger processes the signal first
			// and then calls the saved handler (§4).
			wrapped := handler
			if handler != nil {
				wrapped = func(ctx *sgx.Context, s kernel.Signal, info *kernel.SigInfo) bool {
					l.signalMu.Lock()
					l.signalHits[s]++
					l.signalMu.Unlock()
					return handler(ctx, s, info)
				}
			}
			return saNext(sig, wrapped)
		})
		l.lib.Define(loader.SymSigaction, shadow)
		l.lib.Define(loader.SymSignal, shadow)
	}
	h.Proc.Preload(l.lib)

	// Resolve the real sgx_ecall with RTLD_NEXT semantics.
	next, err := loader.LookupNext[sdk.EcallFn](h.Proc, l.lib, loader.SymSGXEcall)
	if err != nil {
		return nil, fmt.Errorf("logger: resolve real sgx_ecall: %w", err)
	}
	l.next = next

	if !opts.SkipPaging {
		for _, sym := range []string{kernel.SymbolELDU, kernel.SymbolEWB} {
			sym := sym
			detach := h.Kernel.Kprobes.Register(sym, func(ev kernel.KprobeEvent) {
				l.onPaging(sym, ev)
			})
			l.detachKprobes = append(l.detachKprobes, detach)
		}
	}
	if opts.AEX != AEXOff {
		l.prevAEP = h.Machine.PatchAEP(l.aep)
		l.aepPatched = true
	}
	// Switchless calls bypass both sgx_ecall and the ocall table, so
	// interposition alone never sees them (§6). The URTS exposes a
	// cooperative observer hook; registering here closes that blind spot
	// with synthetic switchless events.
	h.URTS.SetSwitchlessObserver(l.onSwitchless)

	l.enabled.Store(true)
	return l, nil
}

func mitigationName(c sgx.CostModel) string {
	rt := c.Frequency.Duration(c.RoundTrip())
	for _, m := range []sgx.MitigationLevel{sgx.MitigationNone, sgx.MitigationSpectre, sgx.MitigationFull} {
		d := m.RoundTripDuration()
		if rt > d-50*time.Nanosecond && rt < d+50*time.Nanosecond {
			return m.String()
		}
	}
	return "custom"
}

// shard returns the calling thread's recorder shard, creating it on first
// sight. The fast path is one atomic load and two bounds checks.
//
//sgxperf:hotpath
func (l *Logger) shard(tid sgx.ThreadID) *shard {
	if s := l.shards.Load(); s != nil && int(tid) >= 0 && int(tid) < len(*s) {
		if sh := (*s)[tid]; sh != nil {
			return sh
		}
	}
	return l.growShard(tid)
}

// growShard creates the shard for tid behind the registry lock, copying
// the shard slice so concurrent readers never observe a partial update.
func (l *Logger) growShard(tid sgx.ThreadID) *shard {
	l.shardMu.Lock()
	defer l.shardMu.Unlock()
	idx := int(tid)
	if idx < 0 {
		idx = 0 // defensive: the machine hands out IDs ≥ 1
	}
	var cur []*shard
	if p := l.shards.Load(); p != nil {
		cur = *p
	}
	if idx < len(cur) && cur[idx] != nil {
		return cur[idx]
	}
	grown := make([]*shard, max(idx+1, len(cur)))
	copy(grown, cur)
	sh := &shard{}
	grown[idx] = sh
	l.shards.Store(&grown)
	return sh
}

// flushAll drains every shard's buffers into the event database. Shards
// are merged in ascending ThreadID order so the flush order is stable
// across runs (given deterministic per-thread content).
func (l *Logger) flushAll() {
	if l.pending.Load() == 0 {
		return
	}
	p := l.shards.Load()
	if p == nil {
		return
	}
	for _, sh := range *p {
		if sh != nil {
			l.flushShard(sh)
		}
	}
}

// flushShard drains one shard's buffers into the database in batches.
func (l *Logger) flushShard(sh *shard) {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	l.flushShardLocked(sh)
}

func (l *Logger) flushShardLocked(sh *shard) {
	dirty := 0
	if len(sh.ecalls) > 0 {
		l.trace.Ecalls.BatchInsert(sh.ecalls)
		sh.ecalls = sh.ecalls[:0]
		dirty++
	}
	if len(sh.ocalls) > 0 {
		l.trace.Ocalls.BatchInsert(sh.ocalls)
		sh.ocalls = sh.ocalls[:0]
		dirty++
	}
	if len(sh.syncs) > 0 {
		l.trace.Syncs.BatchInsert(sh.syncs)
		sh.syncs = sh.syncs[:0]
		dirty++
	}
	if len(sh.aexs) > 0 {
		l.trace.AEXs.BatchInsert(sh.aexs)
		sh.aexs = sh.aexs[:0]
		dirty++
	}
	if len(sh.paging) > 0 {
		l.trace.Paging.BatchInsert(sh.paging)
		sh.paging = sh.paging[:0]
		dirty++
	}
	if len(sh.switchless) > 0 {
		l.trace.Switchless.BatchInsert(sh.switchless)
		sh.switchless = sh.switchless[:0]
		dirty++
	}
	if dirty > 0 {
		l.pending.Add(int64(-dirty))
	}
}

// Flush drains every thread's buffered events into the event database.
// Readers normally need not call it — table reads flush lazily — but a
// live consumer can use it to bound staleness explicitly.
func (l *Logger) Flush() { l.flushAll() }

// Detached reports whether recording has been stopped by Detach.
func (l *Logger) Detached() bool { return !l.enabled.Load() }

// Trace returns the recorded trace, flushing all buffered events first.
// Reads through the returned trace stay coherent even while recording
// continues: table reads flush the shard buffers lazily.
func (l *Logger) Trace() *events.Trace {
	l.flushAll()
	return l.trace
}

// SignalHits reports how many signals of each number the logger has
// observed through its shadowed handlers.
func (l *Logger) SignalHits() map[kernel.Signal]int {
	l.signalMu.Lock()
	defer l.signalMu.Unlock()
	out := make(map[kernel.Signal]int, len(l.signalHits))
	for k, v := range l.signalHits {
		out[k] = v
	}
	return out
}

// StubBuilds reports how many ocall stub tables the logger has generated.
// Each distinct ocall table must be built exactly once (§4.1.2), however
// many threads race on the first ecall.
func (l *Logger) StubBuilds() int64 { return l.stubBuilds.Load() }

// Detach stops recording: buffered events are flushed, the AEP is
// restored and kprobes unregistered. The preloaded library stays in the
// process image (as with LD_PRELOAD) but becomes a transparent
// pass-through.
func (l *Logger) Detach() {
	l.enabled.Store(false)
	l.h.URTS.SetSwitchlessObserver(nil)
	for _, d := range l.detachKprobes {
		d()
	}
	l.detachKprobes = nil
	if l.aepPatched {
		l.h.Machine.PatchAEP(l.prevAEP)
		l.aepPatched = false
	}
	l.flushAll()
}

// sgxEcall is the logger's shadow of the URTS sgx_ecall (Fig. 2): record
// start time, thread and identifiers, swap in the stub ocall table, call
// the real implementation, record the end time. All bookkeeping stays in
// the thread's own shard — no global lock is taken.
//
//sgxperf:hotpath
func (l *Logger) sgxEcall(ctx *sgx.Context, eid sgx.EnclaveID, callID int, otab *sdk.OcallTable, args any) (any, error) {
	if !l.enabled.Load() {
		return l.next(ctx, eid, callID, otab, args)
	}
	ctx.ComputeCycles(l.ecallPreCycles)
	names := l.enclaveNames(eid)
	stub := l.stubTable(otab)
	sh := l.shard(ctx.ID())

	id := l.trace.NextID()
	parent := l.push(sh, events.KindEcall, id)

	name := ecallName(names, callID)
	start := ctx.Now()
	res, err := l.next(ctx, eid, callID, stub, args)
	end := ctx.Now()

	l.popRecord(sh, &sh.ecalls, true, events.CallEvent{
		ID:      id,
		Kind:    events.KindEcall,
		Enclave: eid,
		Thread:  ctx.ID(),
		CallID:  callID,
		Name:    name,
		Start:   start,
		End:     end,
		Parent:  parent,
		Err:     err != nil,
	})
	ctx.ComputeCycles(l.ecallPostCycles)
	return res, err
}

// ecallName resolves a call ID against an enclave's name table.
func ecallName(names []string, callID int) string {
	if callID >= 0 && callID < len(names) {
		return names[callID]
	}
	return fmt.Sprintf("ecall_%d", callID)
}

// popRecord pops the thread's stack entry and buffers the completed call
// event under one shard lock acquisition, flushing when the buffer reaches
// the configured batch size. withAEX fills in the popped entry's AEX count
// (ecalls only).
//
//sgxperf:hotpath
func (l *Logger) popRecord(sh *shard, buf *[]events.CallEvent, withAEX bool, ev events.CallEvent) {
	sh.mu.Lock()
	if n := len(sh.stack); n > 0 {
		if withAEX {
			ev.AEXCount = sh.stack[n-1].aex
		}
		sh.stack = sh.stack[:n-1]
	}
	*buf = append(*buf, ev)
	if len(*buf) == 1 {
		l.pending.Add(1)
	}
	if len(*buf) >= l.opts.FlushEvery {
		l.flushShardLocked(sh)
	}
	sh.mu.Unlock()
}

// enclaveNames returns the enclave's ecall-name table, recording its
// metadata on first sight — including its EDL interface, so the analyser
// can run its security checks without being handed the file separately.
// The fast path is one atomic load and an index.
//
//sgxperf:hotpath
func (l *Logger) enclaveNames(eid sgx.EnclaveID) []string {
	if p := l.encNames.Load(); p != nil && int(eid) >= 0 && int(eid) < len(*p) {
		if names := (*p)[eid]; names != nil {
			return names
		}
	}
	return l.noteEnclave(eid)
}

// noteEnclave records enclave metadata behind the registry lock and
// publishes the enclave's name table, copying the registry slice so
// concurrent readers never observe a partial update.
func (l *Logger) noteEnclave(eid sgx.EnclaveID) []string {
	l.encMu.Lock()
	defer l.encMu.Unlock()
	idx := int(eid)
	if idx < 0 {
		idx = 0 // defensive: the machine hands out IDs ≥ 1
	}
	var cur [][]string
	if p := l.encNames.Load(); p != nil {
		cur = *p
	}
	if idx < len(cur) && cur[idx] != nil {
		return cur[idx]
	}
	meta := events.EnclaveMeta{Enclave: eid}
	names := []string{} // non-nil marks the enclave seen
	if app, ok := l.h.URTS.AppEnclaveFor(eid); ok {
		meta.Name = app.Enclave().Config.Name
		meta.NumPages = app.Enclave().NumPages()
		meta.EDL = app.Interface().Format()
		ecalls := app.Interface().Ecalls()
		names = make([]string, len(ecalls))
		for i, f := range ecalls {
			names[i] = f.Name
		}
	}
	l.trace.Enclaves.Insert(meta)
	grown := make([][]string, max(idx+1, len(cur)))
	copy(grown, cur)
	grown[idx] = names
	l.encNames.Store(&grown)
	return names
}

// stubTable returns (building once per table, §4.1.2) the logger's ocall
// table oT_logger: one generated call stub per original entry, each
// logging events and then calling the original function pointer (Fig. 3).
// The lookup is lock-free; builds serialise on stubMu with a re-check, so
// concurrent first ecalls never generate the same stub table twice.
//
//sgxperf:hotpath
func (l *Logger) stubTable(orig *sdk.OcallTable) *sdk.OcallTable {
	if orig == nil {
		return nil
	}
	if p := l.lastStub.Load(); p != nil && p.orig == orig {
		return p.stub
	}
	if stub, ok := l.stubCache.Load(orig); ok {
		s := stub.(*sdk.OcallTable)
		l.lastStub.Store(&stubPair{orig: orig, stub: s})
		return s
	}
	return l.buildStubTable(orig)
}

// buildStubTable generates the stub table behind stubMu, re-checking the
// cache so concurrent first ecalls build it only once.
func (l *Logger) buildStubTable(orig *sdk.OcallTable) *sdk.OcallTable {
	l.stubMu.Lock()
	defer l.stubMu.Unlock()
	if stub, ok := l.stubCache.Load(orig); ok {
		return stub.(*sdk.OcallTable)
	}
	l.stubBuilds.Add(1)
	stub := &sdk.OcallTable{
		Funcs: make([]sdk.OcallFn, len(orig.Funcs)),
		Names: make([]string, len(orig.Names)),
	}
	copy(stub.Names, orig.Names)
	for i := range orig.Funcs {
		ocallID := i
		fn := orig.Funcs[i]
		name := ""
		if i < len(orig.Names) {
			name = orig.Names[i]
		}
		if fn == nil {
			continue
		}
		stub.Funcs[i] = l.makeStub(ocallID, name, fn)
	}
	l.stubCache.Store(orig, stub)
	l.lastStub.Store(&stubPair{orig: orig, stub: stub})
	return stub
}

// makeStub generates one call stub, given the ocall's identifier, name and
// original function pointer. The returned closure is the per-ocall hot
// path, so the directive covers its body too.
//
//sgxperf:hotpath
func (l *Logger) makeStub(ocallID int, name string, orig sdk.OcallFn) sdk.OcallFn {
	return func(ctx *sgx.Context, args any) (any, error) {
		if !l.enabled.Load() {
			return orig(ctx, args)
		}
		ctx.ComputeCycles(l.ocallPreCycles)
		sh := l.shard(ctx.ID())
		id := l.trace.NextID()
		parent := l.push(sh, events.KindOcall, id)

		var enclave sgx.EnclaveID
		if enc := ctx.CurrentEnclave(); enc != nil {
			enclave = enc.ID
		}
		start := ctx.Now()
		if sdk.IsSyncOcall(name) {
			l.recordSync(ctx, sh, name, args, id, start)
		}
		res, err := orig(ctx, args)
		end := ctx.Now()

		l.popRecord(sh, &sh.ocalls, false, events.CallEvent{
			ID:      id,
			Kind:    events.KindOcall,
			Enclave: enclave,
			Thread:  ctx.ID(),
			CallID:  ocallID,
			Name:    name,
			Start:   start,
			End:     end,
			Parent:  parent,
			Err:     err != nil,
		})
		ctx.ComputeCycles(l.ocallPostCycles)
		return res, err
	}
}

// recordSync reduces the four SDK sync ocalls to sleep and wake events
// (§4.1.3), tracking which thread wakes which.
//
//sgxperf:hotpath
func (l *Logger) recordSync(ctx *sgx.Context, sh *shard, name string, args any, call events.EventID, now vtime.Cycles) {
	bufSync := func(ev events.SyncEvent) {
		sh.mu.Lock()
		sh.syncs = append(sh.syncs, ev)
		if len(sh.syncs) == 1 {
			l.pending.Add(1)
		}
		if len(sh.syncs) >= l.opts.FlushEvery {
			l.flushShardLocked(sh)
		}
		sh.mu.Unlock()
	}
	switch name {
	case sdk.OcallThreadWait:
		bufSync(events.SyncEvent{
			ID: l.trace.NextID(), Kind: events.SyncSleep,
			Thread: ctx.ID(), Time: now, Call: call,
		})
	case sdk.OcallThreadSet:
		if a, ok := args.(sdk.SetEventArgs); ok {
			bufSync(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: []sgx.ThreadID{a.Target}, Time: now, Call: call,
			})
		}
	case sdk.OcallThreadSetMultiple:
		if a, ok := args.(sdk.SetMultipleEventArgs); ok {
			targets := make([]sgx.ThreadID, len(a.Targets))
			copy(targets, a.Targets)
			bufSync(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: targets, Time: now, Call: call,
			})
		}
	case sdk.OcallThreadSetWait:
		if a, ok := args.(sdk.SetWaitEventArgs); ok {
			bufSync(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncWake,
				Thread: ctx.ID(), Targets: []sgx.ThreadID{a.Target}, Time: now, Call: call,
			})
			bufSync(events.SyncEvent{
				ID: l.trace.NextID(), Kind: events.SyncSleep,
				Thread: ctx.ID(), Time: now, Call: call,
			})
		}
	}
}

// aep is the logger's patched Asynchronous Exit Pointer handler (§4.1.4):
// count (and optionally timestamp) the AEX, then chain to the previous
// handler, which resumes the enclave. The AEP runs on the interrupted
// thread, so only that thread's shard is touched.
//
//sgxperf:hotpath
func (l *Logger) aep(ctx *sgx.Context, info sgx.AEXInfo) {
	if l.enabled.Load() {
		ctx.ComputeCycles(l.aexCycles)
		sh := l.shard(ctx.ID())
		during := events.NoEvent
		sh.mu.Lock()
		if n := len(sh.stack); n > 0 {
			sh.stack[n-1].aex++
			during = sh.stack[n-1].id
		}
		sh.mu.Unlock()
		if l.opts.AEX == AEXTrace {
			ev := events.AEXEvent{
				ID:      l.trace.NextID(),
				Enclave: info.Enclave,
				Thread:  info.Thread,
				Time:    info.Time,
				During:  during,
			}
			sh.mu.Lock()
			sh.aexs = append(sh.aexs, ev)
			if len(sh.aexs) == 1 {
				l.pending.Add(1)
			}
			if len(sh.aexs) >= l.opts.FlushEvery {
				l.flushShardLocked(sh)
			}
			sh.mu.Unlock()
		}
	}
	l.prevAEP(ctx, info)
}

// onSwitchless converts one switchless runtime record into a synthetic
// trace event, buffered in the calling thread's shard. The record
// arrives on the caller's goroutine at collect time, so the shard and
// ordering discipline match the regular call events. No probe cost is
// charged: the runtime reports cooperatively, there is no interposed
// stub on this path.
//
//sgxperf:hotpath
func (l *Logger) onSwitchless(rec sdk.SwitchlessRecord) {
	if !l.enabled.Load() {
		return
	}
	kind := events.KindOcall
	if rec.Ecall {
		kind = events.KindEcall
	}
	ev := events.SwitchlessEvent{
		ID:       l.trace.NextID(),
		Kind:     kind,
		Enclave:  rec.Enclave,
		Thread:   rec.Caller,
		CallID:   rec.CallID,
		Name:     rec.Name,
		Start:    rec.Start,
		End:      rec.End,
		Worker:   rec.Worker,
		Fallback: rec.Fallback,
		Err:      rec.Err,
	}
	sh := l.shard(rec.Caller)
	sh.mu.Lock()
	sh.switchless = append(sh.switchless, ev)
	if len(sh.switchless) == 1 {
		l.pending.Add(1)
	}
	if len(sh.switchless) >= l.opts.FlushEvery {
		l.flushShardLocked(sh)
	}
	sh.mu.Unlock()
}

// onPaging converts a driver kprobe hit into a paging event (§4.1.5). The
// kprobe fires on the faulting thread, inside the driver's paging path;
// the event is buffered in that thread's shard.
func (l *Logger) onPaging(sym string, ev kernel.KprobeEvent) {
	if !l.enabled.Load() {
		return
	}
	kind := events.PageIn
	if sym == kernel.SymbolEWB {
		kind = events.PageOut
	}
	pe := events.PagingEvent{
		ID:       l.trace.NextID(),
		Kind:     kind,
		Enclave:  ev.Enclave,
		Thread:   ev.Thread,
		Vaddr:    uint64(ev.Vaddr),
		PageKind: ev.Kind.String(),
		Time:     ev.Time,
	}
	sh := l.shard(ev.Thread)
	sh.mu.Lock()
	sh.paging = append(sh.paging, pe)
	if len(sh.paging) == 1 {
		l.pending.Add(1)
	}
	if len(sh.paging) >= l.opts.FlushEvery {
		l.flushShardLocked(sh)
	}
	sh.mu.Unlock()
}

// push adds a stack entry for the thread and returns the direct parent's
// event ID (an in-flight call of the opposite kind), or NoEvent.
//
//sgxperf:hotpath
func (l *Logger) push(sh *shard, kind events.CallKind, id events.EventID) events.EventID {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	parent := events.NoEvent
	if n := len(sh.stack); n > 0 {
		if top := &sh.stack[n-1]; top.kind != kind {
			parent = top.id
		}
	}
	sh.stack = append(sh.stack, stackEntry{kind: kind, id: id})
	return parent
}
