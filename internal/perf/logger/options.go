package logger

import (
	"errors"

	"sgxperf/internal/host"
)

// ErrDetached reports that an operation needed a recording logger but the
// logger had already been detached. Test with errors.Is.
var ErrDetached = errors.New("logger detached")

// Option configures a logger, functional-options style. Options compose
// left to right over the defaults (AEX off, paging kprobes on, batch size
// 256); the Options struct remains as the underlying configuration record
// for callers that prefer to fill it directly.
type Option func(*Options)

// WithWorkload labels the trace with the workload's name.
func WithWorkload(name string) Option {
	return func(o *Options) { o.Workload = name }
}

// WithAEX selects how asynchronous exits are observed (§4.1.4): AEXOff,
// AEXCount or AEXTrace.
func WithAEX(mode AEXMode) Option {
	return func(o *Options) { o.AEX = mode }
}

// WithPagingTrace enables or disables the kprobes on the SGX driver's
// paging functions (§4.1.5). The default is enabled.
func WithPagingTrace(on bool) Option {
	return func(o *Options) { o.SkipPaging = !on }
}

// WithFlushEvery sets the per-thread buffer size before events are flushed
// to the database in a batch (default 256). 1 flushes every event
// immediately — useful for golden-trace comparisons.
func WithFlushEvery(n int) Option {
	return func(o *Options) { o.FlushEvery = n }
}

// New preloads the logger into the host process and starts recording,
// configured by functional options. It is the option-based form of Attach.
func New(h *host.Host, opts ...Option) (*Logger, error) {
	var o Options
	for _, opt := range opts {
		opt(&o)
	}
	return Attach(h, o)
}
