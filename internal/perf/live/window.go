package live

import "sgxperf/internal/vtime"

// ringBuckets is the sliding-window resolution: the window is divided
// into this many buckets, expiring whole buckets as virtual time
// advances.
const ringBuckets = 64

// ring is one event category's sliding-window counter over virtual time.
// The window is anchored at the newest event the ring has seen; rates are
// exact to one bucket width.
type ring struct {
	width   vtime.Cycles // bucket width (window / ringBuckets, min 1)
	buckets [ringBuckets]int64
	cur     int64 // absolute index of the newest bucket
	started bool
}

// add counts one event at virtual time t.
func (r *ring) add(t vtime.Cycles) {
	b := int64(t / r.width)
	if !r.started {
		r.started = true
		r.cur = b
	}
	if b > r.cur {
		if b-r.cur >= ringBuckets {
			r.buckets = [ringBuckets]int64{}
		} else {
			for i := r.cur + 1; i <= b; i++ {
				r.buckets[i%ringBuckets] = 0
			}
		}
		r.cur = b
	}
	if b < r.cur-(ringBuckets-1) {
		// Older than the window: count it in the oldest bucket rather than
		// dropping it, so totals stay right when batches arrive late.
		b = r.cur - (ringBuckets - 1)
	}
	r.buckets[((b%ringBuckets)+ringBuckets)%ringBuckets]++
}

// sum is the number of events in the window.
func (r *ring) sum() int64 {
	var n int64
	for _, b := range r.buckets {
		n += b
	}
	return n
}

// rate converts the window count into events per second of virtual time.
func (r *ring) rate(freq vtime.Frequency) float64 {
	window := freq.Duration(vtime.Cycles(ringBuckets) * r.width).Seconds()
	if window <= 0 {
		return 0
	}
	return float64(r.sum()) / window
}
