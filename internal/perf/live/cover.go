package live

import (
	"sort"

	"sgxperf/internal/vtime"
)

// coverSet is the union of one thread's call spans, kept as sorted
// disjoint intervals. The paging detector only needs an existence test —
// "did this paging event fall inside any call on its thread?" — and a
// point is inside some call span iff it is inside the union, so merged
// intervals lose nothing. Calls on one thread nest or follow each other,
// which keeps the set short and inserts near-append.
type coverSet struct {
	ivs []interval
}

type interval struct {
	lo, hi vtime.Cycles
}

// add unions [lo, hi] into the set.
func (s *coverSet) add(lo, hi vtime.Cycles) {
	if hi < lo {
		lo, hi = hi, lo
	}
	// First interval that could overlap or follow [lo, hi].
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= lo })
	j := i
	for j < len(s.ivs) && s.ivs[j].lo <= hi {
		if s.ivs[j].lo < lo {
			lo = s.ivs[j].lo
		}
		if s.ivs[j].hi > hi {
			hi = s.ivs[j].hi
		}
		j++
	}
	if i == j {
		// No overlap: insert at i.
		s.ivs = append(s.ivs, interval{})
		copy(s.ivs[i+1:], s.ivs[i:])
		s.ivs[i] = interval{lo, hi}
		return
	}
	s.ivs[i] = interval{lo, hi}
	s.ivs = append(s.ivs[:i+1], s.ivs[j:]...)
}

// contains reports whether t falls inside the union.
func (s *coverSet) contains(t vtime.Cycles) bool {
	i := sort.Search(len(s.ivs), func(i int) bool { return s.ivs[i].hi >= t })
	return i < len(s.ivs) && s.ivs[i].lo <= t
}
