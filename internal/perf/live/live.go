// Package live implements a streaming analysis engine over a recording
// logger: it subscribes to the event database's tables and maintains the
// analyser's aggregates incrementally as events arrive, so a Snapshot of
// per-call statistics, anti-pattern findings (SISC/SDSC/SNC/SSC, paging)
// and sliding-window event rates is available at any point during a run —
// without stopping the workload or re-scanning the trace.
//
// # Equivalence with the post-mortem analyser
//
// The collector maintains exactly the aggregates the post-mortem analyser
// (internal/perf/analyzer) derives by scanning a finished trace — per-call
// duration multisets, direct-parent offset bands, indirect-parent pair
// gaps, sleep/wake counters, paging coverage — and feeds them through the
// same kernels (analyzer.StatsFromDurations, MovingFinding,
// ReorderFindings, MergeFindings, SSCFindings, PagingFindings,
// SortFindings). Events may arrive in any order across tables — a nested
// ocall can be delivered before or after its parent ecall depending on
// flush batching — so every cross-event relation is resolved
// symmetrically: whichever side arrives second completes the pair. After
// a workload quiesces and Drain returns, Snapshot is therefore equal to
// the analyser's report over the same trace (same stats, findings, paging
// summary and wake graph); the golden test in this package holds the two
// implementations to that guarantee.
//
// Like the analyser, exact equivalence costs O(events) memory: duration
// multisets and call spans are retained for percentile and parent
// resolution. The collector is a second reader of the same trace, not a
// compressed sketch.
//
// # Concurrency
//
// Table subscribers run under the table's write lock, on the recording
// hot path. The collector's subscribers therefore only enqueue the
// delivered batches — immutable, chunk-backed subslices, retained
// without copying — into an intake queue. All aggregate maintenance is
// deferred and demand-driven: Snapshot, Drain and Close fold the backlog
// in before doing their work, on the calling goroutine. Recorder
// overhead with a collector attached is one slice append per flushed
// batch, and no background goroutine competes with the recording threads
// for CPU. The backlog itself is nearly free to hold: the queued
// subslices alias rows the append-only event store retains anyway, so an
// unread backlog costs slice headers, not event copies.
package live

import (
	"fmt"
	"sync"
	"time"

	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Options configures a collector.
type Options struct {
	// Weights are the detector thresholds (zero value: the paper's
	// defaults, analyzer.DefaultWeights).
	Weights analyzer.Weights
	// Enclave restricts call statistics and findings to one enclave's
	// events (0 = all), mirroring analyzer.Options.Enclave.
	Enclave sgx.EnclaveID
	// Window is the width of the sliding window behind the event rates
	// (default 1s of virtual time).
	Window time.Duration
}

// batch is one table delivery, exactly one field set.
type batch struct {
	ecalls, ocalls []events.CallEvent
	syncs          []events.SyncEvent
	aexs           []events.AEXEvent
	paging         []events.PagingEvent
	switchless     []events.SwitchlessEvent
}

// intake is the queue between the table subscribers (producers, on the
// recording hot path) and the demand-driven catch-up (consumer).
type intake struct {
	mu     sync.Mutex
	q      []batch
	closed bool
}

func (i *intake) push(b batch) {
	i.mu.Lock()
	if !i.closed {
		i.q = append(i.q, b)
	}
	i.mu.Unlock()
}

// take removes and returns the queued batches.
func (i *intake) take() []batch {
	i.mu.Lock()
	q := i.q
	i.q = nil
	i.mu.Unlock()
	return q
}

// arrivedCall is the retained span of one filtered call event.
type arrivedCall struct {
	start, end vtime.Cycles
	adjusted   time.Duration
}

// nameAgg accumulates one call name's statistics inputs.
type nameAgg struct {
	kind     events.CallKind
	durs     []time.Duration
	totalAEX int
	reorder  analyzer.ReorderAgg
}

// pendingChild is a call waiting for its direct parent's span.
type pendingChild struct {
	name       string
	start, end vtime.Cycles
}

// groupKey identifies one indirect-parent group (Fig. 4): calls of one
// kind, on one thread, under one direct parent.
type groupKey struct {
	thread int64
	kind   events.CallKind
	parent events.EventID
}

// groupMember is one call in an indirect-parent group, kept sorted by
// (start, id) — the post-mortem analyser's preparation order.
type groupMember struct {
	start, end vtime.Cycles
	id         events.EventID
	name       string
}

// Collector is a live streaming analysis engine attached to a logger.
type Collector struct {
	l    *logger.Logger
	opts Options

	freq       vtime.Frequency
	transition vtime.Cycles
	workload   string
	windowC    vtime.Cycles

	in      *intake
	cancels []func()
	closeMu sync.Mutex
	closed  bool

	// mu guards every aggregate below and serialises catch-up processing.
	mu sync.Mutex

	seen                                         int64 // events processed, all tables
	nEcalls, nOcalls, nSyncs, nAEX, nPage, nSwls int

	perName         map[string]*nameAgg
	arrived         map[events.EventID]arrivedCall
	pendingChildren map[events.EventID][]pendingChild
	groups          map[groupKey][]groupMember

	syncAgg      analyzer.SyncAgg
	pendingWakes map[events.EventID]int
	wakeAgg      map[[2]int64]int
	switchless   map[string]*analyzer.SwitchlessAgg

	paging        analyzer.PagingStats
	cover         map[sgx.ThreadID]*coverSet
	pendingPaging map[sgx.ThreadID][]vtime.Cycles

	ecallRing, ocallRing, aexRing, pageRing ring
}

// Attach starts a collector on the logger's trace. Events already
// recorded are replayed into the collector atomically with the
// subscription, so a collector attached mid-run still observes the full
// trace exactly once. Attaching to a detached logger fails with an error
// wrapping logger.ErrDetached.
func Attach(l *logger.Logger, opts Options) (*Collector, error) {
	if l.Detached() {
		return nil, fmt.Errorf("live: attach: %w", logger.ErrDetached)
	}
	if opts.Weights == (analyzer.Weights{}) {
		opts.Weights = analyzer.DefaultWeights()
	}
	if opts.Window <= 0 {
		opts.Window = time.Second
	}
	// Reading the trace flushes all shard buffers; anything recorded up to
	// here is in the tables and covered by the subscription replays below.
	tr := l.Trace()
	c := &Collector{
		l:          l,
		opts:       opts,
		freq:       tr.Frequency(),
		transition: tr.TransitionCycles(),
		in:         &intake{},

		perName:         make(map[string]*nameAgg),
		arrived:         make(map[events.EventID]arrivedCall),
		pendingChildren: make(map[events.EventID][]pendingChild),
		groups:          make(map[groupKey][]groupMember),
		pendingWakes:    make(map[events.EventID]int),
		wakeAgg:         make(map[[2]int64]int),
		switchless:      make(map[string]*analyzer.SwitchlessAgg),
		cover:           make(map[sgx.ThreadID]*coverSet),
		pendingPaging:   make(map[sgx.ThreadID][]vtime.Cycles),
	}
	c.paging.ByRegion = make(map[string]int)
	if tr.Meta.Len() > 0 {
		c.workload = tr.Meta.At(0).Workload
	}
	c.windowC = c.freq.Cycles(opts.Window)
	width := c.windowC / ringBuckets
	if width < 1 {
		width = 1
	}
	for _, r := range []*ring{&c.ecallRing, &c.ocallRing, &c.aexRing, &c.pageRing} {
		r.width = width
	}
	c.cancels = append(c.cancels,
		tr.Ecalls.Subscribe(func(rows []events.CallEvent) { c.in.push(batch{ecalls: rows}) }, true),
		tr.Ocalls.Subscribe(func(rows []events.CallEvent) { c.in.push(batch{ocalls: rows}) }, true),
		tr.Syncs.Subscribe(func(rows []events.SyncEvent) { c.in.push(batch{syncs: rows}) }, true),
		tr.AEXs.Subscribe(func(rows []events.AEXEvent) { c.in.push(batch{aexs: rows}) }, true),
		tr.Paging.Subscribe(func(rows []events.PagingEvent) { c.in.push(batch{paging: rows}) }, true),
		tr.Switchless.Subscribe(func(rows []events.SwitchlessEvent) { c.in.push(batch{switchless: rows}) }, true),
	)
	return c, nil
}

// catchUpLocked folds every queued batch into the aggregates. Pushes
// racing with the catch-up land in the queue and are taken on the next
// loop iteration; the queue is empty when it returns only for batches
// delivered before it started, which is all Drain's contract needs.
// Callers hold c.mu.
func (c *Collector) catchUpLocked() {
	for {
		q := c.in.take()
		if len(q) == 0 {
			return
		}
		for _, b := range q {
			c.processLocked(b)
		}
	}
}

// Drain flushes the logger's per-thread buffers and folds everything
// delivered so far into the aggregates. After a workload has quiesced,
// Snapshot following Drain reflects the complete trace.
func (c *Collector) Drain() {
	c.l.Flush()
	c.mu.Lock()
	c.catchUpLocked()
	c.mu.Unlock()
}

// Close detaches the collector from the trace: subscriptions are
// cancelled and the remaining backlog is folded in. The last Snapshot
// stays readable. Close is idempotent.
func (c *Collector) Close() {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	if c.closed {
		return
	}
	c.closed = true
	for _, cancel := range c.cancels {
		cancel()
	}
	c.mu.Lock()
	c.catchUpLocked()
	c.mu.Unlock()
	c.in.mu.Lock()
	c.in.closed = true
	c.in.mu.Unlock()
}

// EventsSeen reports how many events (over all tables) the collector has
// observed so far.
func (c *Collector) EventsSeen() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.catchUpLocked()
	return c.seen
}

// processLocked folds one delivered batch into the aggregates.
func (c *Collector) processLocked(b batch) {
	switch {
	case b.ecalls != nil:
		c.seen += int64(len(b.ecalls))
		c.nEcalls += len(b.ecalls)
		for i := range b.ecalls {
			c.ecallRing.add(b.ecalls[i].End)
			c.addCall(&b.ecalls[i])
		}
	case b.ocalls != nil:
		c.seen += int64(len(b.ocalls))
		c.nOcalls += len(b.ocalls)
		for i := range b.ocalls {
			c.ocallRing.add(b.ocalls[i].End)
			c.addCall(&b.ocalls[i])
		}
	case b.syncs != nil:
		c.seen += int64(len(b.syncs))
		c.nSyncs += len(b.syncs)
		for i := range b.syncs {
			c.addSync(&b.syncs[i])
		}
	case b.aexs != nil:
		c.seen += int64(len(b.aexs))
		c.nAEX += len(b.aexs)
		for i := range b.aexs {
			c.aexRing.add(b.aexs[i].Time)
		}
	case b.paging != nil:
		c.seen += int64(len(b.paging))
		c.nPage += len(b.paging)
		for i := range b.paging {
			c.pageRing.add(b.paging[i].Time)
			c.addPaging(&b.paging[i])
		}
	case b.switchless != nil:
		c.seen += int64(len(b.switchless))
		c.nSwls += len(b.switchless)
		for i := range b.switchless {
			analyzer.SwitchlessFold(c.switchless, &b.switchless[i])
		}
	}
}

// addCall folds one completed call event into every aggregate it feeds:
// the name's duration multiset, its indirect-parent group, the
// direct-parent offset bands (resolving whichever side arrived second),
// pending short-wake checks and pending paging coverage.
func (c *Collector) addCall(ev *events.CallEvent) {
	if c.opts.Enclave != 0 && ev.Enclave != c.opts.Enclave {
		return
	}
	adj := c.freq.Duration(ev.Duration())
	if ev.Kind == events.KindEcall {
		adj = c.freq.Duration(ev.Duration() - c.transition)
	}
	if adj < 0 {
		adj = 0
	}

	na := c.perName[ev.Name]
	if na == nil {
		na = &nameAgg{kind: ev.Kind}
		c.perName[ev.Name] = na
	}
	na.durs = append(na.durs, adj)
	na.totalAEX += ev.AEXCount

	c.arrived[ev.ID] = arrivedCall{start: ev.Start, end: ev.End, adjusted: adj}
	c.groupInsert(groupKey{int64(ev.Thread), ev.Kind, ev.Parent},
		groupMember{start: ev.Start, end: ev.End, id: ev.ID, name: ev.Name})

	// Direct parent: resolve against an already-arrived parent, or park
	// until the parent's event is delivered.
	if ev.Parent != events.NoEvent {
		if p, ok := c.arrived[ev.Parent]; ok {
			na.reorder.Add(c.freq.Duration(ev.Start-p.start), c.freq.Duration(p.end-ev.End))
		} else {
			c.pendingChildren[ev.Parent] = append(c.pendingChildren[ev.Parent],
				pendingChild{name: ev.Name, start: ev.Start, end: ev.End})
		}
	}
	// ... and the mirror: children that arrived before this parent.
	if kids := c.pendingChildren[ev.ID]; kids != nil {
		for _, k := range kids {
			kn := c.perName[k.name]
			kn.reorder.Add(c.freq.Duration(k.start-ev.Start), c.freq.Duration(ev.End-k.end))
		}
		delete(c.pendingChildren, ev.ID)
	}

	// Wake events that referenced this call before it arrived.
	if n := c.pendingWakes[ev.ID]; n > 0 {
		if adj < c.opts.Weights.SyncShortLimit {
			c.syncAgg.ShortWakes += n
		}
		delete(c.pendingWakes, ev.ID)
	}

	// Paging coverage: this call's span now covers part of its thread's
	// timeline; count pending paging events that fall inside it.
	cs := c.cover[ev.Thread]
	if cs == nil {
		cs = &coverSet{}
		c.cover[ev.Thread] = cs
	}
	cs.add(ev.Start, ev.End)
	if pend := c.pendingPaging[ev.Thread]; len(pend) > 0 {
		rest := pend[:0]
		for _, t := range pend {
			if ev.Start <= t && t <= ev.End {
				c.paging.DuringCalls++
			} else {
				rest = append(rest, t)
			}
		}
		if len(rest) == 0 {
			delete(c.pendingPaging, ev.Thread)
		} else {
			c.pendingPaging[ev.Thread] = rest
		}
	}
}

// groupInsert keeps the group's members ordered by (start, id), the
// analyser's preparation order, whatever order batches arrive in.
func (c *Collector) groupInsert(k groupKey, m groupMember) {
	g := c.groups[k]
	i := len(g)
	for i > 0 && (g[i-1].start > m.start || (g[i-1].start == m.start && g[i-1].id > m.id)) {
		i--
	}
	g = append(g, groupMember{})
	copy(g[i+1:], g[i:])
	g[i] = m
	c.groups[k] = g
}

// addSync folds one sleep/wake event into the SSC and wake-graph
// aggregates.
func (c *Collector) addSync(s *events.SyncEvent) {
	c.syncAgg.Total++
	switch s.Kind {
	case events.SyncWake:
		c.syncAgg.Wakes++
		for _, t := range s.Targets {
			c.wakeAgg[[2]int64{int64(s.Thread), int64(t)}]++
		}
		if a, ok := c.arrived[s.Call]; ok {
			if a.adjusted < c.opts.Weights.SyncShortLimit {
				c.syncAgg.ShortWakes++
			}
		} else {
			c.pendingWakes[s.Call]++
		}
	case events.SyncSleep:
		c.syncAgg.Sleeps++
	}
}

// addPaging folds one paging event into the paging summary, deferring the
// during-a-call test when the covering call has not arrived yet.
func (c *Collector) addPaging(p *events.PagingEvent) {
	if p.Kind == events.PageIn {
		c.paging.PageIns++
	} else {
		c.paging.PageOuts++
	}
	c.paging.ByRegion[p.PageKind]++
	if cs := c.cover[p.Thread]; cs != nil && cs.contains(p.Time) {
		c.paging.DuringCalls++
		return
	}
	c.pendingPaging[p.Thread] = append(c.pendingPaging[p.Thread], p.Time)
}
