package live

import (
	"sort"
	"time"

	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/pool"
)

// Counts are the raw event totals the collector has observed, per table.
type Counts struct {
	Ecalls     int `json:"ecalls"`
	Ocalls     int `json:"ocalls"`
	Syncs      int `json:"syncs"`
	AEXs       int `json:"aexs"`
	Paging     int `json:"paging"`
	Switchless int `json:"switchless"`
}

// Rates are sliding-window event rates in events per second of virtual
// time, over the window the snapshot reports.
type Rates struct {
	Window time.Duration `json:"window"`
	Ecalls float64       `json:"ecalls_per_sec"`
	Ocalls float64       `json:"ocalls_per_sec"`
	AEXs   float64       `json:"aexs_per_sec"`
	Paging float64       `json:"paging_per_sec"`
}

// Snapshot is one consistent view of the live analysis: totals and rates
// for dashboards, plus the analyser-grade statistics and findings. After
// the workload quiesces and Drain returns, Stats, Findings, Paging and
// WakeGraph equal the post-mortem analyser's report over the same trace.
type Snapshot struct {
	Workload string `json:"workload"`
	Counts   Counts `json:"counts"`
	Rates    Rates  `json:"rates"`

	Stats      []analyzer.CallStats     `json:"stats"`
	Findings   []analyzer.Finding       `json:"findings"`
	Paging     analyzer.PagingStats     `json:"paging_summary"`
	WakeGraph  []analyzer.WakeEdge      `json:"wake_graph"`
	Switchless analyzer.SwitchlessStats `json:"switchless"`
}

// Snapshot computes the current view from the incremental aggregates by
// running the shared analyser kernels. It is safe to call at any time,
// concurrently with recording; its cost is the kernels (sorting the
// duration multisets, scoring the detectors), independent of how the
// aggregates were built.
func (c *Collector) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.opts.Weights

	s := Snapshot{
		Workload: c.workload,
		Counts:   Counts{Ecalls: c.nEcalls, Ocalls: c.nOcalls, Syncs: c.nSyncs, AEXs: c.nAEX, Paging: c.nPage, Switchless: c.nSwls},
		Rates: Rates{
			Window: c.opts.Window,
			Ecalls: c.ecallRing.rate(c.freq),
			Ocalls: c.ocallRing.rate(c.freq),
			AEXs:   c.aexRing.rate(c.freq),
			Paging: c.pageRing.rate(c.freq),
		},
	}

	names := make([]string, 0, len(c.perName))
	for n := range c.perName {
		names = append(names, n)
	}
	sort.Strings(names)

	// Stats: the per-name duration multisets through the shared kernels,
	// one partition per name on the worker pool (the sorting inside
	// StatsFromDurations dominates snapshot cost). Results land in
	// per-name slots and are assembled in sorted-name order, so the
	// output is identical to the serial loop.
	type nameResult struct {
		stats   analyzer.CallStats
		ok      bool
		moving  []analyzer.Finding
		reorder []analyzer.Finding
	}
	res := make([]nameResult, len(names))
	//sgxperf:allow(heldacross) c.mu guards the aggregates being read; ForEach is bounded CPU work with an inline fallback, and no task touches the collector lock
	pool.ForEach(len(names), func(i int) {
		na := c.perName[names[i]]
		if st, ok := analyzer.StatsFromDurations(names[i], na.kind, na.durs, na.totalAEX); ok {
			res[i].stats, res[i].ok = st, true
			res[i].moving = appendMoving(nil, st, w)
		}
		res[i].reorder = analyzer.ReorderFindings(names[i], na.kind, na.reorder, w)
	})
	s.Stats = make([]analyzer.CallStats, 0, len(names))
	for i := range res {
		if res[i].ok {
			s.Findings = append(s.Findings, res[i].moving...)
			s.Stats = append(s.Stats, res[i].stats)
		}
	}
	analyzer.SortStats(s.Stats)

	// Reordering: the accumulated direct-parent offset bands.
	for i := range res {
		s.Findings = append(s.Findings, res[i].reorder...)
	}

	// Merging: consecutive pairs within each indirect-parent group.
	pairs := make(map[analyzer.MergePair]*analyzer.MergeAgg)
	for _, g := range c.groups {
		for i := 1; i < len(g); i++ {
			k := analyzer.MergePair{Parent: g[i-1].name, Child: g[i].name}
			agg := pairs[k]
			if agg == nil {
				agg = &analyzer.MergeAgg{}
				pairs[k] = agg
			}
			gap := c.freq.Duration(g[i].start - g[i-1].end)
			if gap < 0 {
				gap = 0
			}
			agg.Add(gap)
		}
	}
	totalOf := func(name string) int {
		if na := c.perName[name]; na != nil {
			return len(na.durs)
		}
		return 0
	}
	kindOf := func(name string) (k events.CallKind) {
		if na := c.perName[name]; na != nil {
			k = na.kind
		}
		return k
	}
	s.Findings = append(s.Findings, analyzer.MergeFindings(pairs, totalOf, kindOf, w)...)

	s.Findings = append(s.Findings, analyzer.SSCFindings(c.syncAgg, w)...)

	s.Paging = c.paging
	s.Paging.ByRegion = make(map[string]int, len(c.paging.ByRegion))
	for k, v := range c.paging.ByRegion {
		s.Paging.ByRegion[k] = v
	}
	s.Findings = append(s.Findings, analyzer.PagingFindings(s.Paging, w)...)

	analyzer.SortFindings(s.Findings)
	s.WakeGraph = analyzer.WakeEdges(c.wakeAgg)
	s.Switchless = analyzer.SwitchlessStatsFrom(c.switchless, c.freq)
	return s
}

// appendMoving applies the Equation 1 kernel to one call's stats.
func appendMoving(fs []analyzer.Finding, st analyzer.CallStats, w analyzer.Weights) []analyzer.Finding {
	if f, ok := analyzer.MovingFinding(st, w); ok {
		fs = append(fs, f)
	}
	return fs
}
