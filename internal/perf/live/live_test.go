package live_test

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// app is the instrumented fixture: one enclave with short ecalls (SISC
// material), an ecall issuing a nested ocall, a long ecall (AEX
// material), a mutex-guarded ecall (sync events under contention), and a
// heap-touching ecall (paging material).
type app struct {
	h       *host.Host
	ctx     *sgx.Context
	appEnc  *sdk.AppEnclave
	proxies map[string]sdk.Proxy
}

func newApp(t *testing.T, opts ...host.Option) *app {
	t.Helper()
	h, err := host.New(opts...)
	if err != nil {
		t.Fatal(err)
	}
	iface := edl.NewInterface()
	for _, name := range []string{"ecall_noop", "ecall_with_ocall", "ecall_long", "ecall_locked", "ecall_touch"} {
		if _, err := iface.AddEcall(name, true); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := iface.AddOcall("ocall_noop", nil); err != nil {
		t.Fatal(err)
	}
	var m sdk.Mutex
	impl := map[string]sdk.TrustedFn{
		"ecall_noop": func(env *sdk.Env, args any) (any, error) { return nil, nil },
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_noop", nil)
		},
		"ecall_long": func(env *sdk.Env, args any) (any, error) {
			d, _ := args.(time.Duration)
			env.Compute(d)
			return nil, nil
		},
		"ecall_locked": func(env *sdk.Env, args any) (any, error) {
			if err := m.Lock(env); err != nil {
				return nil, err
			}
			hold, _ := args.(time.Duration)
			env.Compute(hold)
			return nil, m.Unlock(env)
		},
		"ecall_touch": func(env *sdk.Env, args any) (any, error) {
			n, _ := args.(int)
			if err := env.Context().HeapReset(); err != nil {
				return nil, err
			}
			v, err := env.Alloc(n)
			if err != nil {
				return nil, err
			}
			return nil, env.Touch(v, n, true)
		},
	}
	ctx := h.NewContext("main")
	appEnc, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "live", NumTCS: 6}, iface, impl)
	if err != nil {
		t.Fatal(err)
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_noop": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	return &app{h: h, ctx: ctx, appEnc: appEnc, proxies: sdk.Proxies(appEnc, h.Proc, otab)}
}

func (a *app) call(t *testing.T, ctx *sgx.Context, name string, args any) {
	t.Helper()
	if _, err := a.proxies[name](ctx, args); err != nil {
		t.Fatalf("%s: %v", name, err)
	}
}

// runWorkload exercises every detector: batches of short ecalls, nested
// ocalls, mutex contention across threads, one long ecall crossing timer
// quanta, and a heap sweep that pages against a second enclave.
func (a *app) runWorkload(t *testing.T) {
	t.Helper()
	for w := 0; w < 3; w++ {
		if err := a.h.Spawn("worker", func(ctx *sgx.Context) {
			for i := 0; i < 100; i++ {
				a.call(t, ctx, "ecall_noop", nil)
			}
			for i := 0; i < 30; i++ {
				a.call(t, ctx, "ecall_with_ocall", nil)
			}
			for i := 0; i < 20; i++ {
				a.call(t, ctx, "ecall_locked", 50*time.Microsecond)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	a.h.Wait()
	a.call(t, a.ctx, "ecall_long", 9*time.Millisecond)
	// A second enclave crowds the EPC; sweeping the heap then pages.
	iface := edl.NewInterface()
	if _, err := iface.AddEcall("e", true); err != nil {
		t.Fatal(err)
	}
	if _, err := a.h.URTS.CreateEnclave(a.ctx, sgx.Config{HeapBytes: 64 * 4096}, iface,
		map[string]sdk.TrustedFn{"e": func(env *sdk.Env, args any) (any, error) { return nil, nil }}); err != nil {
		t.Fatal(err)
	}
	a.call(t, a.ctx, "ecall_touch", 64*4096)
}

// checkEquivalence asserts a drained live snapshot equals the post-mortem
// report over the same trace, field by field.
func checkEquivalence(t *testing.T, snap live.Snapshot, l *logger.Logger, opts analyzer.Options) {
	t.Helper()
	an, err := analyzer.New(l.Trace(), opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := an.Analyze()
	if snap.Workload != rep.Workload {
		t.Errorf("workload: live %q, post-mortem %q", snap.Workload, rep.Workload)
	}
	if !reflect.DeepEqual(snap.Stats, rep.Stats) {
		t.Errorf("stats diverge:\nlive: %+v\npost: %+v", snap.Stats, rep.Stats)
	}
	if !reflect.DeepEqual(snap.Findings, rep.Findings) {
		t.Errorf("findings diverge:\nlive: %+v\npost: %+v", snap.Findings, rep.Findings)
	}
	if !reflect.DeepEqual(snap.Paging, rep.Paging) {
		t.Errorf("paging diverges:\nlive: %+v\npost: %+v", snap.Paging, rep.Paging)
	}
	if !reflect.DeepEqual(snap.WakeGraph, rep.WakeGraph) {
		t.Errorf("wake graph diverges:\nlive: %+v\npost: %+v", snap.WakeGraph, rep.WakeGraph)
	}
	if !reflect.DeepEqual(snap.Switchless, rep.Switchless) {
		t.Errorf("switchless stats diverge:\nlive: %+v\npost: %+v", snap.Switchless, rep.Switchless)
	}
}

// TestLiveEqualsPostMortem is the golden test of the streaming engine:
// with the collector attached from the start, a snapshot after quiescence
// must equal the analyser's report over the same trace.
func TestLiveEqualsPostMortem(t *testing.T) {
	a := newApp(t, host.WithEPCCapacity(160))
	l, err := logger.New(a.h, logger.WithWorkload("golden"), logger.WithAEX(logger.AEXTrace))
	if err != nil {
		t.Fatal(err)
	}
	c, err := live.Attach(l, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a.runWorkload(t)
	c.Drain()
	snap := c.Snapshot()
	checkEquivalence(t, snap, l, analyzer.Options{})

	// Sanity on the streaming side: the detectors actually had material.
	if snap.Counts.Ecalls == 0 || snap.Counts.Ocalls == 0 || snap.Counts.AEXs == 0 || snap.Counts.Paging == 0 {
		t.Fatalf("workload left a detector without events: %+v", snap.Counts)
	}
	if len(snap.Findings) == 0 {
		t.Fatal("no findings from a workload built to trigger them")
	}
	if snap.Rates.Ecalls <= 0 {
		t.Fatalf("ecall rate = %v, want > 0", snap.Rates.Ecalls)
	}
}

// TestLiveEqualsPostMortemPerEnclave repeats the golden comparison with
// the analysis restricted to the first enclave.
func TestLiveEqualsPostMortemPerEnclave(t *testing.T) {
	a := newApp(t, host.WithEPCCapacity(160))
	l, err := logger.New(a.h, logger.WithWorkload("golden-enclave"))
	if err != nil {
		t.Fatal(err)
	}
	eid := a.appEnc.ID()
	c, err := live.Attach(l, live.Options{Enclave: eid})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	a.runWorkload(t)
	c.Drain()
	checkEquivalence(t, c.Snapshot(), l, analyzer.Options{Enclave: eid})
}

// TestLiveAttachMidRunReplays attaches the collector halfway through the
// workload: the subscription replay must hand it the first half, so the
// drained snapshot still equals the post-mortem report.
func TestLiveAttachMidRunReplays(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h, logger.WithWorkload("midrun"), logger.WithPagingTrace(false))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 150; i++ {
		a.call(t, a.ctx, "ecall_noop", nil)
	}
	for i := 0; i < 10; i++ {
		a.call(t, a.ctx, "ecall_with_ocall", nil)
	}

	c, err := live.Attach(l, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	for i := 0; i < 150; i++ {
		a.call(t, a.ctx, "ecall_noop", nil)
	}
	for i := 0; i < 10; i++ {
		a.call(t, a.ctx, "ecall_with_ocall", nil)
	}
	c.Drain()
	snap := c.Snapshot()
	if snap.Counts.Ecalls != 320 {
		t.Fatalf("collector saw %d ecalls, want 320 (replay + live)", snap.Counts.Ecalls)
	}
	checkEquivalence(t, snap, l, analyzer.Options{})
}

// TestLiveSnapshotsDuringRun polls snapshots while recording continues:
// they must be internally consistent and monotonic in event counts.
func TestLiveSnapshotsDuringRun(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h, logger.WithPagingTrace(false), logger.WithFlushEvery(16))
	if err != nil {
		t.Fatal(err)
	}
	c, err := live.Attach(l, live.Options{Window: 100 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	prev := 0
	for round := 0; round < 5; round++ {
		for i := 0; i < 64; i++ {
			a.call(t, a.ctx, "ecall_noop", nil)
		}
		c.Drain()
		snap := c.Snapshot()
		if snap.Counts.Ecalls < prev {
			t.Fatalf("ecall count went backwards: %d -> %d", prev, snap.Counts.Ecalls)
		}
		prev = snap.Counts.Ecalls
		if len(snap.Stats) != 1 || snap.Stats[0].Count != snap.Counts.Ecalls {
			t.Fatalf("round %d: stats %+v vs count %d", round, snap.Stats, snap.Counts.Ecalls)
		}
	}
	if prev != 5*64 {
		t.Fatalf("final count %d, want %d", prev, 5*64)
	}
}

// TestLiveAttachDetachedLogger verifies the sentinel error contract.
func TestLiveAttachDetachedLogger(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h, logger.WithPagingTrace(false))
	if err != nil {
		t.Fatal(err)
	}
	l.Detach()
	if _, err := live.Attach(l, live.Options{}); !errors.Is(err, logger.ErrDetached) {
		t.Fatalf("attach to detached logger: err = %v, want errors.Is ErrDetached", err)
	}
}

// TestLiveCloseIsIdempotent closes twice and snapshots after close.
func TestLiveCloseIsIdempotent(t *testing.T) {
	a := newApp(t)
	l, err := logger.New(a.h, logger.WithPagingTrace(false))
	if err != nil {
		t.Fatal(err)
	}
	c, err := live.Attach(l, live.Options{})
	if err != nil {
		t.Fatal(err)
	}
	a.call(t, a.ctx, "ecall_noop", nil)
	c.Drain()
	c.Close()
	c.Close()
	if snap := c.Snapshot(); snap.Counts.Ecalls != 1 {
		t.Fatalf("snapshot after close: %+v", snap.Counts)
	}
	// New events after close are not delivered.
	a.call(t, a.ctx, "ecall_noop", nil)
	l.Flush()
	if snap := c.Snapshot(); snap.Counts.Ecalls != 1 {
		t.Fatalf("closed collector still receiving events: %+v", snap.Counts)
	}
}
