package live

import (
	"testing"

	"sgxperf/internal/vtime"
)

func TestCoverSet(t *testing.T) {
	var s coverSet
	s.add(10, 20)
	s.add(40, 50)
	s.add(15, 45) // bridges both
	if len(s.ivs) != 1 || s.ivs[0] != (interval{10, 50}) {
		t.Fatalf("merge failed: %+v", s.ivs)
	}
	s.add(60, 70)
	for _, tc := range []struct {
		t  vtime.Cycles
		in bool
	}{{9, false}, {10, true}, {50, true}, {55, false}, {60, true}, {70, true}, {71, false}} {
		if got := s.contains(tc.t); got != tc.in {
			t.Fatalf("contains(%d) = %v, want %v", tc.t, got, tc.in)
		}
	}
	// Out-of-order inserts keep the set sorted and disjoint.
	var r coverSet
	r.add(100, 110)
	r.add(0, 5)
	r.add(50, 60)
	if len(r.ivs) != 3 || r.ivs[0].lo != 0 || r.ivs[1].lo != 50 || r.ivs[2].lo != 100 {
		t.Fatalf("ordering: %+v", r.ivs)
	}
}

func TestRingWindow(t *testing.T) {
	r := ring{width: 10}
	for i := 0; i < 5; i++ {
		r.add(vtime.Cycles(i * 10))
	}
	if r.sum() != 5 {
		t.Fatalf("sum = %d, want 5", r.sum())
	}
	// Jump far ahead: old buckets expire.
	r.add(vtime.Cycles(10 * 10 * ringBuckets))
	if r.sum() != 1 {
		t.Fatalf("after expiry sum = %d, want 1", r.sum())
	}
	// Late event older than the window clamps into the oldest bucket.
	r.add(0)
	if r.sum() != 2 {
		t.Fatalf("late event dropped: sum = %d, want 2", r.sum())
	}
}
