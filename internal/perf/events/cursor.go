package events

// Cursor is a polling reader over a trace's event tables: each call to a
// table method returns only the events appended since the cursor last
// read that table. Reads go through the tables' normal read path, so a
// recorder's buffered events are flushed first (the read-hook drain) and
// a cursor polled after quiescence always reaches the end of the trace.
//
// A cursor is a convenience for periodic consumers — live terminal views,
// tail-style exporters — that want pull semantics instead of the push
// subscription the streaming analyser uses. It is not safe for concurrent
// use; give each consumer its own cursor.
type Cursor struct {
	trace *Trace

	ecalls, ocalls, aexs, paging, syncs, threads int
}

// NewCursor creates a cursor positioned at the start of the trace.
func (t *Trace) NewCursor() *Cursor { return &Cursor{trace: t} }

// cursorDrain copies the rows of tab from *next on, advancing *next.
func cursorDrain[T any](tab interface {
	ScanFrom(start int, yield func(i int, row T) bool)
}, next *int) []T {
	var out []T
	tab.ScanFrom(*next, func(i int, row T) bool {
		out = append(out, row)
		*next = i + 1
		return true
	})
	return out
}

// Ecalls returns the ecall events recorded since the last call.
func (c *Cursor) Ecalls() []CallEvent { return cursorDrain(c.trace.Ecalls, &c.ecalls) }

// Ocalls returns the ocall events recorded since the last call.
func (c *Cursor) Ocalls() []CallEvent { return cursorDrain(c.trace.Ocalls, &c.ocalls) }

// AEXs returns the AEX events recorded since the last call.
func (c *Cursor) AEXs() []AEXEvent { return cursorDrain(c.trace.AEXs, &c.aexs) }

// Paging returns the paging events recorded since the last call.
func (c *Cursor) Paging() []PagingEvent { return cursorDrain(c.trace.Paging, &c.paging) }

// Syncs returns the sync events recorded since the last call.
func (c *Cursor) Syncs() []SyncEvent { return cursorDrain(c.trace.Syncs, &c.syncs) }

// Threads returns the thread events recorded since the last call.
func (c *Cursor) Threads() []ThreadEvent { return cursorDrain(c.trace.Threads, &c.threads) }
