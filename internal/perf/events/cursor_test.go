package events

import (
	"testing"

	"sgxperf/internal/sgx"
)

func TestCursorDrainsIncrementally(t *testing.T) {
	trace, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	cur := trace.NewCursor()

	if got := cur.Ecalls(); len(got) != 0 {
		t.Fatalf("fresh cursor returned %d ecalls", len(got))
	}

	trace.Ecalls.Insert(
		CallEvent{ID: 1, Kind: KindEcall, Name: "a"},
		CallEvent{ID: 2, Kind: KindEcall, Name: "b"},
	)
	trace.Syncs.Insert(SyncEvent{ID: 3, Kind: SyncSleep, Thread: 7})

	first := cur.Ecalls()
	if len(first) != 2 || first[0].ID != 1 || first[1].ID != 2 {
		t.Fatalf("first drain = %v", first)
	}
	if got := cur.Ecalls(); len(got) != 0 {
		t.Fatalf("second drain returned %d ecalls, want 0", len(got))
	}
	if got := cur.Syncs(); len(got) != 1 || got[0].Thread != sgx.ThreadID(7) {
		t.Fatalf("syncs drain = %v", got)
	}

	trace.Ecalls.Insert(CallEvent{ID: 4, Kind: KindEcall, Name: "c"})
	if got := cur.Ecalls(); len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("third drain = %v", got)
	}
}

func TestCursorTriggersReadFlush(t *testing.T) {
	trace, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a recorder with one buffered event: the flush hook inserts
	// it on first read, exactly like the logger's read-hook drain.
	buffered := []CallEvent{{ID: 1, Kind: KindOcall, Name: "buffered"}}
	trace.SetReadFlush(func() {
		if len(buffered) > 0 {
			rows := buffered
			buffered = nil
			trace.SetReadFlush(nil) // avoid re-entrant flush on the insert's readers
			trace.Ocalls.BatchInsert(rows)
		}
	})

	cur := trace.NewCursor()
	if got := cur.Ocalls(); len(got) != 1 || got[0].Name != "buffered" {
		t.Fatalf("cursor did not drain the recorder's buffer: %v", got)
	}
}

func TestCursorsAreIndependent(t *testing.T) {
	trace, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	trace.Paging.Insert(PagingEvent{ID: 1, Kind: PageIn})
	a, b := trace.NewCursor(), trace.NewCursor()
	if got := a.Paging(); len(got) != 1 {
		t.Fatalf("cursor a drain = %v", got)
	}
	if got := b.Paging(); len(got) != 1 {
		t.Fatalf("cursor b unaffected by a, got %v", got)
	}
}
