package events

import (
	"bytes"
	"reflect"
	"testing"

	"sgxperf/internal/evstore"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// populatedTrace builds a trace touching every table, including the
// delta-unfriendly corners: out-of-order IDs, NoEvent parents, negative
// thread IDs, empty and multi-element wake target lists.
func populatedTrace(t *testing.T) *Trace {
	t.Helper()
	tr, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.Insert(TraceMeta{Workload: "codec-test", FrequencyHz: 2.1e9, Mitigation: "none", TransitionCycles: 13500})
	tr.Enclaves.Insert(EnclaveMeta{Enclave: 1, Name: "enc", NumPages: 256, EDL: "enclave{};"})
	tr.Threads.Insert(
		ThreadEvent{Thread: 0, Name: "main", Time: 1},
		ThreadEvent{Thread: -1, Name: "", Time: 2},
	)
	for i := 0; i < 2500; i++ {
		id := EventID(i*2 + 1)
		tr.Ecalls.Insert(CallEvent{
			ID: id, Kind: KindEcall, Enclave: 1, Thread: sgx.ThreadID(i % 4),
			CallID: i % 9, Name: []string{"ecall_a", "ecall_b"}[i%2],
			Start: 1000 + 7*vtime.Cycles(i), End: 1200 + 7*vtime.Cycles(i),
			Parent: NoEvent, AEXCount: i % 3, Err: i%11 == 0,
		})
		tr.Ocalls.Insert(CallEvent{
			ID: id + 1, Kind: KindOcall, Enclave: 1, Thread: sgx.ThreadID(i % 4),
			Name: "ocall_x", Start: 1050 + 7*vtime.Cycles(i), End: 1100 + 7*vtime.Cycles(i),
			Parent: id,
		})
		if i%5 == 0 {
			tr.AEXs.Insert(AEXEvent{ID: id + 5000, Enclave: 1, Thread: 2, Time: 1010 + 7*vtime.Cycles(i), During: id})
		}
		if i%7 == 0 {
			tr.Paging.Insert(PagingEvent{ID: id + 9000, Kind: PageOut, Enclave: 1, Thread: 1,
				Vaddr: 0xfff0_0000_0000 + uint64(i)*4096, PageKind: "heap", Time: 1020 + 7*vtime.Cycles(i)})
		}
		if i%6 == 0 {
			var targets []sgx.ThreadID
			kind := SyncSleep
			if i%12 == 0 {
				kind = SyncWake
				targets = []sgx.ThreadID{0, 3}
			}
			tr.Syncs.Insert(SyncEvent{ID: id + 13000, Kind: kind, Thread: 3, Targets: targets,
				Time: 1030 + 7*vtime.Cycles(i), Call: id + 1})
		}
	}
	return tr
}

func tracesEqual(t *testing.T, a, b *Trace) {
	t.Helper()
	check := func(name string, x, y any) {
		if !reflect.DeepEqual(x, y) {
			t.Fatalf("table %s did not round-trip", name)
		}
	}
	check("meta", a.Meta.Rows(), b.Meta.Rows())
	check("ecalls", a.Ecalls.Rows(), b.Ecalls.Rows())
	check("ocalls", a.Ocalls.Rows(), b.Ocalls.Rows())
	check("aexs", a.AEXs.Rows(), b.AEXs.Rows())
	check("paging", a.Paging.Rows(), b.Paging.Rows())
	check("syncs", a.Syncs.Rows(), b.Syncs.Rows())
	check("threads", a.Threads.Rows(), b.Threads.Rows())
	check("enclaves", a.Enclaves.Rows(), b.Enclaves.Rows())
}

// TestTraceBinaryRoundTrip: a full trace survives the columnar codec,
// compressed and not.
func TestTraceBinaryRoundTrip(t *testing.T) {
	src := populatedTrace(t)
	for _, compress := range []bool{false, true} {
		var buf bytes.Buffer
		if err := src.SaveWith(&buf, evstore.SaveOptions{Compress: compress}); err != nil {
			t.Fatal(err)
		}
		dst, err := NewTrace()
		if err != nil {
			t.Fatal(err)
		}
		if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
			t.Fatal(err)
		}
		tracesEqual(t, src, dst)
		if dst.NextID() <= src.Ecalls.At(src.Ecalls.Len()-1).ID {
			t.Fatal("ID allocation did not continue past loaded events")
		}
	}
}

// TestTraceGobMigration: a trace saved by the legacy gob format loads
// identically through the new Load — the on-disk migration contract for
// traces recorded before the codec existed.
func TestTraceGobMigration(t *testing.T) {
	src := populatedTrace(t)
	var gobBuf bytes.Buffer
	if err := src.SaveWith(&gobBuf, evstore.SaveOptions{Format: evstore.FormatGob}); err != nil {
		t.Fatal(err)
	}
	dst, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.Load(bytes.NewReader(gobBuf.Bytes())); err != nil {
		t.Fatalf("loading legacy gob trace: %v", err)
	}
	tracesEqual(t, src, dst)

	// And the migrated binary form is smaller than the gob original —
	// the point of the codec.
	var binBuf bytes.Buffer
	if err := dst.Save(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() >= gobBuf.Len() {
		t.Fatalf("binary save (%d bytes) not smaller than gob (%d bytes)", binBuf.Len(), gobBuf.Len())
	}
	re, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := re.Load(bytes.NewReader(binBuf.Bytes())); err != nil {
		t.Fatal(err)
	}
	tracesEqual(t, src, re)
}
