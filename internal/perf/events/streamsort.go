package events

import "sgxperf/internal/evstore"

// StreamSort rewrites the trace's order-sensitive tables into the
// stream-sorted layout the streaming analyzer fold requires: ecalls and
// ocalls each globally sorted by (Start, ID), paging by (Time, ID). The
// remaining tables are order-free for the fold and are left untouched.
// Call it before Save when the trace is destined for out-of-core
// analysis; resident analysis is order-insensitive either way.
func StreamSort(t *Trace) {
	sortCalls := func(tbl *evstore.Table[CallEvent]) {
		tbl.Replace(tbl.OrderedBy(func(a, b CallEvent) bool {
			if a.Start != b.Start {
				return a.Start < b.Start
			}
			return a.ID < b.ID
		}))
	}
	sortCalls(t.Ecalls)
	sortCalls(t.Ocalls)
	t.Paging.Replace(t.Paging.OrderedBy(func(a, b PagingEvent) bool {
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		return a.ID < b.ID
	}))
}
