package events

import (
	"bytes"
	"testing"

	"sgxperf/internal/vtime"
)

func TestTraceIDsMonotonic(t *testing.T) {
	tr, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	prev := EventID(0)
	for i := 0; i < 100; i++ {
		id := tr.NextID()
		if id <= prev {
			t.Fatalf("id %d not > %d", id, prev)
		}
		prev = id
	}
}

func TestTraceDefaults(t *testing.T) {
	tr, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	if tr.Frequency() != vtime.DefaultFrequency {
		t.Fatalf("default frequency = %v", tr.Frequency())
	}
	if tr.TransitionCycles() != 0 {
		t.Fatal("default transition cycles nonzero")
	}
	tr.Meta.Insert(TraceMeta{FrequencyHz: 2e9, TransitionCycles: 4242})
	if tr.Frequency() != vtime.Frequency(2e9) {
		t.Fatalf("frequency = %v", tr.Frequency())
	}
	if tr.TransitionCycles() != 4242 {
		t.Fatalf("transition = %d", tr.TransitionCycles())
	}
}

func TestCallEventDuration(t *testing.T) {
	e := CallEvent{Start: 100, End: 350}
	if e.Duration() != 250 {
		t.Fatalf("duration = %d", e.Duration())
	}
}

func TestSaveLoadContinuesIDs(t *testing.T) {
	tr, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr.Meta.Insert(TraceMeta{Workload: "w"})
	for i := 0; i < 5; i++ {
		tr.Ecalls.Insert(CallEvent{ID: tr.NextID(), Kind: KindEcall, Name: "e"})
	}
	tr.Syncs.Insert(SyncEvent{ID: tr.NextID(), Kind: SyncSleep})

	var buf bytes.Buffer
	if err := tr.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.Load(&buf); err != nil {
		t.Fatal(err)
	}
	if loaded.Ecalls.Len() != 5 || loaded.Syncs.Len() != 1 {
		t.Fatalf("loaded %d/%d", loaded.Ecalls.Len(), loaded.Syncs.Len())
	}
	next := loaded.NextID()
	for _, e := range loaded.Ecalls.Rows() {
		if next <= e.ID {
			t.Fatalf("NextID %d collides with %d", next, e.ID)
		}
	}
	for _, s := range loaded.Syncs.Rows() {
		if next <= s.ID {
			t.Fatalf("NextID %d collides with sync %d", next, s.ID)
		}
	}
}

func TestCallsAccessor(t *testing.T) {
	tr, err := NewTrace()
	if err != nil {
		t.Fatal(err)
	}
	tr.Ecalls.Insert(CallEvent{ID: 1, Kind: KindEcall})
	tr.Ocalls.Insert(CallEvent{ID: 2, Kind: KindOcall}, CallEvent{ID: 3, Kind: KindOcall})
	if len(tr.Calls(KindEcall)) != 1 || len(tr.Calls(KindOcall)) != 2 {
		t.Fatal("Calls accessor broken")
	}
}

func TestStringers(t *testing.T) {
	tests := []struct {
		got  string
		want string
	}{
		{KindEcall.String(), "ecall"},
		{KindOcall.String(), "ocall"},
		{PageIn.String(), "page-in"},
		{PageOut.String(), "page-out"},
		{SyncSleep.String(), "sleep"},
		{SyncWake.String(), "wake"},
		{CallKind(99).String(), "unknown"},
		{PagingKind(99).String(), "unknown"},
		{SyncKind(99).String(), "unknown"},
	}
	for _, tt := range tests {
		if tt.got != tt.want {
			t.Errorf("got %q, want %q", tt.got, tt.want)
		}
	}
}
