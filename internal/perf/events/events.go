// Package events defines the trace schema shared by the sgx-perf logger
// and analyser: ecall/ocall events with direct-parent links, AEX events,
// EPC paging events, and synchronisation (sleep/wake) events, stored in an
// evstore database (the paper serialises to SQLite, §4).
package events

import (
	"fmt"
	"io"
	"sync/atomic"

	"sgxperf/internal/evstore"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// EventID identifies one recorded event within a trace. IDs are assigned
// when a call starts, so in-flight parents can be referenced.
type EventID int64

// NoEvent is the absent-parent sentinel.
const NoEvent EventID = -1

// CallKind distinguishes ecall from ocall events.
type CallKind int

const (
	// KindEcall marks calls into the enclave.
	KindEcall CallKind = iota + 1
	// KindOcall marks calls out of the enclave.
	KindOcall
)

// String names the kind.
func (k CallKind) String() string {
	switch k {
	case KindEcall:
		return "ecall"
	case KindOcall:
		return "ocall"
	default:
		return "unknown"
	}
}

// CallEvent is one completed ecall or ocall (§4.1.1–4.1.2).
//
// Timestamps are recorded outside the enclave. For ecalls the duration
// therefore includes both transitions; for ocalls it excludes them — the
// analyser compensates (§4.1.2).
type CallEvent struct {
	ID      EventID
	Kind    CallKind
	Enclave sgx.EnclaveID
	Thread  sgx.ThreadID
	CallID  int
	Name    string
	Start   vtime.Cycles
	End     vtime.Cycles
	// Parent is the direct parent (§4.3.2): for an ocall, the ecall it was
	// issued from; for an ecall, the ocall it was issued from (nested
	// ecall), or NoEvent at top level.
	Parent EventID
	// AEXCount is the number of asynchronous exits during this call (only
	// populated for ecalls when AEX counting or tracing is enabled).
	AEXCount int
	// Err records whether the call returned an error.
	Err bool
}

// Duration returns End-Start in cycles.
func (e CallEvent) Duration() vtime.Cycles { return e.End - e.Start }

// AEXEvent is one traced asynchronous exit (§4.1.4).
type AEXEvent struct {
	ID      EventID
	Enclave sgx.EnclaveID
	Thread  sgx.ThreadID
	Time    vtime.Cycles
	// During is the call event interrupted, or NoEvent.
	During EventID
}

// PagingKind distinguishes page-in from page-out events.
type PagingKind int

const (
	// PageIn is an ELDU (load back into the EPC).
	PageIn PagingKind = iota + 1
	// PageOut is an EWB (eviction from the EPC).
	PageOut
)

// String names the paging direction.
func (k PagingKind) String() string {
	switch k {
	case PageIn:
		return "page-in"
	case PageOut:
		return "page-out"
	default:
		return "unknown"
	}
}

// PagingEvent is one EPC paging operation captured via kprobes on the
// driver (§4.1.5). The virtual address lets the analyser attribute the
// page to an enclave region.
type PagingEvent struct {
	ID       EventID
	Kind     PagingKind
	Enclave  sgx.EnclaveID
	Thread   sgx.ThreadID
	Vaddr    uint64
	PageKind string
	Time     vtime.Cycles
}

// SyncKind reduces the four SDK sync ocalls to the two event types the
// paper uses (§4.1.3).
type SyncKind int

const (
	// SyncSleep is a thread going to sleep outside the enclave.
	SyncSleep SyncKind = iota + 1
	// SyncWake is a thread waking one or more other threads.
	SyncWake
)

// String names the sync kind.
func (k SyncKind) String() string {
	switch k {
	case SyncSleep:
		return "sleep"
	case SyncWake:
		return "wake"
	default:
		return "unknown"
	}
}

// SyncEvent is one synchronisation event, tracking which thread wakes
// which others to expose contention (§4.1.3).
type SyncEvent struct {
	ID     EventID
	Kind   SyncKind
	Thread sgx.ThreadID
	// Targets are the woken threads (wake events only).
	Targets []sgx.ThreadID
	Time    vtime.Cycles
	// Call is the ocall event carrying this sync operation.
	Call EventID
}

// SwitchlessEvent is one call served by the switchless runtime (or its
// fallback to the regular transition path). Switchless calls bypass
// sgx_ecall and the ocall table, so interposition alone cannot see them
// (§6 discusses the blind spot); the runtime cooperates by emitting
// these synthetic events through the logger's observer hook.
type SwitchlessEvent struct {
	ID      EventID
	Kind    CallKind
	Enclave sgx.EnclaveID
	// Thread is the calling thread (the one that submitted the request).
	Thread sgx.ThreadID
	CallID int
	Name   string
	// Start is the caller's submit time, End its collect time — the full
	// queue round-trip as the caller observes it.
	Start vtime.Cycles
	End   vtime.Cycles
	// Worker is the pool thread that serviced the request, or 0 when the
	// call fell back to the regular transition path.
	Worker sgx.ThreadID
	// Fallback records that the queue was full and the call took the
	// regular sgx_ecall / ocall-table path instead.
	Fallback bool
	// Err records whether the call returned an error.
	Err bool
}

// Duration returns End-Start in cycles.
func (e SwitchlessEvent) Duration() vtime.Cycles { return e.End - e.Start }

// ThreadEvent records a thread observed by the logger (via the shadowed
// pthread_create, §4).
type ThreadEvent struct {
	Thread sgx.ThreadID
	Name   string
	Time   vtime.Cycles
}

// EnclaveMeta describes an enclave seen in the trace.
type EnclaveMeta struct {
	Enclave  sgx.EnclaveID
	Name     string
	NumPages int
	// EDL is the enclave's interface rendered as EDL text, when known.
	EDL string
}

// TraceMeta is the per-trace header.
type TraceMeta struct {
	Workload    string
	FrequencyHz float64
	Mitigation  string
	// TransitionCycles is the machine's EENTER+EEXIT round-trip cost; the
	// analyser subtracts it from ecall durations (§4.1.2).
	TransitionCycles int64
}

// Trace is one recorded run: a set of typed event tables plus metadata.
type Trace struct {
	Meta     *evstore.Table[TraceMeta]
	Ecalls   *evstore.Table[CallEvent]
	Ocalls   *evstore.Table[CallEvent]
	AEXs     *evstore.Table[AEXEvent]
	Paging   *evstore.Table[PagingEvent]
	Syncs    *evstore.Table[SyncEvent]
	Threads  *evstore.Table[ThreadEvent]
	Enclaves *evstore.Table[EnclaveMeta]
	// Switchless holds the synthetic events the switchless runtime emits;
	// registered last so older traces remain loadable by older schemas.
	Switchless *evstore.Table[SwitchlessEvent]

	db     *evstore.DB
	nextID atomic.Int64
}

// SetReadFlush installs flush to run before any read of the trace's event
// tables. A recorder with per-thread buffers (the logger) registers its
// flush function here so readers always observe a complete trace, however
// events are batched. Pass nil to clear.
func (t *Trace) SetReadFlush(flush func()) {
	for _, tab := range []interface{ SetReadHook(func()) }{
		t.Ecalls, t.Ocalls, t.AEXs, t.Paging, t.Syncs, t.Threads, t.Enclaves,
		t.Switchless,
	} {
		tab.SetReadHook(flush)
	}
}

// NewTrace creates an empty trace with its schema registered.
func NewTrace() (*Trace, error) {
	t := &Trace{
		Meta:       evstore.NewTable[TraceMeta]("meta"),
		Ecalls:     evstore.NewTable[CallEvent]("ecalls"),
		Ocalls:     evstore.NewTable[CallEvent]("ocalls"),
		AEXs:       evstore.NewTable[AEXEvent]("aexs"),
		Paging:     evstore.NewTable[PagingEvent]("paging"),
		Syncs:      evstore.NewTable[SyncEvent]("syncs"),
		Threads:    evstore.NewTable[ThreadEvent]("threads"),
		Enclaves:   evstore.NewTable[EnclaveMeta]("enclaves"),
		Switchless: evstore.NewTable[SwitchlessEvent]("switchless"),
		db:         evstore.NewDB(),
	}
	// Columnar codecs for the high-volume tables (see codec.go); Meta and
	// Enclaves intentionally stay on the gob fallback.
	t.Ecalls.SetCodec(callCodec{})
	t.Ocalls.SetCodec(callCodec{})
	t.AEXs.SetCodec(aexCodec{})
	t.Paging.SetCodec(pagingCodec{})
	t.Syncs.SetCodec(syncCodec{})
	t.Threads.SetCodec(threadCodec{})
	t.Switchless.SetCodec(switchlessCodec{})
	for _, err := range []error{
		evstore.Register(t.db, t.Meta),
		evstore.Register(t.db, t.Ecalls),
		evstore.Register(t.db, t.Ocalls),
		evstore.Register(t.db, t.AEXs),
		evstore.Register(t.db, t.Paging),
		evstore.Register(t.db, t.Syncs),
		evstore.Register(t.db, t.Threads),
		evstore.Register(t.db, t.Enclaves),
		evstore.Register(t.db, t.Switchless),
	} {
		if err != nil {
			return nil, fmt.Errorf("events: %w", err)
		}
	}
	return t, nil
}

// NextID allocates a fresh event ID.
func (t *Trace) NextID() EventID {
	return EventID(t.nextID.Add(1))
}

// Calls returns all call events of the given kind in one exactly-sized
// copy (built from the bulk chunk scan); hot paths should use ScanCalls
// instead.
func (t *Trace) Calls(kind CallKind) []CallEvent {
	tab := t.Ecalls
	if kind != KindEcall {
		tab = t.Ocalls
	}
	return collect(tab)
}

// ScanCalls iterates all call events of the given kind in insertion order
// without copying, until yield returns false.
func (t *Trace) ScanCalls(kind CallKind, yield func(i int, ev CallEvent) bool) {
	if kind == KindEcall {
		t.Ecalls.Scan(yield)
		return
	}
	t.Ocalls.Scan(yield)
}

// Frequency returns the trace's recorded CPU frequency, defaulting to the
// repository-wide default when metadata is missing.
func (t *Trace) Frequency() vtime.Frequency {
	if t.Meta.Len() > 0 && t.Meta.At(0).FrequencyHz > 0 {
		return vtime.Frequency(t.Meta.At(0).FrequencyHz)
	}
	return vtime.DefaultFrequency
}

// TransitionCycles returns the recorded transition round-trip cost.
func (t *Trace) TransitionCycles() vtime.Cycles {
	if t.Meta.Len() > 0 {
		return vtime.Cycles(t.Meta.At(0).TransitionCycles)
	}
	return 0
}

// Save serialises the trace in the default (columnar binary) format.
func (t *Trace) Save(w io.Writer) error { return t.db.Save(w) }

// SaveWith serialises the trace with explicit format options — the
// legacy gob format or per-chunk compression.
func (t *Trace) SaveWith(w io.Writer, opts evstore.SaveOptions) error {
	return t.db.SaveWith(w, opts)
}

// maxEventID scans every ID-carrying table without copying rows and
// returns the highest event ID present.
func (t *Trace) maxEventID() EventID {
	var maxID EventID
	bump := func(id EventID) {
		if id > maxID {
			maxID = id
		}
	}
	t.Ecalls.Scan(func(_ int, e CallEvent) bool { bump(e.ID); return true })
	t.Ocalls.Scan(func(_ int, e CallEvent) bool { bump(e.ID); return true })
	t.AEXs.Scan(func(_ int, e AEXEvent) bool { bump(e.ID); return true })
	t.Paging.Scan(func(_ int, e PagingEvent) bool { bump(e.ID); return true })
	t.Syncs.Scan(func(_ int, e SyncEvent) bool { bump(e.ID); return true })
	t.Switchless.Scan(func(_ int, e SwitchlessEvent) bool { bump(e.ID); return true })
	return maxID
}

// Load restores a trace written by Save.
func (t *Trace) Load(r io.Reader) error {
	if err := t.db.Load(r); err != nil {
		return err
	}
	// Continue ID allocation past the loaded events.
	t.nextID.Store(int64(t.maxEventID()))
	return nil
}

// SaveFile writes the trace to path.
func (t *Trace) SaveFile(path string) error { return t.db.SaveFile(path) }

// LoadFile reads a trace from path.
func (t *Trace) LoadFile(path string) error {
	if err := t.db.LoadFile(path); err != nil {
		return err
	}
	t.nextID.Store(int64(t.maxEventID()))
	return nil
}
