package events

import (
	"sort"

	"sgxperf/internal/evstore"
	"sgxperf/internal/sgx"
)

// collect copies a table into one exactly-sized slice via the bulk
// chunk scan — the rewrite buffer for Replace, without the intermediate
// allocations of the row-by-row paths.
func collect[T any](tab *evstore.Table[T]) []T {
	out := make([]T, 0, tab.Len())
	tab.ScanChunks(func(rows []T) bool {
		out = append(out, rows...)
		return true
	})
	return out
}

// Canonicalize rewrites the trace into a deterministic canonical form so
// traces of the same workload can be compared byte-for-byte regardless of
// how threads interleaved while recording. Within one thread, events are
// recorded (and IDs allocated) in a deterministic order; across threads,
// both the global ID counter and shard flush timing depend on scheduling.
// Canonicalize removes that nondeterminism:
//
//  1. every event is assigned a new ID by sorting all events by
//     (thread, original ID) — original IDs are allocation-ordered within
//     a thread, so this order is deterministic for deterministic
//     workloads;
//  2. Parent/During/Call references are rewritten through the same map;
//  3. each table is reordered by new ID (Threads by thread, Enclaves by
//     enclave).
//
// The analyser does not require canonical traces (it orders events
// itself); Canonicalize exists for golden-trace tests and reproducible
// exports.
func (t *Trace) Canonicalize() {
	type key struct {
		thread sgx.ThreadID
		id     EventID
	}
	var keys []key
	t.Ecalls.Scan(func(_ int, e CallEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	t.Ocalls.Scan(func(_ int, e CallEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	t.AEXs.Scan(func(_ int, e AEXEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	t.Paging.Scan(func(_ int, e PagingEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	t.Syncs.Scan(func(_ int, e SyncEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	t.Switchless.Scan(func(_ int, e SwitchlessEvent) bool {
		keys = append(keys, key{e.Thread, e.ID})
		return true
	})
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].thread != keys[j].thread {
			return keys[i].thread < keys[j].thread
		}
		return keys[i].id < keys[j].id
	})
	remap := make(map[EventID]EventID, len(keys))
	for i, k := range keys {
		remap[k.id] = EventID(i + 1)
	}
	ref := func(id EventID) EventID {
		if id == NoEvent {
			return NoEvent
		}
		if n, ok := remap[id]; ok {
			return n
		}
		return id
	}

	calls := func(tab *evstore.Table[CallEvent]) {
		rows := collect(tab)
		for i := range rows {
			rows[i].ID = ref(rows[i].ID)
			rows[i].Parent = ref(rows[i].Parent)
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].ID < rows[j].ID })
		tab.Replace(rows)
	}
	calls(t.Ecalls)
	calls(t.Ocalls)

	aexs := collect(t.AEXs)
	for i := range aexs {
		aexs[i].ID = ref(aexs[i].ID)
		aexs[i].During = ref(aexs[i].During)
	}
	sort.Slice(aexs, func(i, j int) bool { return aexs[i].ID < aexs[j].ID })
	t.AEXs.Replace(aexs)

	paging := collect(t.Paging)
	for i := range paging {
		paging[i].ID = ref(paging[i].ID)
	}
	sort.Slice(paging, func(i, j int) bool { return paging[i].ID < paging[j].ID })
	t.Paging.Replace(paging)

	syncs := collect(t.Syncs)
	for i := range syncs {
		syncs[i].ID = ref(syncs[i].ID)
		syncs[i].Call = ref(syncs[i].Call)
	}
	sort.Slice(syncs, func(i, j int) bool { return syncs[i].ID < syncs[j].ID })
	t.Syncs.Replace(syncs)

	switchless := collect(t.Switchless)
	for i := range switchless {
		switchless[i].ID = ref(switchless[i].ID)
	}
	sort.Slice(switchless, func(i, j int) bool { return switchless[i].ID < switchless[j].ID })
	t.Switchless.Replace(switchless)

	threads := collect(t.Threads)
	sort.Slice(threads, func(i, j int) bool {
		if threads[i].Thread != threads[j].Thread {
			return threads[i].Thread < threads[j].Thread
		}
		return threads[i].Time < threads[j].Time
	})
	t.Threads.Replace(threads)

	enclaves := collect(t.Enclaves)
	sort.Slice(enclaves, func(i, j int) bool { return enclaves[i].Enclave < enclaves[j].Enclave })
	t.Enclaves.Replace(enclaves)

	t.nextID.Store(int64(len(keys)))
}
