package events

import (
	"fmt"

	"sgxperf/internal/evstore"
	"sgxperf/internal/vtime"
)

// StreamTrace is the out-of-core view of a saved trace: the tiny header
// tables (meta, enclaves) are materialised, everything else is read
// chunk-by-chunk through evstore stream cursors. It is the disk-side
// counterpart of Trace for analyses that must not load whole tables —
// a multi-GiB paging-stress trace analyses in O(chunk) memory.
type StreamTrace struct {
	sr       *evstore.StreamReader
	meta     []TraceMeta
	enclaves []EnclaveMeta
}

// OpenStreamTrace opens the trace file at path for streaming access.
// Only binary-format traces (v2 or v3) can stream; gob traces must be
// loaded fully with Trace.LoadFile.
func OpenStreamTrace(path string) (*StreamTrace, error) {
	sr, err := evstore.OpenStream(path)
	if err != nil {
		return nil, err
	}
	st, err := newStreamTrace(sr)
	if err != nil {
		sr.Close()
		return nil, err
	}
	return st, nil
}

// NewStreamTrace wraps an already-open stream reader.
func NewStreamTrace(sr *evstore.StreamReader) (*StreamTrace, error) {
	return newStreamTrace(sr)
}

func newStreamTrace(sr *evstore.StreamReader) (*StreamTrace, error) {
	st := &StreamTrace{sr: sr}
	for _, name := range traceTableOrder {
		if _, ok := sr.Rows(name); !ok {
			return nil, fmt.Errorf("events: stream has no %q table", name)
		}
	}
	// The header tables are a handful of rows; materialise them so
	// Frequency, TransitionCycles and the EDL are as cheap as on a
	// resident trace.
	if err := drainCursor[TraceMeta](st.sr, "meta", nil, &st.meta); err != nil {
		return nil, err
	}
	if err := drainCursor[EnclaveMeta](st.sr, "enclaves", nil, &st.enclaves); err != nil {
		return nil, err
	}
	return st, nil
}

func drainCursor[T any](sr *evstore.StreamReader, name string, codec evstore.RowCodec[T], out *[]T) error {
	cur, err := evstore.NewStreamCursor[T](sr, name, codec)
	if err != nil {
		return err
	}
	for {
		rows, err := cur.Next()
		if err != nil {
			return err
		}
		if rows == nil {
			return nil
		}
		*out = append(*out, rows...)
	}
}

// Close releases the underlying file.
func (st *StreamTrace) Close() error { return st.sr.Close() }

// Meta returns the trace's header rows.
func (st *StreamTrace) Meta() []TraceMeta { return st.meta }

// Enclaves returns the trace's enclave descriptors.
func (st *StreamTrace) Enclaves() []EnclaveMeta { return st.enclaves }

// Frequency mirrors Trace.Frequency.
func (st *StreamTrace) Frequency() vtime.Frequency {
	if len(st.meta) > 0 && st.meta[0].FrequencyHz > 0 {
		return vtime.Frequency(st.meta[0].FrequencyHz)
	}
	return vtime.DefaultFrequency
}

// TransitionCycles mirrors Trace.TransitionCycles.
func (st *StreamTrace) TransitionCycles() vtime.Cycles {
	if len(st.meta) > 0 {
		return vtime.Cycles(st.meta[0].TransitionCycles)
	}
	return 0
}

// Workload returns the recorded workload name, if any.
func (st *StreamTrace) Workload() string {
	if len(st.meta) > 0 {
		return st.meta[0].Workload
	}
	return ""
}

// Rows returns the named table's total row count.
func (st *StreamTrace) Rows(name string) int {
	n, _ := st.sr.Rows(name)
	return n
}

// ContentKey computes the trace's content-addressed identity from the
// file's chunk index alone — the same key Trace.ContentKey computes
// after a full load, without decoding a single event row.
func (st *StreamTrace) ContentKey() string {
	return contentKeyFrom(st.sr.ChunkHashes)
}

// Ecalls opens a fresh cursor over the ecall table.
func (st *StreamTrace) Ecalls() (*evstore.StreamCursor[CallEvent], error) {
	return evstore.NewStreamCursor[CallEvent](st.sr, "ecalls", callCodec{})
}

// Ocalls opens a fresh cursor over the ocall table.
func (st *StreamTrace) Ocalls() (*evstore.StreamCursor[CallEvent], error) {
	return evstore.NewStreamCursor[CallEvent](st.sr, "ocalls", callCodec{})
}

// AEXs opens a fresh cursor over the AEX table.
func (st *StreamTrace) AEXs() (*evstore.StreamCursor[AEXEvent], error) {
	return evstore.NewStreamCursor[AEXEvent](st.sr, "aexs", aexCodec{})
}

// Paging opens a fresh cursor over the paging table.
func (st *StreamTrace) Paging() (*evstore.StreamCursor[PagingEvent], error) {
	return evstore.NewStreamCursor[PagingEvent](st.sr, "paging", pagingCodec{})
}

// Syncs opens a fresh cursor over the sync table.
func (st *StreamTrace) Syncs() (*evstore.StreamCursor[SyncEvent], error) {
	return evstore.NewStreamCursor[SyncEvent](st.sr, "syncs", syncCodec{})
}

// Threads opens a fresh cursor over the thread table.
func (st *StreamTrace) Threads() (*evstore.StreamCursor[ThreadEvent], error) {
	return evstore.NewStreamCursor[ThreadEvent](st.sr, "threads", threadCodec{})
}

// Switchless opens a fresh cursor over the switchless table.
func (st *StreamTrace) Switchless() (*evstore.StreamCursor[SwitchlessEvent], error) {
	return evstore.NewStreamCursor[SwitchlessEvent](st.sr, "switchless", switchlessCodec{})
}
