package events

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
)

// ChunkHashes returns the per-table chunk content hashes, keyed by table
// name. The evstore tables are append-only and every chunk but the last
// is immutable, so after an append only each table's trailing hash can
// differ — the property the serve daemon's artifact cache keys windows
// on.
func (t *Trace) ChunkHashes() map[string][]uint64 {
	return map[string][]uint64{
		"meta":       t.Meta.ChunkHashes(),
		"ecalls":     t.Ecalls.ChunkHashes(),
		"ocalls":     t.Ocalls.ChunkHashes(),
		"aexs":       t.AEXs.ChunkHashes(),
		"paging":     t.Paging.ChunkHashes(),
		"syncs":      t.Syncs.ChunkHashes(),
		"threads":    t.Threads.ChunkHashes(),
		"enclaves":   t.Enclaves.ChunkHashes(),
		"switchless": t.Switchless.ChunkHashes(),
	}
}

// traceTableOrder fixes the fold order of ContentKey: schema
// registration order, so the key is stable across processes.
var traceTableOrder = []string{
	"meta", "ecalls", "ocalls", "aexs", "paging", "syncs", "threads",
	"enclaves", "switchless",
}

// ContentKey condenses every table's chunk hashes into one hex string:
// the content-addressed identity of the trace. Two traces holding equal
// events have equal keys however the events arrived; appending any
// event changes the key. The serve daemon uses it to cache full-report
// artifacts.
func (t *Trace) ContentKey() string {
	hashes := t.ChunkHashes()
	return contentKeyFrom(func(name string) []uint64 { return hashes[name] })
}

// contentKeyFrom is the shared fold behind Trace.ContentKey and
// StreamTrace.ContentKey: both identities must agree so the serve
// daemon and the out-of-core CLI address the same cache entries.
func contentKeyFrom(hashes func(name string) []uint64) string {
	h := fnv.New64a()
	var buf [8]byte
	for _, name := range traceTableOrder {
		h.Write([]byte(name))
		chunks := hashes(name)
		binary.LittleEndian.PutUint64(buf[:], uint64(len(chunks)))
		h.Write(buf[:])
		for _, c := range chunks {
			binary.LittleEndian.PutUint64(buf[:], c)
			h.Write(buf[:])
		}
	}
	return fmt.Sprintf("%016x", h.Sum64())
}
