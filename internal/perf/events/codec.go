package events

// Columnar RowCodecs for the event tables. Each codec writes one chunk
// of rows column-major so that like values sit together: event IDs and
// timestamps are delta-encoded (deltas between consecutive events are
// tiny, so varints collapse to one or two bytes), call and region names
// intern into the chunk's string dictionary, and parent links are stored
// relative to the row's own ID (parents are recent, so the delta is
// small). Meta and Enclaves stay on the gob fallback: they hold a
// handful of rows with free-form text, where columnar encoding buys
// nothing.
//
// Decode runs against untrusted bytes (fuzzed, truncated, bit-flipped
// traces); it relies on the Decoder's sticky error and never panics.

import (
	"sgxperf/internal/evstore"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

type callCodec struct{}

//sgxperf:hotpath
func (c callCodec) Encode(e *evstore.Encoder, rows []CallEvent) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Kind))
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Enclave))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	for i := range rows {
		e.Varint(int64(rows[i].CallID))
	}
	for i := range rows {
		e.String(rows[i].Name)
	}
	prev = 0
	for i := range rows {
		e.Varint(int64(rows[i].Start) - prev)
		prev = int64(rows[i].Start)
	}
	for i := range rows {
		e.Varint(int64(rows[i].End - rows[i].Start))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Parent) - int64(rows[i].ID))
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].AEXCount))
	}
	for i := range rows {
		b := uint64(0)
		if rows[i].Err {
			b = 1
		}
		e.Uvarint(b)
	}
}

//sgxperf:hotpath
func (c callCodec) Decode(d *evstore.Decoder, n int) []CallEvent {
	rows := make([]CallEvent, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = EventID(prev)
	}
	for i := range rows {
		rows[i].Kind = CallKind(d.Uvarint())
	}
	for i := range rows {
		rows[i].Enclave = sgx.EnclaveID(d.Uvarint())
	}
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	for i := range rows {
		rows[i].CallID = int(d.Varint())
	}
	for i := range rows {
		rows[i].Name = d.String()
	}
	prev = 0
	for i := range rows {
		prev += d.Varint()
		rows[i].Start = vtime.Cycles(prev)
	}
	for i := range rows {
		rows[i].End = rows[i].Start + vtime.Cycles(d.Varint())
	}
	for i := range rows {
		rows[i].Parent = rows[i].ID + EventID(d.Varint())
	}
	for i := range rows {
		rows[i].AEXCount = int(d.Uvarint())
	}
	for i := range rows {
		rows[i].Err = d.Uvarint() != 0
	}
	return rows
}

type aexCodec struct{}

//sgxperf:hotpath
func (c aexCodec) Encode(e *evstore.Encoder, rows []AEXEvent) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Enclave))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	prev = 0
	for i := range rows {
		e.Varint(int64(rows[i].Time) - prev)
		prev = int64(rows[i].Time)
	}
	for i := range rows {
		e.Varint(int64(rows[i].During) - int64(rows[i].ID))
	}
}

//sgxperf:hotpath
func (c aexCodec) Decode(d *evstore.Decoder, n int) []AEXEvent {
	rows := make([]AEXEvent, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = EventID(prev)
	}
	for i := range rows {
		rows[i].Enclave = sgx.EnclaveID(d.Uvarint())
	}
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	prev = 0
	for i := range rows {
		prev += d.Varint()
		rows[i].Time = vtime.Cycles(prev)
	}
	for i := range rows {
		rows[i].During = rows[i].ID + EventID(d.Varint())
	}
	return rows
}

type pagingCodec struct{}

//sgxperf:hotpath
func (c pagingCodec) Encode(e *evstore.Encoder, rows []PagingEvent) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Kind))
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Enclave))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	for i := range rows {
		e.Uvarint(rows[i].Vaddr)
	}
	for i := range rows {
		e.String(rows[i].PageKind)
	}
	prev = 0
	for i := range rows {
		e.Varint(int64(rows[i].Time) - prev)
		prev = int64(rows[i].Time)
	}
}

//sgxperf:hotpath
func (c pagingCodec) Decode(d *evstore.Decoder, n int) []PagingEvent {
	rows := make([]PagingEvent, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = EventID(prev)
	}
	for i := range rows {
		rows[i].Kind = PagingKind(d.Uvarint())
	}
	for i := range rows {
		rows[i].Enclave = sgx.EnclaveID(d.Uvarint())
	}
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	for i := range rows {
		rows[i].Vaddr = d.Uvarint()
	}
	for i := range rows {
		rows[i].PageKind = d.String()
	}
	prev = 0
	for i := range rows {
		prev += d.Varint()
		rows[i].Time = vtime.Cycles(prev)
	}
	return rows
}

type syncCodec struct{}

//sgxperf:hotpath
func (c syncCodec) Encode(e *evstore.Encoder, rows []SyncEvent) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Kind))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	prev = 0
	for i := range rows {
		e.Varint(int64(rows[i].Time) - prev)
		prev = int64(rows[i].Time)
	}
	for i := range rows {
		e.Varint(int64(rows[i].Call) - int64(rows[i].ID))
	}
	// Targets: a length column, then every target flattened. Almost all
	// rows are sleeps with no targets, so this column is mostly zeros.
	for i := range rows {
		e.Uvarint(uint64(len(rows[i].Targets)))
	}
	for i := range rows {
		for _, t := range rows[i].Targets {
			e.Varint(int64(t))
		}
	}
}

//sgxperf:hotpath
func (c syncCodec) Decode(d *evstore.Decoder, n int) []SyncEvent {
	rows := make([]SyncEvent, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = EventID(prev)
	}
	for i := range rows {
		rows[i].Kind = SyncKind(d.Uvarint())
	}
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	prev = 0
	for i := range rows {
		prev += d.Varint()
		rows[i].Time = vtime.Cycles(prev)
	}
	for i := range rows {
		rows[i].Call = rows[i].ID + EventID(d.Varint())
	}
	lens := make([]int, n)
	for i := range rows {
		lens[i] = d.Length()
	}
	for i := range rows {
		if lens[i] == 0 {
			continue // keep nil, matching the encoded representation
		}
		ts := make([]sgx.ThreadID, lens[i])
		for j := range ts {
			ts[j] = sgx.ThreadID(d.Varint())
		}
		rows[i].Targets = ts
	}
	return rows
}

type switchlessCodec struct{}

//sgxperf:hotpath
func (c switchlessCodec) Encode(e *evstore.Encoder, rows []SwitchlessEvent) {
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].ID) - prev)
		prev = int64(rows[i].ID)
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Kind))
	}
	for i := range rows {
		e.Uvarint(uint64(rows[i].Enclave))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	for i := range rows {
		e.Varint(int64(rows[i].CallID))
	}
	for i := range rows {
		e.String(rows[i].Name)
	}
	prev = 0
	for i := range rows {
		e.Varint(int64(rows[i].Start) - prev)
		prev = int64(rows[i].Start)
	}
	for i := range rows {
		e.Varint(int64(rows[i].End - rows[i].Start))
	}
	for i := range rows {
		e.Varint(int64(rows[i].Worker))
	}
	for i := range rows {
		b := uint64(0)
		if rows[i].Fallback {
			b = 1
		}
		e.Uvarint(b)
	}
	for i := range rows {
		b := uint64(0)
		if rows[i].Err {
			b = 1
		}
		e.Uvarint(b)
	}
}

//sgxperf:hotpath
func (c switchlessCodec) Decode(d *evstore.Decoder, n int) []SwitchlessEvent {
	rows := make([]SwitchlessEvent, n)
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].ID = EventID(prev)
	}
	for i := range rows {
		rows[i].Kind = CallKind(d.Uvarint())
	}
	for i := range rows {
		rows[i].Enclave = sgx.EnclaveID(d.Uvarint())
	}
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	for i := range rows {
		rows[i].CallID = int(d.Varint())
	}
	for i := range rows {
		rows[i].Name = d.String()
	}
	prev = 0
	for i := range rows {
		prev += d.Varint()
		rows[i].Start = vtime.Cycles(prev)
	}
	for i := range rows {
		rows[i].End = rows[i].Start + vtime.Cycles(d.Varint())
	}
	for i := range rows {
		rows[i].Worker = sgx.ThreadID(d.Varint())
	}
	for i := range rows {
		rows[i].Fallback = d.Uvarint() != 0
	}
	for i := range rows {
		rows[i].Err = d.Uvarint() != 0
	}
	return rows
}

type threadCodec struct{}

//sgxperf:hotpath
func (c threadCodec) Encode(e *evstore.Encoder, rows []ThreadEvent) {
	for i := range rows {
		e.Varint(int64(rows[i].Thread))
	}
	for i := range rows {
		e.String(rows[i].Name)
	}
	prev := int64(0)
	for i := range rows {
		e.Varint(int64(rows[i].Time) - prev)
		prev = int64(rows[i].Time)
	}
}

//sgxperf:hotpath
func (c threadCodec) Decode(d *evstore.Decoder, n int) []ThreadEvent {
	rows := make([]ThreadEvent, n)
	for i := range rows {
		rows[i].Thread = sgx.ThreadID(d.Varint())
	}
	for i := range rows {
		rows[i].Name = d.String()
	}
	prev := int64(0)
	for i := range rows {
		prev += d.Varint()
		rows[i].Time = vtime.Cycles(prev)
	}
	return rows
}
