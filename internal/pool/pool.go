// Package pool is the repository's shared bounded worker pool: one
// GOMAXPROCS-sized concurrency budget for every CPU-bound fan-out — the
// parallel analyser kernels, the evstore codec's chunk encode/decode, the
// live snapshot's per-name statistics and the static-lint hybrid
// re-ranking all draw from it. Sharing one budget keeps the process from
// oversubscribing the machine when several subsystems fan out at once
// (a Session analysing while a trace is being saved, say).
//
// The pool is deliberately tiny: no long-lived workers, no queues to
// drain on shutdown, no wall-clock timeouts (the simulator packages run
// on virtual time and this package is covered by the vclock lint). A
// global semaphore bounds how many pool goroutines exist at any moment;
// when the budget is spent, work runs inline on the calling goroutine.
// That inline fallback is what makes the pool safe to nest — a task
// running on the pool may itself call Do or ForEach without any risk of
// deadlock, it just degrades towards serial execution.
package pool

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// sem is the global concurrency budget. Its capacity is fixed at init to
// GOMAXPROCS: the pool exists to use the hardware, not to multiplex I/O.
var sem = make(chan struct{}, runtime.GOMAXPROCS(0))

// Size returns the pool's concurrency budget (the GOMAXPROCS value the
// process started with). Callers use it to pick shard counts; sharding
// wider than Size only adds merge work.
func Size() int { return cap(sem) }

// Do runs every task and returns when all have finished. Up to Size
// tasks run on pool goroutines; the rest run inline on the caller's
// goroutine as the budget allows. Tasks must synchronise among
// themselves if they share state; Do only guarantees completion
// (happens-before Do returning).
func Do(tasks ...func()) {
	if len(tasks) == 0 {
		return
	}
	if len(tasks) == 1 {
		tasks[0]()
		return
	}
	var wg sync.WaitGroup
	for _, task := range tasks {
		select {
		case sem <- struct{}{}:
			wg.Add(1)
			go func(f func()) {
				defer wg.Done()
				defer func() { <-sem }()
				f()
			}(task)
		default:
			// Budget spent: run on the calling goroutine. This also
			// makes nested Do calls deadlock-free by construction.
			task()
		}
	}
	wg.Wait()
}

// ForEach runs fn(i) for every i in [0, n), distributing indexes over at
// most Size workers via an atomic counter, so uneven per-index costs
// balance automatically. It returns when every index has been processed.
// fn must not panic; like Do, cross-index synchronisation is the
// caller's business.
func ForEach(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	workers := Size()
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	drain := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			fn(i)
		}
	}
	tasks := make([]func(), workers)
	for w := range tasks {
		tasks[w] = drain
	}
	Do(tasks...)
}

// ForEachCtx is ForEach with cooperative cancellation: workers stop
// claiming new indexes once ctx is done and the call returns ctx.Err().
// An index that has started always runs to completion — cancellation is
// observed between indexes, never mid-task — so on a nil return every
// index was processed exactly once, and on a non-nil return no index is
// left half-done. The scheduling (atomic-counter work stealing over at
// most Size workers, inline fallback) is identical to ForEach, and an
// uncancelled ForEachCtx produces exactly ForEach's effects.
func ForEachCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers := Size()
	if workers > n {
		workers = n
	}
	var next atomic.Int64
	drain := func() {
		for ctx.Err() == nil {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			fn(i)
		}
	}
	if workers <= 1 {
		drain()
		return ctx.Err()
	}
	tasks := make([]func(), workers)
	for w := range tasks {
		tasks[w] = drain
	}
	Do(tasks...)
	return ctx.Err()
}
