package pool

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// TestForEachCtxUncancelled proves an uncancelled ForEachCtx behaves
// exactly like ForEach: every index processed exactly once, nil error.
func TestForEachCtxUncancelled(t *testing.T) {
	const n = 10_000
	seen := make([]atomic.Int32, n)
	if err := ForEachCtx(context.Background(), n, func(i int) {
		seen[i].Add(1)
	}); err != nil {
		t.Fatalf("ForEachCtx = %v", err)
	}
	for i := range seen {
		if got := seen[i].Load(); got != 1 {
			t.Fatalf("index %d processed %d times", i, got)
		}
	}
}

// TestForEachCtxPreCancelled proves a done context runs no work.
func TestForEachCtxPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	err := ForEachCtx(ctx, 1000, func(int) { ran.Add(1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatalf("%d indexes ran under a pre-cancelled context", ran.Load())
	}
}

// TestForEachCtxMidRunCancel cancels from inside the first processed
// index: workers must stop claiming new indexes, so only a small
// prefix of the range runs (at most one in-flight index per worker).
func TestForEachCtxMidRunCancel(t *testing.T) {
	const n = 1 << 20
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEachCtx(ctx, n, func(int) {
		ran.Add(1)
		cancel()
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Every worker observes the cancellation before its next claim, so
	// at most Size indexes (the in-flight ones) completed.
	if got := ran.Load(); got > int64(Size()) {
		t.Fatalf("%d indexes ran after cancellation (pool size %d)", got, Size())
	}
}

// TestForEachCtxZero covers the n<=0 fast path.
func TestForEachCtxZero(t *testing.T) {
	if err := ForEachCtx(context.Background(), 0, func(int) {
		t.Error("fn called for empty range")
	}); err != nil {
		t.Fatalf("ForEachCtx(0) = %v", err)
	}
}
