package pool

import (
	"sync/atomic"
	"testing"
)

func TestDoRunsEveryTask(t *testing.T) {
	var ran [64]atomic.Bool
	tasks := make([]func(), len(ran))
	for i := range tasks {
		i := i
		tasks[i] = func() { ran[i].Store(true) }
	}
	Do(tasks...)
	for i := range ran {
		if !ran[i].Load() {
			t.Fatalf("task %d did not run", i)
		}
	}
}

func TestDoEmptyAndSingle(t *testing.T) {
	Do() // no-op
	n := 0
	Do(func() { n++ })
	if n != 1 {
		t.Fatalf("single task ran %d times", n)
	}
}

func TestForEachCoversEveryIndexOnce(t *testing.T) {
	const n = 1000
	var hits [n]atomic.Int32
	ForEach(n, func(i int) { hits[i].Add(1) })
	for i := range hits {
		if got := hits[i].Load(); got != 1 {
			t.Fatalf("index %d processed %d times", i, got)
		}
	}
}

func TestForEachZeroAndNegative(t *testing.T) {
	called := false
	ForEach(0, func(int) { called = true })
	ForEach(-3, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

// TestNestedDoDoesNotDeadlock exercises the inline fallback: tasks on
// the pool fan out again, recursively, deeper than the budget.
func TestNestedDoDoesNotDeadlock(t *testing.T) {
	var total atomic.Int64
	var fan func(depth int)
	fan = func(depth int) {
		total.Add(1)
		if depth == 0 {
			return
		}
		Do(
			func() { fan(depth - 1) },
			func() { fan(depth - 1) },
		)
	}
	fan(6)
	if got := total.Load(); got != 127 {
		t.Fatalf("expected 127 node visits, got %d", got)
	}
}

func TestNestedForEachInsideDo(t *testing.T) {
	var total atomic.Int64
	Do(
		func() { ForEach(100, func(int) { total.Add(1) }) },
		func() { ForEach(100, func(int) { total.Add(1) }) },
	)
	if got := total.Load(); got != 200 {
		t.Fatalf("expected 200 iterations, got %d", got)
	}
}

func TestSizePositive(t *testing.T) {
	if Size() < 1 {
		t.Fatalf("Size() = %d, want >= 1", Size())
	}
}
