package experiments

import (
	"fmt"
	"strings"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
)

// Table2 reproduces the logger-overhead experiments of §5.1: (1) a single
// no-op ecall, (2) an ecall performing one no-op ocall, each measured
// natively and with the logger attached; and (3) a long-running ecall
// measured with logging, AEX counting and AEX tracing.
type Table2 struct {
	// Experiment (1): per-call times.
	NativeEcall time.Duration
	LoggedEcall time.Duration
	// Experiment (2).
	NativeEcallOcall time.Duration
	LoggedEcallOcall time.Duration
	// Experiment (3): long-ecall execution times and AEX statistics.
	LongLogged   time.Duration
	LongAEXCount time.Duration
	LongAEXTrace time.Duration
	MeanAEXs     float64
	// Derived overheads.
	EcallOverhead   time.Duration
	OcallOverhead   time.Duration
	PerAEXCount     time.Duration
	PerAEXTrace     time.Duration
	PaperEcallOhNS  int64
	PaperOcallOhNS  int64
	PaperAEXCountNS int64
	PaperAEXTraceNS int64
}

// Table2Options sizes the experiment.
type Table2Options struct {
	// Calls is the iteration count for experiments (1) and (2) (paper:
	// 1e6; the simulation is deterministic, so fewer suffice).
	Calls int
	// LongCalls is the iteration count for experiment (3) (paper: 1000).
	LongCalls int
	// LongDuration is the long ecall's loop time (paper: ≈45.4ms).
	LongDuration time.Duration
}

func (o *Table2Options) defaults() {
	if o.Calls <= 0 {
		o.Calls = 2000
	}
	if o.LongCalls <= 0 {
		o.LongCalls = 20
	}
	if o.LongDuration <= 0 {
		o.LongDuration = 45377 * time.Microsecond
	}
}

// RunTable2 executes all three experiments.
func RunTable2(opts Table2Options) (*Table2, error) {
	opts.defaults()
	out := &Table2{
		PaperEcallOhNS:  1366,
		PaperOcallOhNS:  1320,
		PaperAEXCountNS: 1076,
		PaperAEXTraceNS: 1118,
	}

	// Native cells.
	h, err := host.New()
	if err != nil {
		return nil, err
	}
	be, err := newBenchEnclave(h)
	if err != nil {
		return nil, err
	}
	if out.NativeEcall, err = be.timePerCall("ecall_empty", nil, opts.Calls); err != nil {
		return nil, err
	}
	if out.NativeEcallOcall, err = be.timePerCall("ecall_with_ocall", nil, opts.Calls); err != nil {
		return nil, err
	}

	// Logged cells (fresh host so probe state is clean).
	runLogged := func(aex logger.AEXMode) (ec, eco, long time.Duration, aexs float64, err error) {
		h, err := host.New()
		if err != nil {
			return 0, 0, 0, 0, err
		}
		l, err := logger.Attach(h, logger.Options{Workload: "table2", AEX: aex})
		if err != nil {
			return 0, 0, 0, 0, err
		}
		be, err := newBenchEnclave(h)
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if ec, err = be.timePerCall("ecall_empty", nil, opts.Calls); err != nil {
			return 0, 0, 0, 0, err
		}
		if eco, err = be.timePerCall("ecall_with_ocall", nil, opts.Calls); err != nil {
			return 0, 0, 0, 0, err
		}
		if long, err = be.timePerCall("ecall_loop", opts.LongDuration, opts.LongCalls); err != nil {
			return 0, 0, 0, 0, err
		}
		total := 0
		n := 0
		l.Trace().Ecalls.Scan(func(_ int, e events.CallEvent) bool {
			if e.Name == "ecall_loop" {
				total += e.AEXCount
				n++
			}
			return true
		})
		if n > 0 {
			aexs = float64(total) / float64(n)
		}
		return ec, eco, long, aexs, nil
	}

	var err2 error
	if out.LoggedEcall, out.LoggedEcallOcall, out.LongLogged, _, err2 = runLogged(logger.AEXOff); err2 != nil {
		return nil, err2
	}
	var meanCount float64
	if _, _, out.LongAEXCount, meanCount, err2 = runLogged(logger.AEXCount); err2 != nil {
		return nil, err2
	}
	if _, _, out.LongAEXTrace, out.MeanAEXs, err2 = runLogged(logger.AEXTrace); err2 != nil {
		return nil, err2
	}
	if out.MeanAEXs == 0 {
		out.MeanAEXs = meanCount
	}

	out.EcallOverhead = out.LoggedEcall - out.NativeEcall
	out.OcallOverhead = out.LoggedEcallOcall - out.NativeEcallOcall - out.EcallOverhead
	if out.MeanAEXs > 0 {
		out.PerAEXCount = time.Duration(float64(out.LongAEXCount-out.LongLogged) / out.MeanAEXs)
		out.PerAEXTrace = time.Duration(float64(out.LongAEXTrace-out.LongLogged) / out.MeanAEXs)
	}
	return out, nil
}

// Render formats the table like Table 2.
func (t *Table2) Render() string {
	var b strings.Builder
	b.WriteString("== Table 2: logger overhead ==\n")
	fmt.Fprintf(&b, "%-22s %14s %16s\n", "", "(1) single ecall", "(2) ecall+ocall")
	fmt.Fprintf(&b, "%-22s %16s %16s\n", "Native", t.NativeEcall, t.NativeEcallOcall)
	fmt.Fprintf(&b, "%-22s %16s %16s\n", "with Logging", t.LoggedEcall, t.LoggedEcallOcall)
	fmt.Fprintf(&b, "%-22s %16s %16s   (paper: %dns / %dns)\n", "Overhead",
		t.EcallOverhead, t.OcallOverhead, t.PaperEcallOhNS, t.PaperOcallOhNS)
	b.WriteString("\n(3) long ecall\n")
	fmt.Fprintf(&b, "%-22s %16s\n", "with Logging", t.LongLogged)
	fmt.Fprintf(&b, "%-22s %16s\n", "AEX counting", t.LongAEXCount)
	fmt.Fprintf(&b, "%-22s %16s\n", "AEX tracing", t.LongAEXTrace)
	fmt.Fprintf(&b, "%-22s %16.2f\n", "mean AEX count", t.MeanAEXs)
	fmt.Fprintf(&b, "%-22s %16s   (paper: %dns)\n", "per-AEX (count)", t.PerAEXCount, t.PaperAEXCountNS)
	fmt.Fprintf(&b, "%-22s %16s   (paper: %dns)\n", "per-AEX (trace)", t.PerAEXTrace, t.PaperAEXTraceNS)
	return b.String()
}
