// Package experiments regenerates every table and figure of the paper's
// evaluation (§5) on the simulated substrate: the transition-cost
// microbenchmark (§2.3.1), the logger-overhead table (Table 2), the
// TaLoS call graph (Fig. 5), the normalised SQLite and LibreSSL bars
// (Fig. 6), the SecureKeeper histogram and scatter plot (Figs. 7–8), the
// working-set estimations, and two ablations (hybrid locking and paging
// mitigation strategies). Each experiment returns a structured result
// with a Render method; cmd/sgx-perf-bench and the top-level benchmarks
// drive them.
package experiments

import (
	"fmt"
	"strings"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// TransitionRow is one §2.3.1 measurement.
type TransitionRow struct {
	Mitigation string
	// Measured is the simulated warm-cache EENTER+EEXIT round trip,
	// obtained by timing raw transitions (no URTS/TRTS dispatch).
	Measured time.Duration
	// PaperNS is the paper's reported value in nanoseconds.
	PaperNS int64
	// PaperCycles is the paper's reported cycle count.
	PaperCycles int64
}

// Transitions measures raw enclave transition round trips under all three
// mitigation levels, like §2.3.1 (the paper measured between EENTER and
// EEXIT directly, excluding SDK dispatch).
func Transitions() ([]TransitionRow, error) {
	paper := map[sgx.MitigationLevel]struct{ ns, cycles int64 }{
		sgx.MitigationNone:    {2130, 5850},
		sgx.MitigationSpectre: {3850, 10170},
		sgx.MitigationFull:    {4890, 13100},
	}
	var rows []TransitionRow
	for _, m := range []sgx.MitigationLevel{sgx.MitigationNone, sgx.MitigationSpectre, sgx.MitigationFull} {
		h, err := host.New(host.WithMitigation(m))
		if err != nil {
			return nil, err
		}
		ctx := h.NewContext("bench")
		enc, err := h.Kernel.Driver.CreateEnclave(ctx, sgx.Config{Name: "transitions"})
		if err != nil {
			return nil, err
		}
		// Warm up (the TCS page faults in on first entry).
		if err := ctx.EEnter(enc); err != nil {
			return nil, err
		}
		if err := ctx.EExit(); err != nil {
			return nil, err
		}
		const n = 1000
		start := ctx.Now()
		for i := 0; i < n; i++ {
			if err := ctx.EEnter(enc); err != nil {
				return nil, err
			}
			if err := ctx.EExit(); err != nil {
				return nil, err
			}
		}
		per := ctx.Clock().DurationSince(start) / n
		rows = append(rows, TransitionRow{
			Mitigation:  m.String(),
			Measured:    per,
			PaperNS:     paper[m].ns,
			PaperCycles: paper[m].cycles,
		})
	}
	return rows, nil
}

// RenderTransitions formats the §2.3.1 comparison.
func RenderTransitions(rows []TransitionRow) string {
	var b strings.Builder
	b.WriteString("== §2.3.1 enclave transition round trips (warm cache) ==\n")
	fmt.Fprintf(&b, "%-14s %12s %12s %14s\n", "mitigation", "measured", "paper (ns)", "paper (cycles)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %12s %12d %14d\n", r.Mitigation, r.Measured, r.PaperNS, r.PaperCycles)
	}
	return b.String()
}

// benchEnclave is the shared micro-benchmark enclave: a no-op ecall, an
// ecall issuing one no-op ocall, and a looping ecall.
type benchEnclave struct {
	h       *host.Host
	ctx     *sgx.Context
	proxies map[string]sdk.Proxy
}

func newBenchEnclave(h *host.Host) (*benchEnclave, error) {
	iface := edl.NewInterface()
	for _, n := range []string{"ecall_empty", "ecall_with_ocall", "ecall_loop"} {
		if _, err := iface.AddEcall(n, true); err != nil {
			return nil, err
		}
	}
	if _, err := iface.AddOcall("ocall_empty", nil); err != nil {
		return nil, err
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_empty": func(env *sdk.Env, args any) (any, error) { return nil, nil },
		"ecall_with_ocall": func(env *sdk.Env, args any) (any, error) {
			return env.Ocall("ocall_empty", nil)
		},
		"ecall_loop": func(env *sdk.Env, args any) (any, error) {
			d, _ := args.(time.Duration)
			env.Compute(d)
			return nil, nil
		},
	}
	ctx := h.NewContext("bench")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "micro"}, iface, impl)
	if err != nil {
		return nil, err
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, map[string]sdk.OcallFn{
		"ocall_empty": func(ctx *sgx.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		return nil, err
	}
	return &benchEnclave{h: h, ctx: ctx, proxies: sdk.Proxies(app, h.Proc, otab)}, nil
}

// timePerCall measures the mean per-call virtual duration of n calls.
func (b *benchEnclave) timePerCall(name string, args any, n int) (time.Duration, error) {
	// Warm-up, as the paper does.
	if _, err := b.proxies[name](b.ctx, args); err != nil {
		return 0, err
	}
	start := b.ctx.Now()
	for i := 0; i < n; i++ {
		if _, err := b.proxies[name](b.ctx, args); err != nil {
			return 0, err
		}
	}
	return b.ctx.Clock().DurationSince(start) / time.Duration(n), nil
}
