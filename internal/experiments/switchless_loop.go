package experiments

// The closed lint→config→re-measure loop for switchless calls: run a
// transition-bound workload over the regular paths, let the static
// analyser diagnose it (the Transition-Bound Calls finding, re-ranked by
// the recorded trace), apply the machine-readable switchless
// configuration the analyser emits, and re-run the identical workload —
// asserting the speedup the finding promised, that the results are
// unchanged, and that the self-tuning scheduler converged.

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"sgxperf"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/sdk"
)

// switchlessLoopEDL is the transition-bound interface: a tiny public
// ecall issuing a tiny ocall — both dominated by the boundary crossing,
// both switchless candidates (≤1 parameter, no user_check, no allow).
const switchlessLoopEDL = `
enclave {
	trusted {
		public ecall_work();
	};
	untrusted {
		ocall_note();
	};
};
`

// SwitchlessLoopResult is the machine-readable outcome of the loop,
// merged into BENCH_results.json under "switchless".
type SwitchlessLoopResult struct {
	Workload string `json:"workload"`
	Callers  int    `json:"callers"`
	// Ops is the per-caller call count; both phases run Callers×Ops calls.
	Ops int `json:"ops_per_caller"`

	// LintFoundTransitionBound records that the static pass diagnosed the
	// problem before the optimisation was applied (the loop's premise).
	LintFoundTransitionBound bool `json:"lint_found_transition_bound"`
	// ConfigSource proves the applied configuration's provenance.
	ConfigSource string               `json:"config_source"`
	Config       sdk.SwitchlessConfig `json:"config"`

	// Throughputs are calls per second of virtual time (slowest caller).
	BaselineOpsPerSec   float64 `json:"baseline_ops_per_sec"`
	SwitchlessOpsPerSec float64 `json:"switchless_ops_per_sec"`
	Speedup             float64 `json:"speedup"`

	// Checksums must match: the optimisation may not change results.
	BaselineChecksum   uint64 `json:"baseline_checksum"`
	SwitchlessChecksum uint64 `json:"switchless_checksum"`

	// Queue statistics and the scheduler's trajectory.
	Served      uint64                   `json:"served"`
	Fallbacks   uint64                   `json:"fallbacks"`
	Decisions   []sdk.EpochDecision      `json:"decisions"`
	FinalEcallW int                      `json:"final_ecall_workers"`
	FinalOcallW int                      `json:"final_ocall_workers"`
	Converged   bool                     `json:"converged"`
	TraceSwless analyzer.SwitchlessStats `json:"trace_switchless"`
}

// convergenceWindow is how many trailing epochs per pool must agree on
// the worker count for the run to count as converged.
const convergenceWindow = 3

// RunSwitchlessLoop executes the full loop. callers and ops default to
// 8 and 400.
func RunSwitchlessLoop(callers, ops int) (*SwitchlessLoopResult, error) {
	if callers <= 0 {
		callers = 8
	}
	if ops <= 0 {
		ops = 400
	}
	res := &SwitchlessLoopResult{Workload: "switchless-loop", Callers: callers, Ops: ops}

	// Phase 1: baseline over the regular transition paths.
	base, err := runSwitchlessPhase(callers, ops, nil)
	if err != nil {
		return nil, fmt.Errorf("baseline: %w", err)
	}
	res.BaselineOpsPerSec = base.opsPerSec
	res.BaselineChecksum = base.checksum

	// Phase 2: the analyser diagnoses the baseline — static findings
	// re-ranked by the recorded trace — and emits the configuration.
	lint, err := base.session.LintHybrid(sgxperf.LintOptions{})
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	for _, f := range lint.Findings {
		if f.Problem == analyzer.ProblemTransitionBound {
			res.LintFoundTransitionBound = true
			break
		}
	}
	cfg := sgxperf.SwitchlessConfigFrom(base.session.Interface, sgxperf.LintOptions{})
	base.session.Close()
	if cfg == nil {
		return nil, fmt.Errorf("lint emitted no switchless configuration for a transition-bound interface")
	}
	res.ConfigSource = cfg.Source

	// The configuration round-trips through its JSON form, exactly as the
	// sgx-perf-lint → application hand-off would.
	b, err := cfg.JSON()
	if err != nil {
		return nil, err
	}
	cfg, err = sgxperf.ParseSwitchlessConfig(b)
	if err != nil {
		return nil, err
	}

	// Phase 3: the identical workload with the configuration applied.
	opt, err := runSwitchlessPhase(callers, ops, cfg)
	if err != nil {
		return nil, fmt.Errorf("switchless: %w", err)
	}
	res.SwitchlessOpsPerSec = opt.opsPerSec
	res.SwitchlessChecksum = opt.checksum
	if res.BaselineOpsPerSec > 0 {
		res.Speedup = res.SwitchlessOpsPerSec / res.BaselineOpsPerSec
	}
	res.Config = opt.enclave.Switchless.Config()
	res.Served, res.Fallbacks = opt.enclave.Switchless.Stats()
	res.Decisions = opt.enclave.Switchless.Decisions()
	res.FinalEcallW, res.FinalOcallW = opt.enclave.Switchless.Workers()
	res.Converged = converged(res.Decisions)

	// The blind-spot fix: the recorded trace must show the switchless
	// activity even though the served calls bypassed every probe.
	rep, err := opt.session.Analyze()
	if err != nil {
		return nil, err
	}
	res.TraceSwless = rep.Switchless
	opt.enclave.Stop()
	opt.session.Close()
	return res, nil
}

// phaseResult is one run of the workload.
type phaseResult struct {
	session   *sgxperf.Session
	enclave   *sgxperf.SessionEnclave
	opsPerSec float64
	checksum  uint64
}

// runSwitchlessPhase runs callers threads, each issuing ops ecall_work
// calls; each ecall folds its argument into an in-enclave accumulator,
// issues one ocall, and returns a derived value the caller folds into
// the phase checksum. The checksum is a sum, so it is independent of
// thread interleaving — identical across baseline and switchless runs.
func runSwitchlessPhase(callers, ops int, cfg *sgxperf.SwitchlessConfig) (*phaseResult, error) {
	var inEnclave, noted atomic.Uint64
	opts := []sgxperf.SessionOption{
		sgxperf.WithEDL(switchlessLoopEDL),
		sgxperf.WithOcallImpls(map[string]sgxperf.OcallFn{
			"ocall_note": func(ctx *sgxperf.Context, args any) (any, error) {
				noted.Add(1)
				return nil, nil
			},
		}),
		sgxperf.WithLogger(sgxperf.WithWorkload("switchless-loop")),
	}
	if cfg != nil {
		opts = append(opts, sgxperf.WithSwitchless(cfg))
	}
	s, err := sgxperf.NewSession(opts...)
	if err != nil {
		return nil, err
	}
	trusted := map[string]sgxperf.TrustedFn{
		"ecall_work": func(env *sgxperf.Env, args any) (any, error) {
			v, _ := args.(uint64)
			inEnclave.Add(v)
			env.Compute(200 * time.Nanosecond)
			if _, err := env.Ocall("ocall_note", nil); err != nil {
				return nil, err
			}
			return v*2 + 1, nil
		},
	}
	ctx := s.NewContext("main")
	// TCS budget: every caller may transition concurrently (fallbacks and
	// the baseline), plus up to MaxWorkers parked trusted workers.
	maxW := 8
	if cfg != nil && cfg.MaxWorkers > maxW {
		maxW = cfg.MaxWorkers
	}
	enc, err := s.Enclave(ctx, sgxperf.EnclaveConfig{Name: "switchless-loop", NumTCS: callers + maxW + 1}, trusted)
	if err != nil {
		return nil, err
	}

	sums := make(chan uint64, callers)
	clocks := make(chan time.Duration, callers)
	errs := make(chan error, callers)
	for t := 0; t < callers; t++ {
		seed := uint64(t + 1)
		if err := s.Host.Spawn("caller", func(cctx *sgxperf.Context) {
			var sum uint64
			for i := 0; i < ops; i++ {
				r, err := enc.Call(cctx, "ecall_work", seed+uint64(i))
				if err != nil {
					errs <- err
					return
				}
				sum += r.(uint64)
			}
			sums <- sum
			clocks <- cctx.Clock().Frequency().Duration(cctx.Now())
		}); err != nil {
			return nil, err
		}
	}
	s.Host.Wait()
	close(sums)
	close(clocks)
	select {
	case err := <-errs:
		return nil, err
	default:
	}
	var checksum uint64
	for v := range sums {
		checksum += v
	}
	// Order-independent evidence from both sides of the boundary.
	checksum += inEnclave.Load()*3 + noted.Load()*7
	var wall time.Duration
	for c := range clocks {
		if c > wall {
			wall = c
		}
	}
	out := &phaseResult{session: s, enclave: enc, checksum: checksum}
	if wall > 0 {
		out.opsPerSec = float64(callers*ops) / wall.Seconds()
	}
	return out, nil
}

// converged reports whether each pool's trailing convergenceWindow
// decisions agree on the worker count — the scheduler stopped moving.
func converged(decisions []sdk.EpochDecision) bool {
	byPool := make(map[string][]sdk.EpochDecision)
	for _, d := range decisions {
		byPool[d.Pool] = append(byPool[d.Pool], d)
	}
	if len(byPool) == 0 {
		return false
	}
	for _, ds := range byPool {
		if len(ds) < convergenceWindow {
			return false
		}
		tail := ds[len(ds)-convergenceWindow:]
		for _, d := range tail[1:] {
			if d.Workers != tail[0].Workers {
				return false
			}
		}
	}
	return true
}

// RenderSwitchlessLoop formats the loop's outcome.
func RenderSwitchlessLoop(r *SwitchlessLoopResult) string {
	var b strings.Builder
	b.WriteString("== Closed loop: lint → switchless config → re-measure ==\n")
	fmt.Fprintf(&b, "workload: %d callers × %d transition-bound calls\n", r.Callers, r.Ops)
	fmt.Fprintf(&b, "lint found transition-bound calls: %v (config source: %s)\n",
		r.LintFoundTransitionBound, r.ConfigSource)
	fmt.Fprintf(&b, "routed: ecalls %v, ocalls %v\n", r.Config.Ecalls, r.Config.Ocalls)
	fmt.Fprintf(&b, "%-12s %16s %12s\n", "phase", "ops/s (virtual)", "checksum")
	fmt.Fprintf(&b, "%-12s %16.0f %12d\n", "baseline", r.BaselineOpsPerSec, r.BaselineChecksum)
	fmt.Fprintf(&b, "%-12s %16.0f %12d\n", "switchless", r.SwitchlessOpsPerSec, r.SwitchlessChecksum)
	fmt.Fprintf(&b, "speedup: %.2fx   served: %d   fallbacks: %d\n", r.Speedup, r.Served, r.Fallbacks)
	fmt.Fprintf(&b, "scheduler: %d decisions, final workers ecall=%d ocall=%d, converged=%v\n",
		len(r.Decisions), r.FinalEcallW, r.FinalOcallW, r.Converged)
	for _, d := range r.Decisions {
		fmt.Fprintf(&b, "    epoch %3d %-6s %-6s -> %d workers (callers %d, served %d, fallbacks %d, predicted wait %v, measured %v)\n",
			d.Epoch, d.Pool, d.Action, d.Workers, d.Callers, d.Served, d.Fallbacks, d.PredictedWait, d.AvgWait)
	}
	fmt.Fprintf(&b, "trace shows %d served / %d fallback switchless events\n",
		r.TraceSwless.Served, r.TraceSwless.Fallbacks)
	return b.String()
}
