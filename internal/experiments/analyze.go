package experiments

// The analysis-throughput experiment: how fast the post-processing
// pipeline (§4.2) chews through a recorded trace, serial versus
// parallel, and how fast traces move through the two on-disk formats
// (legacy gob versus the chunked columnar codec). Unlike the paper's
// virtual-time figures these are wall-clock numbers for the tool itself
// — the sgx-perf analogue of "how long until the report is on screen".

import (
	"bytes"
	"fmt"
	"reflect"
	"runtime"
	"sort"
	"strings"
	"time"

	"sgxperf/internal/evstore"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// AnalyzeRow is one analysis-pipeline measurement.
type AnalyzeRow struct {
	Mode         string        `json:"mode"` // "serial" or "parallel"
	Events       int           `json:"events"`
	Wall         time.Duration `json:"wall_ns"`
	EventsPerSec float64       `json:"events_per_sec"`
}

// CodecRow is one serialisation measurement.
type CodecRow struct {
	Op       string        `json:"op"`     // "save" or "load"
	Format   string        `json:"format"` // "gob" or "binary"
	Bytes    int           `json:"bytes"`
	Wall     time.Duration `json:"wall_ns"`
	MBPerSec float64       `json:"mb_per_sec"`
}

// AnalyzeResult is the machine-readable output of the experiment.
type AnalyzeResult struct {
	Events  int `json:"events"`
	Threads int `json:"threads"` // GOMAXPROCS during the run
	Repeats int `json:"repeats"`
	// ParallelEqualSerial records the reflect.DeepEqual check between the
	// two pipelines' reports on this trace — the run is invalid if false.
	ParallelEqualSerial bool         `json:"parallel_equal_serial"`
	Analyze             []AnalyzeRow `json:"analyze"`
	Codec               []CodecRow   `json:"codec"`
	ParallelSpeedup     float64      `json:"parallel_speedup"`
	SaveSpeedup         float64      `json:"codec_save_speedup_vs_gob"`
	LoadSpeedup         float64      `json:"codec_load_speedup_vs_gob"`
	BinaryBytesPerGob   float64      `json:"binary_size_fraction_of_gob"`
}

// synthRNG is the deterministic generator for the synthetic trace.
type synthRNG uint64

func (x *synthRNG) next() uint64 {
	v := *x
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = v
	return uint64(v)
}

func (x *synthRNG) intn(n int) int { return int(x.next() % uint64(n)) }

// SynthAnalysisTrace builds a deterministic trace of roughly the shape
// the logger records from a busy multi-threaded workload: nOps ecalls
// across 8 threads and 2 enclaves, nested ocalls with back-to-back
// repeats, sync sleep/wake traffic and EPC paging in and out of call
// windows. Rows are batch-inserted, so building is cheap compared to
// the phases being measured.
func SynthAnalysisTrace(nOps int) (*events.Trace, error) {
	tr, err := events.NewTrace()
	if err != nil {
		return nil, err
	}
	tr.Meta.Insert(events.TraceMeta{Workload: "analyze-bench", FrequencyHz: 3.5e9, TransitionCycles: 13500})
	rng := synthRNG(0x5eed)
	names := []string{"ecall_put", "ecall_get", "ecall_del", "ecall_tick", "ecall_crypto", "ecall_flush"}
	onames := []string{"ocall_write", "ocall_read", "ocall_log"}
	regions := []string{"heap", "stack", "code"}
	clock := make([]int64, 8)

	var (
		ecalls []events.CallEvent
		ocalls []events.CallEvent
		paging []events.PagingEvent
		syncs  []events.SyncEvent
	)
	id := int64(0)
	nextID := func() events.EventID { id++; return events.EventID(id) }
	for op := 0; op < nOps; op++ {
		thread := rng.intn(len(clock))
		clock[thread] += int64(100 + rng.intn(4000))
		start := clock[thread]
		dur := int64(100 + rng.intn(3000))
		eid := nextID()
		enclave := sgx.EnclaveID(1 + rng.intn(2))
		ecalls = append(ecalls, events.CallEvent{
			ID: eid, Kind: events.KindEcall, Enclave: enclave,
			Thread: sgx.ThreadID(thread), CallID: rng.intn(8),
			Name:  names[rng.intn(len(names))],
			Start: vtime.Cycles(start), End: vtime.Cycles(start + dur),
			Parent: events.NoEvent, AEXCount: rng.intn(3),
		})
		at := start + int64(rng.intn(50))
		for k, nested := 0, rng.intn(3); k < nested; k++ {
			oid := nextID()
			odur := int64(20 + rng.intn(200))
			oend := at + odur
			// Nested calls stay inside their parent's span, as the SDK
			// produces them — also the streaming fold's nesting
			// precondition.
			if oend > start+dur {
				oend = start + dur
			}
			if oend <= at {
				break
			}
			ocalls = append(ocalls, events.CallEvent{
				ID: oid, Kind: events.KindOcall, Enclave: enclave,
				Thread: sgx.ThreadID(thread), Name: onames[rng.intn(len(onames))],
				Start: vtime.Cycles(at), End: vtime.Cycles(oend),
				Parent: eid,
			})
			at = oend + int64(rng.intn(40))
			if rng.intn(4) == 0 {
				kind := events.SyncSleep
				var targets []sgx.ThreadID
				if rng.intn(2) == 0 {
					kind = events.SyncWake
					targets = []sgx.ThreadID{sgx.ThreadID(rng.intn(len(clock)))}
				}
				syncs = append(syncs, events.SyncEvent{
					ID: nextID(), Kind: kind, Thread: sgx.ThreadID(thread),
					Targets: targets, Time: vtime.Cycles(at), Call: oid,
				})
			}
		}
		if rng.intn(5) == 0 {
			kind := events.PageIn
			if rng.intn(2) == 0 {
				kind = events.PageOut
			}
			when := start + dur/2
			if rng.intn(2) == 0 {
				when = start + dur + 10
			}
			paging = append(paging, events.PagingEvent{
				ID: nextID(), Kind: kind, Enclave: enclave,
				Thread: sgx.ThreadID(thread), Vaddr: rng.next(),
				PageKind: regions[rng.intn(len(regions))],
				Time:     vtime.Cycles(when),
			})
		}
		clock[thread] = start + dur
	}
	tr.Ecalls.BatchInsert(ecalls)
	tr.Ocalls.BatchInsert(ocalls)
	tr.Paging.BatchInsert(paging)
	tr.Syncs.BatchInsert(syncs)
	return tr, nil
}

// traceEvents counts the event rows the analysis consumes.
func traceEvents(tr *events.Trace) int {
	return tr.Ecalls.Len() + tr.Ocalls.Len() + tr.AEXs.Len() + tr.Paging.Len() + tr.Syncs.Len()
}

// medianWall returns the median of the run durations.
func medianWall(runs []time.Duration) time.Duration {
	sort.Slice(runs, func(i, j int) bool { return runs[i] < runs[j] })
	return runs[len(runs)/2]
}

// RunAnalyzeThroughput measures the analysis pipeline serial versus
// parallel and the trace codec versus gob on a synthetic nOps-call
// trace. repeats ≤ 0 selects a default; the median run is reported.
func RunAnalyzeThroughput(nOps, repeats int) (*AnalyzeResult, error) {
	if nOps <= 0 {
		nOps = 50000
	}
	if repeats <= 0 {
		repeats = 3
	}
	tr, err := SynthAnalysisTrace(nOps)
	if err != nil {
		return nil, err
	}
	nEvents := traceEvents(tr)
	res := &AnalyzeResult{Events: nEvents, Threads: runtime.GOMAXPROCS(0), Repeats: repeats}

	// Analysis: serial reference, then the parallel pipeline, then the
	// equality check that makes the comparison meaningful.
	var reports [2]*analyzer.Report
	for mi, mode := range []string{"serial", "parallel"} {
		runs := make([]time.Duration, 0, repeats)
		for rep := 0; rep < repeats; rep++ {
			a, err := analyzer.New(tr, analyzer.Options{Serial: mode == "serial"})
			if err != nil {
				return nil, err
			}
			start := time.Now()
			reports[mi] = a.Analyze()
			runs = append(runs, time.Since(start))
		}
		wall := medianWall(runs)
		res.Analyze = append(res.Analyze, AnalyzeRow{
			Mode: mode, Events: nEvents, Wall: wall,
			EventsPerSec: float64(nEvents) / wall.Seconds(),
		})
	}
	res.ParallelEqualSerial = reflect.DeepEqual(reports[0], reports[1])
	if !res.ParallelEqualSerial {
		return nil, fmt.Errorf("analyze bench: parallel report diverges from serial")
	}
	res.ParallelSpeedup = float64(res.Analyze[0].Wall) / float64(res.Analyze[1].Wall)

	// Serialisation: save and load in both formats, same trace.
	var sizes [2]int
	for fi, format := range []evstore.Format{evstore.FormatGob, evstore.FormatBinary} {
		name := [...]string{"gob", "binary"}[fi]
		var buf bytes.Buffer
		saves := make([]time.Duration, 0, repeats)
		for rep := 0; rep < repeats; rep++ {
			buf.Reset()
			start := time.Now()
			if err := tr.SaveWith(&buf, evstore.SaveOptions{Format: format}); err != nil {
				return nil, err
			}
			saves = append(saves, time.Since(start))
		}
		sizes[fi] = buf.Len()
		wall := medianWall(saves)
		res.Codec = append(res.Codec, CodecRow{
			Op: "save", Format: name, Bytes: buf.Len(), Wall: wall,
			MBPerSec: float64(buf.Len()) / 1e6 / wall.Seconds(),
		})

		loads := make([]time.Duration, 0, repeats)
		for rep := 0; rep < repeats; rep++ {
			dst, err := events.NewTrace()
			if err != nil {
				return nil, err
			}
			start := time.Now()
			if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
				return nil, err
			}
			loads = append(loads, time.Since(start))
			if got := traceEvents(dst); got != nEvents {
				return nil, fmt.Errorf("analyze bench: %s load returned %d events, want %d", name, got, nEvents)
			}
		}
		wall = medianWall(loads)
		res.Codec = append(res.Codec, CodecRow{
			Op: "load", Format: name, Bytes: buf.Len(), Wall: wall,
			MBPerSec: float64(buf.Len()) / 1e6 / wall.Seconds(),
		})
	}
	// Rows are [gob save, gob load, binary save, binary load].
	res.SaveSpeedup = float64(res.Codec[0].Wall) / float64(res.Codec[2].Wall)
	res.LoadSpeedup = float64(res.Codec[1].Wall) / float64(res.Codec[3].Wall)
	if sizes[0] > 0 {
		res.BinaryBytesPerGob = float64(sizes[1]) / float64(sizes[0])
	}
	return res, nil
}

// RenderAnalyze formats the result as the bench tool's report text.
func RenderAnalyze(res *AnalyzeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Analysis throughput (%d events, GOMAXPROCS=%d, median of %d)\n",
		res.Events, res.Threads, res.Repeats)
	fmt.Fprintf(&b, "  %-9s %12s %14s\n", "pipeline", "wall", "events/sec")
	for _, r := range res.Analyze {
		fmt.Fprintf(&b, "  %-9s %12v %14.0f\n", r.Mode, r.Wall.Round(time.Microsecond), r.EventsPerSec)
	}
	fmt.Fprintf(&b, "  parallel speedup: %.2fx (reports DeepEqual: %v)\n\n", res.ParallelSpeedup, res.ParallelEqualSerial)
	fmt.Fprintf(&b, "Trace codec (same trace, both formats)\n")
	fmt.Fprintf(&b, "  %-6s %-7s %10s %12s %10s\n", "op", "format", "bytes", "wall", "MB/s")
	for _, r := range res.Codec {
		fmt.Fprintf(&b, "  %-6s %-7s %10d %12v %10.1f\n", r.Op, r.Format, r.Bytes, r.Wall.Round(time.Microsecond), r.MBPerSec)
	}
	fmt.Fprintf(&b, "  codec vs gob: save %.2fx, load %.2fx, size %.2fx\n",
		res.SaveSpeedup, res.LoadSpeedup, res.BinaryBytesPerGob)
	return b.String()
}
