package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
)

// ContentionRow is one measurement of the logger's recording pipeline
// under multi-threaded load: N simulated TCS threads hammering short
// ecalls while the logger records every event. Unlike the paper's virtual
// time experiments, the interesting number here is wall-clock: how fast
// the recording pipeline itself can absorb events from concurrent
// threads (§4.1: per-thread buffers keep the probe cost flat as threads
// are added).
type ContentionRow struct {
	Threads      int           `json:"threads"`
	Events       int           `json:"events"`
	Wall         time.Duration `json:"wall_ns"`
	EventsPerSec float64       `json:"events_per_sec"`
	NsPerEvent   float64       `json:"ns_per_event"`
}

// RunLoggerContention runs threads × opsPerThread short ecalls against one
// enclave with the logger attached and reports recording throughput.
// opsPerThread ≤ 0 selects a default.
func RunLoggerContention(threads, opsPerThread int) (ContentionRow, error) {
	return runLoggerContention(threads, opsPerThread, false)
}

// RunLoggerContentionLive is the same experiment with a live streaming
// collector subscribed to the trace: it measures what the analysis tap
// costs the recording hot path. The collector's subscribers only enqueue
// batches, so throughput should stay within a few percent of the plain
// run.
func RunLoggerContentionLive(threads, opsPerThread int) (ContentionRow, error) {
	return runLoggerContention(threads, opsPerThread, true)
}

func runLoggerContention(threads, opsPerThread int, withLive bool) (ContentionRow, error) {
	if threads <= 0 {
		threads = 1
	}
	if opsPerThread <= 0 {
		opsPerThread = 2000
	}
	h, err := host.New()
	if err != nil {
		return ContentionRow{}, err
	}
	l, err := logger.Attach(h, logger.Options{Workload: "contention", SkipPaging: true})
	if err != nil {
		return ContentionRow{}, err
	}
	defer l.Detach()
	var col *live.Collector
	if withLive {
		if col, err = live.Attach(l, live.Options{}); err != nil {
			return ContentionRow{}, err
		}
		defer col.Close()
	}

	iface := edl.NewInterface()
	if _, err := iface.AddEcall("ecall_short", true); err != nil {
		return ContentionRow{}, err
	}
	impl := map[string]sdk.TrustedFn{
		"ecall_short": func(env *sdk.Env, args any) (any, error) {
			env.Compute(500 * time.Nanosecond)
			return nil, nil
		},
	}
	ctx := h.NewContext("builder")
	app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
		Name:   "contention",
		NumTCS: threads + 1,
	}, iface, impl)
	if err != nil {
		return ContentionRow{}, err
	}
	otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
	if err != nil {
		return ContentionRow{}, err
	}
	proxy := sdk.MustProxy(sdk.Proxies(app, h.Proc, otab), "ecall_short")

	errs := make(chan error, threads)
	start := time.Now()
	for w := 0; w < threads; w++ {
		if err := h.Spawn(fmt.Sprintf("hammer-%d", w), func(ctx *sgx.Context) {
			for i := 0; i < opsPerThread; i++ {
				if _, err := proxy(ctx, nil); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}); err != nil {
			return ContentionRow{}, err
		}
	}
	h.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		if err != nil {
			return ContentionRow{}, err
		}
	}

	events := l.Trace().Ecalls.Len()
	if want := threads * opsPerThread; events != want {
		return ContentionRow{}, fmt.Errorf("contention: recorded %d ecall events, want %d", events, want)
	}
	if withLive {
		// The collector must have observed the complete run: the drained
		// snapshot's per-call counts equal the recorded events.
		col.Drain()
		snap := col.Snapshot()
		if snap.Counts.Ecalls != events {
			return ContentionRow{}, fmt.Errorf("contention: live collector saw %d ecalls, trace has %d", snap.Counts.Ecalls, events)
		}
	}
	row := ContentionRow{Threads: threads, Events: events, Wall: wall}
	if wall > 0 {
		row.EventsPerSec = float64(events) / wall.Seconds()
		row.NsPerEvent = float64(wall.Nanoseconds()) / float64(events)
	}
	return row, nil
}

// RunLoggerContentionSweep measures the standard thread counts (1, 4, 16).
func RunLoggerContentionSweep(opsPerThread int) ([]ContentionRow, error) {
	return RunLoggerContentionMedian(opsPerThread, 1)
}

// RunLoggerContentionMedian runs the sweep repeats times per thread count
// and keeps the median row by throughput, damping scheduler noise.
func RunLoggerContentionMedian(opsPerThread, repeats int) ([]ContentionRow, error) {
	return contentionMedian(opsPerThread, repeats, false)
}

// RunLoggerContentionLiveMedian is the median sweep with a live collector
// attached.
func RunLoggerContentionLiveMedian(opsPerThread, repeats int) ([]ContentionRow, error) {
	return contentionMedian(opsPerThread, repeats, true)
}

func contentionMedian(opsPerThread, repeats int, withLive bool) ([]ContentionRow, error) {
	if repeats <= 0 {
		repeats = 1
	}
	var out []ContentionRow
	for _, n := range []int{1, 4, 16} {
		runs := make([]ContentionRow, 0, repeats)
		for r := 0; r < repeats; r++ {
			row, err := runLoggerContention(n, opsPerThread, withLive)
			if err != nil {
				return nil, err
			}
			runs = append(runs, row)
		}
		sort.Slice(runs, func(i, j int) bool {
			return runs[i].EventsPerSec < runs[j].EventsPerSec
		})
		out = append(out, runs[len(runs)/2])
	}
	return out, nil
}

// RenderContention renders the sweep as a table.
func RenderContention(rows []ContentionRow) string {
	return renderContention("Logger recording throughput under thread contention", rows)
}

// RenderContentionLive renders the live-subscriber sweep as a table.
func RenderContentionLive(rows []ContentionRow) string {
	return renderContention("Logger recording throughput with a live collector subscribed", rows)
}

func renderContention(title string, rows []ContentionRow) string {
	var b strings.Builder
	b.WriteString(title + "\n")
	b.WriteString("threads |     events |   events/s | ns/event\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%7d | %10d | %10.0f | %8.0f\n",
			r.Threads, r.Events, r.EventsPerSec, r.NsPerEvent)
	}
	return b.String()
}
