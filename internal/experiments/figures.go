package experiments

import (
	"fmt"
	"strings"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/glamdring"
	"sgxperf/internal/workloads/keeper"
	"sgxperf/internal/workloads/minidb"
	"sgxperf/internal/workloads/talos"
)

// --- Figure 5: TaLoS call graph ------------------------------------------

// Fig5 is the TaLoS+nginx analysis of §5.2.1.
type Fig5 struct {
	Requests int
	Report   *analyzer.Report
	DOT      string
	// Totals and shape stats, compared in EXPERIMENTS.md against the
	// paper's 27,631 ecall / 28,969 ocall events, 61/10 distinct calls,
	// 60.78%/73.69% short fractions.
	EcallEvents, OcallEvents       int
	DistinctEcalls, DistinctOcalls int
	ShortEcallFrac, ShortOcallFrac float64
}

// RunFig5 serves the given number of HTTP GETs (paper: 1,000) through the
// TaLoS enclave under the logger and analyses the trace.
func RunFig5(requests int) (*Fig5, error) {
	if requests <= 0 {
		requests = 1000
	}
	h, err := host.New()
	if err != nil {
		return nil, err
	}
	l, err := logger.Attach(h, logger.Options{Workload: "talos-nginx"})
	if err != nil {
		return nil, err
	}
	ctx := h.NewContext("nginx")
	srv, err := talos.NewServer(h, ctx)
	if err != nil {
		return nil, err
	}
	if _, err := srv.Run(ctx, workloads.Options{Ops: requests}); err != nil {
		return nil, err
	}
	a, err := analyzer.New(l.Trace(), analyzer.Options{})
	if err != nil {
		return nil, err
	}
	report := a.Analyze()
	out := &Fig5{
		Requests:    requests,
		Report:      report,
		DOT:         report.Graph.DOT(),
		EcallEvents: l.Trace().Ecalls.Len(),
		OcallEvents: l.Trace().Ocalls.Len(),
	}
	var shortE, totE, shortO, totO float64
	for _, s := range report.Stats {
		if s.Kind == events.KindEcall {
			out.DistinctEcalls++
			totE += float64(s.Count)
			shortE += s.FracBelow10us * float64(s.Count)
		} else {
			out.DistinctOcalls++
			totO += float64(s.Count)
			shortO += s.FracBelow10us * float64(s.Count)
		}
	}
	if totE > 0 {
		out.ShortEcallFrac = shortE / totE
	}
	if totO > 0 {
		out.ShortOcallFrac = shortO / totO
	}
	return out, nil
}

// Render summarises the Fig. 5 run.
func (f *Fig5) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 5 / §5.2.1: TaLoS + nginx, %d GET requests ==\n", f.Requests)
	fmt.Fprintf(&b, "ecall events:   %d across %d distinct calls (paper: 27,631 / 61)\n",
		f.EcallEvents, f.DistinctEcalls)
	fmt.Fprintf(&b, "ocall events:   %d across %d distinct calls (paper: 28,969 / 10)\n",
		f.OcallEvents, f.DistinctOcalls)
	fmt.Fprintf(&b, "short (<10µs):  %.2f%% of ecalls, %.2f%% of ocalls (paper: 60.78%% / 73.69%%)\n",
		f.ShortEcallFrac*100, f.ShortOcallFrac*100)
	fmt.Fprintf(&b, "findings:       %d (the OpenSSL interface is a poor enclave interface)\n",
		len(f.Report.Findings))
	b.WriteString("call graph: use the DOT field (square=ecall, ellipse=ocall, dashed=indirect)\n")
	return b.String()
}

// --- Figure 6: normalised SQLite and LibreSSL bars -----------------------

// Fig6Row is one bar group: a workload variant under one mitigation level.
type Fig6Row struct {
	Workload   string
	Mitigation string
	Variant    string
	Throughput float64
	// Normalised is relative to the same workload's native throughput
	// under the *vanilla* configuration, like the paper's Fig. 6.
	Normalised float64
}

// RunFig6SQLite regenerates the SQLite bars.
func RunFig6SQLite(inserts int) ([]Fig6Row, error) {
	if inserts <= 0 {
		inserts = 2000
	}
	var rows []Fig6Row
	var nativeBase float64
	for _, m := range []sgx.MitigationLevel{sgx.MitigationNone, sgx.MitigationSpectre, sgx.MitigationFull} {
		for _, v := range minidb.Variants() {
			if v == minidb.VariantNative && m != sgx.MitigationNone {
				continue // the native bar does not depend on microcode
			}
			h, err := host.New(host.WithMitigation(m))
			if err != nil {
				return nil, err
			}
			ctx := h.NewContext("driver")
			w, err := minidb.New(h, v, ctx)
			if err != nil {
				return nil, err
			}
			res, err := w.Run(ctx, workloads.Options{Ops: inserts})
			if err != nil {
				return nil, err
			}
			tp := res.Throughput()
			if v == minidb.VariantNative && m == sgx.MitigationNone {
				nativeBase = tp
			}
			rows = append(rows, Fig6Row{
				Workload:   "sqlite",
				Mitigation: m.String(),
				Variant:    string(v),
				Throughput: tp,
			})
		}
	}
	for i := range rows {
		rows[i].Normalised = rows[i].Throughput / nativeBase
	}
	return rows, nil
}

// RunFig6LibreSSL regenerates the LibreSSL (Glamdring) bars.
func RunFig6LibreSSL(signs int) ([]Fig6Row, error) {
	if signs <= 0 {
		signs = 5
	}
	var rows []Fig6Row
	var nativeBase float64
	for _, m := range []sgx.MitigationLevel{sgx.MitigationNone, sgx.MitigationSpectre, sgx.MitigationFull} {
		for _, v := range glamdring.Variants() {
			if v == glamdring.VariantNative && m != sgx.MitigationNone {
				continue
			}
			h, err := host.New(glamdring.RecommendedHostOptions(m)...)
			if err != nil {
				return nil, err
			}
			w, err := glamdring.New(h, v)
			if err != nil {
				return nil, err
			}
			ctx := h.NewContext("driver")
			res, err := w.Run(ctx, workloads.Options{Ops: signs})
			if err != nil {
				return nil, err
			}
			tp := res.Throughput()
			if v == glamdring.VariantNative && m == sgx.MitigationNone {
				nativeBase = tp
			}
			rows = append(rows, Fig6Row{
				Workload:   "libressl",
				Mitigation: m.String(),
				Variant:    string(v),
				Throughput: tp,
			})
		}
	}
	for i := range rows {
		rows[i].Normalised = rows[i].Throughput / nativeBase
	}
	return rows, nil
}

// RenderFig6 formats the bar data.
func RenderFig6(title string, rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Fig. 6: %s (normalised to vanilla native) ==\n", title)
	fmt.Fprintf(&b, "%-14s %-10s %12s %12s\n", "mitigation", "variant", "ops/s", "normalised")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-10s %12.1f %11.2fx\n", r.Mitigation, r.Variant, r.Throughput, r.Normalised)
	}
	return b.String()
}

// Speedups extracts the optimised-vs-enclave speedup per mitigation level
// (§5.2.3 reports 2.16× / 2.66× / 2.87× for LibreSSL).
func Speedups(rows []Fig6Row, enclaveVariant, optimisedVariant string) map[string]float64 {
	enclave := map[string]float64{}
	optimised := map[string]float64{}
	for _, r := range rows {
		switch r.Variant {
		case enclaveVariant:
			enclave[r.Mitigation] = r.Throughput
		case optimisedVariant:
			optimised[r.Mitigation] = r.Throughput
		}
	}
	out := map[string]float64{}
	for m, e := range enclave {
		if o, ok := optimised[m]; ok && e > 0 {
			out[m] = o / e
		}
	}
	return out
}

// --- Figures 7–8 + §5.2.4: SecureKeeper ----------------------------------

// Fig78 is the SecureKeeper analysis.
type Fig78 struct {
	Duration    time.Duration
	EcallEvents int
	OcallEvents int
	SyncEvents  int
	// ClientMean/ZKMean are the two ecalls' mean execution times.
	ClientMean time.Duration
	ZKMean     time.Duration
	// Histogram is Fig. 7 (client-handler execution times, 100 bins).
	Histogram []analyzer.HistogramBin
	// Scatter is Fig. 8 (execution time over application time).
	Scatter []analyzer.ScatterPoint
	// Working set (§5.2.4): 322 pages at start-up, 94 during execution.
	StartupPages int
	SteadyPages  int
	// EnclavesFitEPC estimates how many such enclaves run without paging
	// (paper: 249).
	EnclavesFitEPC int
	Report         *analyzer.Report
}

// RunFig78 collects the §5.2.4 artefacts in two runs, mirroring the
// paper's tooling split: the event logger traces a clean benchmark run
// (histogram, scatter, statistics), and the working-set estimator — which
// "heavily interferes with enclave execution" (§4) and would distort the
// durations — measures a separate, shorter run.
func RunFig78(duration time.Duration) (*Fig78, error) {
	if duration <= 0 {
		duration = 31 * time.Second
	}

	// Run 1: working-set estimation on its own host.
	wsDuration := duration
	if wsDuration > 500*time.Millisecond {
		wsDuration = 500 * time.Millisecond
	}
	hws, err := host.New()
	if err != nil {
		return nil, err
	}
	wsCtx := hws.NewContext("ws")
	wsW, err := keeper.New(hws, wsCtx)
	if err != nil {
		return nil, err
	}
	est := workingset.New(hws, wsW.Enclave())
	if err := est.Start(); err != nil {
		return nil, err
	}
	defer est.Stop()
	c, err := wsW.Connect(wsCtx, 999)
	if err != nil {
		return nil, err
	}
	if _, err := c.Do(wsCtx, keeper.Request{Op: keeper.OpCreate, Path: "/warm", Version: -1}); err != nil {
		return nil, err
	}
	startup := est.Count()
	est.Mark()
	if _, err := wsW.Run(keeper.RunOptions{Clients: 8, Duration: wsDuration}); err != nil {
		return nil, err
	}
	steady := est.Count()

	// Run 2: the logged benchmark, undisturbed.
	h, err := host.New()
	if err != nil {
		return nil, err
	}
	l, err := logger.Attach(h, logger.Options{Workload: "securekeeper"})
	if err != nil {
		return nil, err
	}
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		return nil, err
	}
	if _, err := w.Run(keeper.RunOptions{Clients: 8, Duration: duration}); err != nil {
		return nil, err
	}

	a, err := analyzer.New(l.Trace(), analyzer.Options{})
	if err != nil {
		return nil, err
	}
	out := &Fig78{
		Duration:     duration,
		EcallEvents:  l.Trace().Ecalls.Len(),
		OcallEvents:  l.Trace().Ocalls.Len(),
		SyncEvents:   l.Trace().Syncs.Len(),
		Histogram:    a.Histogram(keeper.EcallFromClient, 100),
		Scatter:      a.Scatter(keeper.EcallFromClient),
		StartupPages: startup,
		SteadyPages:  steady,
		Report:       a.Analyze(),
	}
	if s, ok := a.Stats(keeper.EcallFromClient); ok {
		out.ClientMean = s.Mean
	}
	if s, ok := a.Stats(keeper.EcallFromZK); ok {
		out.ZKMean = s.Mean
	}
	if steady > 0 {
		out.EnclavesFitEPC = sgx.EPCUsablePages / (steady + 2)
	}
	return out, nil
}

// Render summarises the SecureKeeper artefacts.
func (f *Fig78) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== Figs. 7–8 / §5.2.4: SecureKeeper, %v under full load ==\n", f.Duration)
	fmt.Fprintf(&b, "events: %d ecalls, %d ocalls, %d sync (paper: 1.1M / 111 / 18 over 31s)\n",
		f.EcallEvents, f.OcallEvents, f.SyncEvents)
	fmt.Fprintf(&b, "ecall means: client %v, zookeeper %v (paper: ≈14µs / ≈18µs incl. transition)\n",
		f.ClientMean, f.ZKMean)
	fmt.Fprintf(&b, "working set: %d pages start-up, %d steady (paper: 322 / 94)\n",
		f.StartupPages, f.SteadyPages)
	fmt.Fprintf(&b, "EPC capacity: %d such enclaves fit without paging (paper: 249)\n", f.EnclavesFitEPC)
	fmt.Fprintf(&b, "findings: %d (paper: none — the interface is already narrow)\n",
		len(f.Report.Findings))
	// A crude textual histogram of Fig. 7.
	b.WriteString("\nFig. 7 histogram (execution time, 100 bins):\n")
	maxCount := 0
	for _, bin := range f.Histogram {
		if bin.Count > maxCount {
			maxCount = bin.Count
		}
	}
	for _, bin := range f.Histogram {
		if bin.Count == 0 {
			continue
		}
		bar := strings.Repeat("#", 1+bin.Count*50/max(1, maxCount))
		fmt.Fprintf(&b, "%9s–%-9s %6d %s\n",
			bin.Lo.Round(100*time.Nanosecond), bin.Hi.Round(100*time.Nanosecond), bin.Count, bar)
	}
	return b.String()
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
