package experiments

import (
	"fmt"
	"runtime"
	"strings"
	"sync/atomic"
	"time"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/workloads"
	"sgxperf/internal/workloads/glamdring"
)

// --- Ablation 1: SDK mutex vs hybrid lock (§3.4) --------------------------

// HybridLockRow is one locking strategy's result under contention.
type HybridLockRow struct {
	Strategy   string
	SpinCount  int
	Threads    int
	OpsTotal   int
	SyncOcalls int
	// WallVirtual is the slowest thread's virtual time.
	WallVirtual time.Duration
}

// RunHybridLockAblation contends a short critical section between threads
// using the plain SDK mutex and the hybrid spin-then-sleep lock the paper
// recommends for the SSC problem (§3.4).
func RunHybridLockAblation(threads, opsPerThread int) ([]HybridLockRow, error) {
	if threads <= 0 {
		threads = 4
	}
	if opsPerThread <= 0 {
		opsPerThread = 400
	}
	var rows []HybridLockRow
	for _, cfg := range []struct {
		name string
		spin int
	}{
		{"sdk-mutex", 0},
		{"hybrid-lock", 1 << 16},
	} {
		h, err := host.New()
		if err != nil {
			return nil, err
		}
		iface := edl.NewInterface()
		if _, err := iface.AddEcall("ecall_critical", true); err != nil {
			return nil, err
		}
		m := sdk.Mutex{SpinCount: cfg.spin}
		impl := map[string]sdk.TrustedFn{
			"ecall_critical": func(env *sdk.Env, args any) (any, error) {
				if err := m.Lock(env); err != nil {
					return nil, err
				}
				env.Compute(2 * time.Microsecond) // a short critical section
				// Yield while holding the lock so competing simulated
				// threads genuinely overlap (contention would otherwise
				// depend on the Go scheduler's whims).
				for y := 0; y < 3; y++ {
					runtime.Gosched()
				}
				return nil, m.Unlock(env)
			},
		}
		ctx := h.NewContext("main")
		app, err := h.URTS.CreateEnclave(ctx, sgx.Config{Name: "lock", NumTCS: threads + 1}, iface, impl)
		if err != nil {
			return nil, err
		}
		otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
		if err != nil {
			return nil, err
		}
		var syncOcalls atomic.Int64
		for i, fn := range otab.Funcs {
			if sdk.IsSyncOcall(otab.Names[i]) {
				orig := fn
				otab.Funcs[i] = func(ctx *sgx.Context, args any) (any, error) {
					syncOcalls.Add(1)
					return orig(ctx, args)
				}
			}
		}
		proxies := sdk.Proxies(app, h.Proc, otab)
		var maxClock time.Duration
		errs := make(chan error, threads)
		clocks := make(chan time.Duration, threads)
		for t := 0; t < threads; t++ {
			if err := h.Spawn("locker", func(ctx *sgx.Context) {
				for i := 0; i < opsPerThread; i++ {
					if _, err := proxies["ecall_critical"](ctx, nil); err != nil {
						errs <- err
						return
					}
				}
				clocks <- ctx.Clock().Frequency().Duration(ctx.Now())
			}); err != nil {
				errs <- err
			}
		}
		h.Wait()
		close(clocks)
		select {
		case err := <-errs:
			return nil, err
		default:
		}
		for c := range clocks {
			if c > maxClock {
				maxClock = c
			}
		}
		rows = append(rows, HybridLockRow{
			Strategy:    cfg.name,
			SpinCount:   cfg.spin,
			Threads:     threads,
			OpsTotal:    threads * opsPerThread,
			SyncOcalls:  int(syncOcalls.Load()),
			WallVirtual: maxClock,
		})
	}
	return rows, nil
}

// RenderHybridLock formats the ablation.
func RenderHybridLock(rows []HybridLockRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: SDK mutex vs hybrid lock under contention (§3.4) ==\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %12s %14s\n", "strategy", "threads", "ops", "sync ocalls", "virtual time")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8d %8d %12d %14s\n",
			r.Strategy, r.Threads, r.OpsTotal, r.SyncOcalls, r.WallVirtual.Round(time.Microsecond))
	}
	return b.String()
}

// --- Ablation 2: paging mitigation strategies (§3.5) ----------------------

// PagingRow is one strategy's result when the working set exceeds the EPC.
type PagingRow struct {
	Strategy string
	Virtual  time.Duration
	PageIns  uint64
	PageOuts uint64
}

// RunPagingAblation sweeps a data set larger than the (shrunken) EPC with
// the three mitigation strategies from §3.5: (i) naive SGX paging,
// (ii) pre-loading pages before the ecall, (iii) Eleos-style self-paging
// (data stays encrypted in untrusted memory; the enclave copies chunks in
// and decrypts them itself, never exceeding its resident buffer).
func RunPagingAblation(dataPages, epcPages, sweeps int) ([]PagingRow, error) {
	if dataPages <= 0 {
		dataPages = 512
	}
	if epcPages <= 0 {
		epcPages = 384
	}
	if sweeps <= 0 {
		sweeps = 3
	}
	var rows []PagingRow
	const chunk = 64 // pages processed per ecall

	for _, strategy := range []string{"naive", "preload", "self-paging"} {
		h, err := host.New(host.WithEPCCapacity(epcPages))
		if err != nil {
			return nil, err
		}
		iface := edl.NewInterface()
		if _, err := iface.AddEcall("ecall_init", true); err != nil {
			return nil, err
		}
		if _, err := iface.AddEcall("ecall_sweep_chunk", true); err != nil {
			return nil, err
		}
		var base sgx.Vaddr
		heapPages := dataPages
		if strategy == "self-paging" {
			heapPages = chunk + 8 // the enclave keeps only a small buffer
		}
		impl := map[string]sdk.TrustedFn{
			"ecall_init": func(env *sdk.Env, args any) (any, error) {
				n, _ := args.(int)
				v, err := env.Alloc(n * sgx.PageSize)
				if err != nil {
					return nil, err
				}
				base = v
				return nil, nil
			},
			"ecall_sweep_chunk": func(env *sdk.Env, args any) (any, error) {
				idx, _ := args.(int)
				if strategy == "self-paging" {
					// Copy + decrypt the chunk into the resident buffer:
					// no SGX paging, but per-byte crypto cost (§3.5 (iii)).
					env.Compute(time.Duration(chunk) * 3 * time.Microsecond)
					if err := env.Touch(base, chunk*sgx.PageSize, true); err != nil {
						return nil, err
					}
				} else {
					off := sgx.Vaddr(idx*chunk*sgx.PageSize) % sgx.Vaddr(dataPages*sgx.PageSize)
					if err := env.Touch(base+off, chunk*sgx.PageSize, true); err != nil {
						return nil, err
					}
				}
				// The per-page computation on the chunk.
				env.Compute(time.Duration(chunk) * 500 * time.Nanosecond)
				return nil, nil
			},
		}
		ctx := h.NewContext("main")
		app, err := h.URTS.CreateEnclave(ctx, sgx.Config{
			Name:      "paging-" + strategy,
			HeapBytes: heapPages * sgx.PageSize,
		}, iface, impl)
		if err != nil {
			return nil, err
		}
		otab, err := sdk.BuildOcallTable(iface, h.URTS, nil)
		if err != nil {
			return nil, err
		}
		proxies := sdk.Proxies(app, h.Proc, otab)
		initPages := dataPages
		if strategy == "self-paging" {
			initPages = chunk + 4
		}
		if _, err := proxies["ecall_init"](ctx, initPages); err != nil {
			return nil, err
		}
		insBefore, outsBefore := h.Kernel.Driver.Stats()
		start := ctx.Now()
		chunks := dataPages / chunk
		for s := 0; s < sweeps; s++ {
			for i := 0; i < chunks; i++ {
				if strategy == "preload" {
					// Load the chunk's pages into the EPC before entering
					// the enclave: the faults (and their AEXs) happen on
					// the cheap untrusted path (§3.5 (ii)).
					enc := app.Enclave()
					off := sgx.Vaddr(i * chunk * sgx.PageSize)
					for p := 0; p < chunk; p++ {
						page := enc.PageAt(base + off + sgx.Vaddr(p*sgx.PageSize))
						if page == nil {
							continue
						}
						if err := h.Kernel.Driver.PageIn(ctx, enc, page); err != nil {
							return nil, err
						}
					}
				}
				if _, err := proxies["ecall_sweep_chunk"](ctx, i); err != nil {
					return nil, err
				}
			}
		}
		ins, outs := h.Kernel.Driver.Stats()
		rows = append(rows, PagingRow{
			Strategy: strategy,
			Virtual:  ctx.Clock().DurationSince(start),
			PageIns:  ins - insBefore,
			PageOuts: outs - outsBefore,
		})
	}
	return rows, nil
}

// RenderPaging formats the ablation.
func RenderPaging(rows []PagingRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: paging mitigation strategies (§3.5) ==\n")
	fmt.Fprintf(&b, "%-12s %14s %10s %10s\n", "strategy", "virtual time", "page-ins", "page-outs")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %14s %10d %10d\n",
			r.Strategy, r.Virtual.Round(time.Microsecond), r.PageIns, r.PageOuts)
	}
	return b.String()
}

// --- §5.2.3 working set ---------------------------------------------------

// GlamdringWS is the Glamdring working-set measurement.
type GlamdringWS struct {
	StartupPages int // paper: 61
	SteadyPages  int // paper: 32
}

// RunGlamdringWorkingSet measures the partitioned LibreSSL enclave's
// working set after start-up and during the signing benchmark.
func RunGlamdringWorkingSet() (*GlamdringWS, error) {
	h, err := host.New(glamdring.RecommendedHostOptions(sgx.MitigationNone)...)
	if err != nil {
		return nil, err
	}
	w, err := glamdring.New(h, glamdring.VariantEnclave)
	if err != nil {
		return nil, err
	}
	est := workingset.New(h, w.Enclave())
	if err := est.Start(); err != nil {
		return nil, err
	}
	defer est.Stop()
	ctx := h.NewContext("driver")
	if err := w.Init(ctx); err != nil {
		return nil, err
	}
	out := &GlamdringWS{StartupPages: est.Count()}
	est.Mark()
	if _, err := w.Run(ctx, workloads.Options{Ops: 1}); err != nil {
		return nil, err
	}
	out.SteadyPages = est.Count()
	return out, nil
}

// Render formats the working-set comparison.
func (g *GlamdringWS) Render() string {
	return fmt.Sprintf(
		"== §5.2.3 Glamdring working set ==\nstart-up: %d pages (paper: 61)\nbenchmark: %d pages (paper: 32)\n",
		g.StartupPages, g.SteadyPages)
}

// --- Ablation 3: switchless calls (§2.3/§6 related work) ------------------

// SwitchlessRow is one Glamdring configuration's signing rate.
type SwitchlessRow struct {
	Variant     string
	SignsPerSec float64
	// SwitchlessServed/FellBack report queue statistics where applicable.
	SwitchlessServed   uint64
	SwitchlessFellBack uint64
}

// RunSwitchlessAblation compares the two ways of fixing the Glamdring
// SISC problem: the paper's interface redesign (moving bn_mul_recursive
// inside) versus the related work's switchless calls (SCONE, HotCalls,
// Eleos — worker threads parked inside the enclave servicing a call
// queue), against the broken baseline.
func RunSwitchlessAblation(signs int) ([]SwitchlessRow, error) {
	if signs <= 0 {
		signs = 3
	}
	var rows []SwitchlessRow
	for _, v := range []glamdring.Variant{
		glamdring.VariantEnclave, glamdring.VariantSwitchless, glamdring.VariantOptimized,
	} {
		h, err := host.New(glamdring.RecommendedHostOptions(sgx.MitigationNone)...)
		if err != nil {
			return nil, err
		}
		w, err := glamdring.New(h, v)
		if err != nil {
			return nil, err
		}
		ctx := h.NewContext("driver")
		res, err := w.Run(ctx, workloads.Options{Ops: signs})
		if err != nil {
			return nil, err
		}
		row := SwitchlessRow{Variant: string(v), SignsPerSec: res.Throughput()}
		row.SwitchlessServed, row.SwitchlessFellBack = w.SwitchlessStats()
		w.Close()
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderSwitchless formats the ablation.
func RenderSwitchless(rows []SwitchlessRow) string {
	var b strings.Builder
	b.WriteString("== Ablation: interface redesign vs switchless calls (§2.3/§6) ==\n")
	fmt.Fprintf(&b, "%-12s %12s %14s %10s\n", "variant", "signs/s", "queue served", "fallbacks")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %12.1f %14d %10d\n",
			r.Variant, r.SignsPerSec, r.SwitchlessServed, r.SwitchlessFellBack)
	}
	return b.String()
}
