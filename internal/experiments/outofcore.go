package experiments

// The out-of-core analysis experiment: the streaming fold must produce
// the resident analyser's report byte-for-byte while holding peak
// memory at the chunk-window scale — bounded by chunk size times the
// number of cursors, not by the trace size — so traces larger than RAM
// analyse fine. The resident path is priced on the same file for
// comparison.

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
)

// OutOfCoreResult is the machine-readable output of the experiment.
type OutOfCoreResult struct {
	Ops       int   `json:"ops"`
	Events    int   `json:"events"`
	FileBytes int64 `json:"file_bytes"`
	// StreamEqualsResident records the byte-level comparison of the two
	// paths' api/v1 wire reports — the run is invalid if false.
	StreamEqualsResident bool          `json:"stream_equals_resident"`
	ResidentWall         time.Duration `json:"resident_wall_ns"`
	StreamWall           time.Duration `json:"stream_wall_ns"`
	// Peak heap growth over each phase's post-GC baseline, sampled at
	// millisecond granularity while the phase runs.
	ResidentPeakBytes uint64 `json:"resident_peak_bytes"`
	StreamPeakBytes   uint64 `json:"stream_peak_bytes"`
	PeakReduction     float64 `json:"peak_reduction"`
}

// memSampler watches HeapAlloc while a phase runs and keeps the peak.
type memSampler struct {
	baseline uint64
	peak     uint64
	stop     chan struct{}
	done     chan struct{}
}

func startMemSampler() *memSampler {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	s := &memSampler{baseline: ms.HeapAlloc, peak: ms.HeapAlloc,
		stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(s.done)
		tick := time.NewTicker(time.Millisecond)
		defer tick.Stop()
		for {
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > s.peak {
				s.peak = ms.HeapAlloc
			}
			select {
			case <-s.stop:
				return
			case <-tick.C:
			}
		}
	}()
	return s
}

// finish stops sampling and returns the peak heap growth over the
// phase's baseline.
func (s *memSampler) finish() uint64 {
	close(s.stop)
	<-s.done
	if s.peak < s.baseline {
		return 0
	}
	return s.peak - s.baseline
}

// RunOutOfCore saves a stream-sorted synthetic trace of nOps top-level
// calls to disk, analyses it resident (load everything, analyse) and
// out-of-core (chunk cursors through the fold), checks the two wire
// reports are byte-identical, and prices wall time and peak heap for
// both. nOps <= 0 selects a default sized to show the separation
// without needing a multi-GiB scratch disk; pass a bigger count to
// push the resident path past RAM while the streaming path stays flat.
func RunOutOfCore(nOps int) (*OutOfCoreResult, error) {
	if nOps <= 0 {
		nOps = 400_000
	}
	tr, err := SynthAnalysisTrace(nOps)
	if err != nil {
		return nil, err
	}
	events.StreamSort(tr)
	dir, err := os.MkdirTemp("", "sgxperf-outofcore-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "trace.evc")
	if err := tr.SaveFile(path); err != nil {
		return nil, err
	}
	fi, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	res := &OutOfCoreResult{Ops: nOps, Events: traceEvents(tr), FileBytes: fi.Size()}
	tr = nil // the measured phases must not inherit the builder's heap

	// Resident phase: load the whole file, analyse in memory.
	var residentDoc []byte
	{
		sampler := startMemSampler()
		start := time.Now()
		loaded, err := events.NewTrace()
		if err != nil {
			return nil, err
		}
		if err := loaded.LoadFile(path); err != nil {
			return nil, err
		}
		a, err := analyzer.New(loaded, analyzer.Options{})
		if err != nil {
			return nil, err
		}
		rep := a.Analyze()
		res.ResidentWall = time.Since(start)
		res.ResidentPeakBytes = sampler.finish()
		residentDoc, err = apiv1.Marshal(apiv1.FromReport(rep))
		if err != nil {
			return nil, err
		}
	}

	// Streaming phase: chunk cursors only, nothing materialised.
	var streamDoc []byte
	{
		sampler := startMemSampler()
		start := time.Now()
		st, err := events.OpenStreamTrace(path)
		if err != nil {
			return nil, err
		}
		src, err := analyzer.NewStreamTraceSource(st)
		if err != nil {
			st.Close()
			return nil, err
		}
		rep, err := analyzer.AnalyzeStream(src, analyzer.Options{})
		if cerr := st.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		res.StreamWall = time.Since(start)
		res.StreamPeakBytes = sampler.finish()
		streamDoc, err = apiv1.Marshal(apiv1.FromReport(rep))
		if err != nil {
			return nil, err
		}
	}

	res.StreamEqualsResident = bytes.Equal(residentDoc, streamDoc)
	if !res.StreamEqualsResident {
		return nil, fmt.Errorf("outofcore: streaming report diverges from resident")
	}
	if res.StreamPeakBytes > 0 {
		res.PeakReduction = float64(res.ResidentPeakBytes) / float64(res.StreamPeakBytes)
	}
	return res, nil
}

// RenderOutOfCore formats the result as the bench tool's report text.
func RenderOutOfCore(res *OutOfCoreResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Out-of-core analysis (%d events, %.1f MB trace file)\n",
		res.Events, float64(res.FileBytes)/1e6)
	fmt.Fprintf(&b, "  %-9s %12s %14s\n", "path", "wall", "peak heap")
	fmt.Fprintf(&b, "  %-9s %12v %11.1f MB\n", "resident",
		res.ResidentWall.Round(time.Microsecond), float64(res.ResidentPeakBytes)/1e6)
	fmt.Fprintf(&b, "  %-9s %12v %11.1f MB\n", "stream",
		res.StreamWall.Round(time.Microsecond), float64(res.StreamPeakBytes)/1e6)
	fmt.Fprintf(&b, "  peak memory reduction: %.1fx (reports byte-identical: %v)\n",
		res.PeakReduction, res.StreamEqualsResident)
	return b.String()
}
