package experiments

import (
	"strings"
	"testing"
	"time"
)

func TestTransitionsMatchPaper(t *testing.T) {
	rows, err := Transitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		want := time.Duration(r.PaperNS) * time.Nanosecond
		diff := r.Measured - want
		if diff < 0 {
			diff = -diff
		}
		if diff > want/10 {
			t.Errorf("%s: measured %v, paper %v", r.Mitigation, r.Measured, want)
		}
	}
	text := RenderTransitions(rows)
	if !strings.Contains(text, "vanilla") || !strings.Contains(text, "spectre+l1tf") {
		t.Fatalf("render missing rows:\n%s", text)
	}
}

func TestTable2MatchesPaper(t *testing.T) {
	res, err := RunTable2(Table2Options{Calls: 500, LongCalls: 5})
	if err != nil {
		t.Fatal(err)
	}
	within := func(name string, got time.Duration, wantNS int64, tolFrac float64) {
		t.Helper()
		want := time.Duration(wantNS) * time.Nanosecond
		lo := time.Duration(float64(want) * (1 - tolFrac))
		hi := time.Duration(float64(want) * (1 + tolFrac))
		if got < lo || got > hi {
			t.Errorf("%s = %v, paper %v", name, got, want)
		}
	}
	within("native ecall", res.NativeEcall, 4205, 0.05)
	within("logged ecall", res.LoggedEcall, 5572, 0.05)
	within("native ecall+ocall", res.NativeEcallOcall, 8013, 0.05)
	within("logged ecall+ocall", res.LoggedEcallOcall, 10699, 0.05)
	within("ecall overhead", res.EcallOverhead, 1366, 0.06)
	within("ocall overhead", res.OcallOverhead, 1320, 0.06)
	within("per-AEX count", res.PerAEXCount, 1076, 0.25)
	within("per-AEX trace", res.PerAEXTrace, 1118, 0.25)
	if res.MeanAEXs < 10 || res.MeanAEXs > 13 {
		t.Errorf("mean AEX count = %.2f, paper ≈11.5", res.MeanAEXs)
	}
	text := res.Render()
	for _, want := range []string{"Table 2", "AEX counting", "per-AEX"} {
		if !strings.Contains(text, want) {
			t.Fatalf("render missing %q", want)
		}
	}
}

func TestFig5Shape(t *testing.T) {
	f, err := RunFig5(60)
	if err != nil {
		t.Fatal(err)
	}
	perReq := float64(f.EcallEvents) / float64(f.Requests)
	if perReq < 22 || perReq > 34 {
		t.Errorf("ecall events per request = %.1f, paper ≈27.6", perReq)
	}
	if f.DistinctEcalls < 55 || f.DistinctEcalls > 65 {
		t.Errorf("distinct ecalls = %d, paper 61", f.DistinctEcalls)
	}
	if f.ShortEcallFrac < 0.45 || f.ShortEcallFrac > 0.85 {
		t.Errorf("short ecall fraction = %.2f, paper 0.61", f.ShortEcallFrac)
	}
	if !strings.Contains(f.DOT, "digraph") {
		t.Error("no DOT graph")
	}
	if !strings.Contains(f.Render(), "Fig. 5") {
		t.Error("render broken")
	}
}

func TestFig6SQLiteShape(t *testing.T) {
	rows, err := RunFig6SQLite(300)
	if err != nil {
		t.Fatal(err)
	}
	get := func(mit, variant string) Fig6Row {
		for _, r := range rows {
			if r.Mitigation == mit && r.Variant == variant {
				return r
			}
		}
		t.Fatalf("missing row %s/%s", mit, variant)
		return Fig6Row{}
	}
	native := get("vanilla", "native")
	if native.Normalised < 0.99 || native.Normalised > 1.01 {
		t.Errorf("native normalised = %.2f", native.Normalised)
	}
	// The paper's bar ordering: native > merged > enclave, and mitigations
	// make the enclave bars worse.
	enc := get("vanilla", "enclave")
	merged := get("vanilla", "merged")
	if !(native.Throughput > merged.Throughput && merged.Throughput > enc.Throughput) {
		t.Errorf("ordering wrong: %v", rows)
	}
	encL1TF := get("spectre+l1tf", "enclave")
	if encL1TF.Normalised >= enc.Normalised {
		t.Errorf("L1TF bar (%.2f) should be below vanilla bar (%.2f)", encL1TF.Normalised, enc.Normalised)
	}
	if !strings.Contains(RenderFig6("sqlite", rows), "normalised") {
		t.Error("render broken")
	}
}

func TestFig6LibreSSLShape(t *testing.T) {
	rows, err := RunFig6LibreSSL(2)
	if err != nil {
		t.Fatal(err)
	}
	speedups := Speedups(rows, "enclave", "optimized")
	// §5.2.3: 2.16× vanilla, 2.66× Spectre, 2.87× L1TF — the speedup must
	// grow with the mitigation level.
	v, s, l := speedups["vanilla"], speedups["spectre"], speedups["spectre+l1tf"]
	if v < 1.5 || v > 4 {
		t.Errorf("vanilla speedup %.2f, paper 2.16", v)
	}
	if !(l > s && s > v) {
		t.Errorf("speedups not increasing with mitigation: %.2f %.2f %.2f", v, s, l)
	}
}

func TestFig78Shape(t *testing.T) {
	f, err := RunFig78(300 * time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	// Event volume scales to ≈1.1M over 31s.
	perSec := float64(f.EcallEvents) / f.Duration.Seconds()
	if perSec < 20000 || perSec > 50000 {
		t.Errorf("ecall events/s = %.0f, paper ≈35.5k", perSec)
	}
	if f.StartupPages < 280 || f.StartupPages > 360 {
		t.Errorf("startup pages = %d, paper 322", f.StartupPages)
	}
	if f.SteadyPages < 75 || f.SteadyPages > 130 {
		t.Errorf("steady pages = %d, paper 94", f.SteadyPages)
	}
	if f.EnclavesFitEPC < 180 || f.EnclavesFitEPC > 300 {
		t.Errorf("EPC fit = %d, paper 249", f.EnclavesFitEPC)
	}
	if f.ZKMean <= f.ClientMean {
		t.Errorf("zk mean %v should exceed client mean %v", f.ZKMean, f.ClientMean)
	}
	if len(f.Histogram) == 0 || len(f.Scatter) == 0 {
		t.Error("missing histogram/scatter data")
	}
	if !strings.Contains(f.Render(), "Fig. 7 histogram") {
		t.Error("render broken")
	}
}

func TestHybridLockAblation(t *testing.T) {
	rows, err := RunHybridLockAblation(4, 150)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	sdkRow, hybridRow := rows[0], rows[1]
	// The hybrid lock should issue no more sync ocalls than the SDK
	// mutex; typically far fewer (§3.4).
	if hybridRow.SyncOcalls > sdkRow.SyncOcalls {
		t.Errorf("hybrid lock issued more sync ocalls (%d) than the SDK mutex (%d)",
			hybridRow.SyncOcalls, sdkRow.SyncOcalls)
	}
	if !strings.Contains(RenderHybridLock(rows), "hybrid-lock") {
		t.Error("render broken")
	}
}

func TestPagingAblation(t *testing.T) {
	rows, err := RunPagingAblation(256, 192, 2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]PagingRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	naive, preload, selfp := byName["naive"], byName["preload"], byName["self-paging"]
	if naive.PageIns == 0 {
		t.Fatal("naive strategy triggered no paging; the ablation is vacuous")
	}
	// Self-paging must avoid SGX paging entirely after warm-up.
	if selfp.PageIns > naive.PageIns/4 {
		t.Errorf("self-paging page-ins = %d, naive = %d", selfp.PageIns, naive.PageIns)
	}
	// Pre-loading pays the paging cost outside the enclave: same page
	// traffic, but cheaper per fault (no in-enclave AEX), so it beats
	// naive on time.
	if preload.Virtual >= naive.Virtual {
		t.Errorf("preload (%v) not faster than naive (%v)", preload.Virtual, naive.Virtual)
	}
	if !strings.Contains(RenderPaging(rows), "self-paging") {
		t.Error("render broken")
	}
}

func TestGlamdringWorkingSet(t *testing.T) {
	ws, err := RunGlamdringWorkingSet()
	if err != nil {
		t.Fatal(err)
	}
	if ws.StartupPages < 45 || ws.StartupPages > 75 {
		t.Errorf("startup = %d, paper 61", ws.StartupPages)
	}
	if ws.SteadyPages < 20 || ws.SteadyPages > 45 {
		t.Errorf("steady = %d, paper 32", ws.SteadyPages)
	}
	if !strings.Contains(ws.Render(), "working set") {
		t.Error("render broken")
	}
}

func TestSwitchlessAblation(t *testing.T) {
	rows, err := RunSwitchlessAblation(2)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]SwitchlessRow{}
	for _, r := range rows {
		byName[r.Variant] = r
	}
	enclave := byName["enclave"].SignsPerSec
	switchless := byName["switchless"].SignsPerSec
	optimized := byName["optimized"].SignsPerSec
	// Switchless must clearly beat the per-call-transition baseline
	// without touching the partition; the paper's interface redesign
	// still wins because it removes the cross-boundary traffic entirely.
	if switchless < enclave*1.5 {
		t.Errorf("switchless %.1f not clearly above enclave %.1f", switchless, enclave)
	}
	if optimized <= switchless {
		t.Logf("note: switchless (%.1f) outperformed the redesign (%.1f) in this run", switchless, optimized)
	}
	if byName["switchless"].SwitchlessServed == 0 {
		t.Error("no calls went through the switchless queue")
	}
	if !strings.Contains(RenderSwitchless(rows), "switchless") {
		t.Error("render broken")
	}
}
