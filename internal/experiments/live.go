package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"sgxperf/internal/host"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/workloads/keeper"
)

// LiveTick is one periodic observation of a running workload: the
// snapshot, plus the number of call events recorded since the previous
// tick (read through an events.Cursor, the pull-side counterpart of the
// collector's push subscription).
type LiveTick struct {
	Tick     int           `json:"tick"`
	Elapsed  time.Duration `json:"elapsed"`
	NewCalls int           `json:"new_calls"`
	Snapshot live.Snapshot `json:"snapshot"`
}

// LiveRunResult is the outcome of monitoring a SecureKeeper run live.
type LiveRunResult struct {
	Duration time.Duration `json:"duration"`
	Ticks    int           `json:"ticks"`
	// Final is the drained snapshot after the workload quiesced — by the
	// live engine's equivalence guarantee, identical to what the
	// post-mortem analyser reports over the same trace.
	Final live.Snapshot `json:"final"`
	// EventsSeen is the collector's processed-event total, across tables.
	EventsSeen int64 `json:"events_seen"`
}

// RunLive drives the SecureKeeper workload (§5.2.4) for the given virtual
// duration with a live collector attached, emitting a snapshot roughly
// every interval of wall-clock time while the run is in flight. emit may
// be nil.
func RunLive(duration, interval time.Duration, emit func(LiveTick)) (*LiveRunResult, error) {
	if duration <= 0 {
		duration = time.Second
	}
	if interval <= 0 {
		interval = 200 * time.Millisecond
	}
	h, err := host.New()
	if err != nil {
		return nil, err
	}
	l, err := logger.New(h, logger.WithWorkload("securekeeper-live"), logger.WithAEX(logger.AEXCount))
	if err != nil {
		return nil, err
	}
	defer l.Detach()
	ctx := h.NewContext("main")
	w, err := keeper.New(h, ctx)
	if err != nil {
		return nil, err
	}
	col, err := live.Attach(l, live.Options{Window: 250 * time.Millisecond})
	if err != nil {
		return nil, err
	}
	defer col.Close()

	done := make(chan error, 1)
	go func() {
		_, err := w.Run(keeper.RunOptions{Clients: 8, Duration: duration})
		done <- err
	}()

	out := &LiveRunResult{Duration: duration}
	cur := l.Trace().NewCursor()
	start := time.Now()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for running := true; running; {
		select {
		case err := <-done:
			if err != nil {
				return nil, err
			}
			running = false
		case <-ticker.C:
			out.Ticks++
			if emit != nil {
				emit(LiveTick{
					Tick:     out.Ticks,
					Elapsed:  time.Since(start),
					NewCalls: len(cur.Ecalls()) + len(cur.Ocalls()),
					Snapshot: col.Snapshot(),
				})
			}
		}
	}

	col.Drain()
	out.Final = col.Snapshot()
	out.EventsSeen = col.EventsSeen()
	return out, nil
}

// RenderLiveSnapshot renders one snapshot as a compact terminal view.
func RenderLiveSnapshot(s live.Snapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "live view — workload %q\n", s.Workload)
	fmt.Fprintf(&b, "events: %d ecalls, %d ocalls, %d syncs, %d AEXs, %d paging\n",
		s.Counts.Ecalls, s.Counts.Ocalls, s.Counts.Syncs, s.Counts.AEXs, s.Counts.Paging)
	fmt.Fprintf(&b, "rates (per second of enclave time, window %v): %.0f ecalls, %.0f ocalls, %.0f AEXs, %.0f paging\n",
		s.Rates.Window, s.Rates.Ecalls, s.Rates.Ocalls, s.Rates.AEXs, s.Rates.Paging)
	top := s.Stats
	if len(top) > 5 {
		top = top[:5]
	}
	for _, st := range top {
		fmt.Fprintf(&b, "  %-40s %8d calls  mean %10v  p99 %10v\n", st.Name, st.Count, st.Mean, st.P99)
	}
	if len(s.Findings) == 0 {
		b.WriteString("findings: none yet\n")
		return b.String()
	}
	fmt.Fprintf(&b, "findings: %d\n", len(s.Findings))
	byProblem := make(map[string]int)
	for _, f := range s.Findings {
		byProblem[f.Problem.String()]++
	}
	problems := make([]string, 0, len(byProblem))
	for p := range byProblem {
		problems = append(problems, p)
	}
	sort.Strings(problems)
	for _, p := range problems {
		fmt.Fprintf(&b, "  %-35s ×%d\n", p, byProblem[p])
	}
	return b.String()
}

// RenderLiveRun renders the final view plus run totals.
func RenderLiveRun(r *LiveRunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SecureKeeper monitored live for %v (%d interim snapshots, %d events streamed)\n",
		r.Duration, r.Ticks, r.EventsSeen)
	b.WriteString(RenderLiveSnapshot(r.Final))
	return b.String()
}
