package experiments

// The always-on service experiment: boot sgx-perf-serve's handler in
// process, register many concurrent analysis sessions, and measure what
// the daemon adds over the offline pipeline — cold versus warm report
// latency through the content-addressed artifact cache, sustained
// concurrent-session throughput, and how much of the windowed
// statistics an append invalidates. Wall-clock numbers for the tool
// itself, like the analyze experiment.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	apiv1 "sgxperf/api/v1"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/serve"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// ServeSessionRow is one registered session's report latency, cold
// (first request, analysis runs) versus warm (artifact cache hit).
type ServeSessionRow struct {
	ID      string        `json:"id"`
	Ops     int           `json:"ops"`
	Events  int           `json:"events"`
	Cold    time.Duration `json:"cold_report_wall_ns"`
	Warm    time.Duration `json:"warm_report_wall_ns"`
	Speedup float64       `json:"warm_speedup"`
}

// ServeResult is the machine-readable output of the serve experiment.
type ServeResult struct {
	Sessions int               `json:"sessions"`
	Rows     []ServeSessionRow `json:"rows"`
	// ServedEqualsOffline records that every session's served report was
	// byte-for-byte the offline `sgx-perf-analyze -json` document and
	// DeepEqual after the wire round-trip — the run is invalid if false.
	ServedEqualsOffline bool          `json:"served_equals_offline"`
	MedianCold          time.Duration `json:"median_cold_wall_ns"`
	MedianWarm          time.Duration `json:"median_warm_wall_ns"`
	WarmSpeedup         float64       `json:"warm_speedup"`
	// The throughput phase: every session hammered concurrently with
	// warm report requests.
	ThroughputRequests int           `json:"throughput_requests"`
	ThroughputWall     time.Duration `json:"throughput_wall_ns"`
	RequestsPerSec     float64       `json:"requests_per_sec"`
	// The append phase on one session: window counts from the stats
	// endpoint before and after appending a delta. Reused > 0 proves the
	// append invalidated only the tail of the windowed statistics.
	StatsWindowsTotal     int `json:"stats_windows_total"`
	AppendWindowsTotal    int `json:"append_windows_total"`
	AppendWindowsComputed int `json:"append_windows_computed"`
	AppendWindowsReused   int `json:"append_windows_reused"`

	Cache          apiv1.CacheMetrics `json:"cache"`
	ServerRequests uint64             `json:"server_requests"`
}

// deltaAnalysisTrace builds a small append-only delta: nOps extra
// ecalls with IDs and timestamps beyond anything SynthAnalysisTrace
// generates, so appending them to a synthetic base is well-formed.
func deltaAnalysisTrace(nOps int) (*events.Trace, error) {
	tr, err := events.NewTrace()
	if err != nil {
		return nil, err
	}
	rng := synthRNG(0xde17a)
	names := []string{"ecall_put", "ecall_get", "ecall_del", "ecall_tick"}
	rows := make([]events.CallEvent, 0, nOps)
	clock := int64(1_000_000_000)
	for i := 0; i < nOps; i++ {
		dur := int64(100 + rng.intn(3000))
		rows = append(rows, events.CallEvent{
			ID: events.EventID(10_000_000 + i), Kind: events.KindEcall,
			Enclave: sgx.EnclaveID(1), Thread: sgx.ThreadID(i % 8),
			Name:  names[rng.intn(len(names))],
			Start: vtime.Cycles(clock), End: vtime.Cycles(clock + dur),
			Parent: events.NoEvent,
		})
		clock += dur + int64(100+rng.intn(2000))
	}
	tr.Ecalls.BatchInsert(rows)
	return tr, nil
}

// serveGET fetches an api/v1 document and decodes it into out (pass nil
// to keep only the raw bytes).
func serveGET(client *http.Client, url string, out any) ([]byte, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	raw, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d: %s", url, resp.StatusCode, raw)
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, fmt.Errorf("GET %s: %w", url, err)
		}
	}
	return raw, nil
}

// RunServeBench measures the always-on service end to end: sessions
// concurrent traces (default 8) of roughly nOps calls each (default
// 6000, varied per session), reqs warm report requests per session in
// the throughput phase (default 200). ≤ 0 selects the defaults.
func RunServeBench(sessions, nOps, reqs int) (*ServeResult, error) {
	if sessions <= 0 {
		sessions = 8
	}
	if nOps <= 0 {
		nOps = 6000
	}
	if reqs <= 0 {
		reqs = 200
	}

	s := serve.New(serve.Options{})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	client := ts.Client()

	res := &ServeResult{Sessions: sessions}

	// Register one trace per session, each a different size so every
	// session has a distinct content key and its own cached artifacts.
	traces := make([]*events.Trace, sessions)
	ids := make([]string, sessions)
	for i := 0; i < sessions; i++ {
		ops := nOps + i*nOps/10
		tr, err := SynthAnalysisTrace(ops)
		if err != nil {
			return nil, err
		}
		traces[i] = tr
		ids[i] = fmt.Sprintf("s%02d", i)
		var buf bytes.Buffer
		if err := tr.Save(&buf); err != nil {
			return nil, err
		}
		resp, err := client.Post(ts.URL+"/v1/traces?id="+ids[i], "application/octet-stream", &buf)
		if err != nil {
			return nil, err
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusCreated {
			return nil, fmt.Errorf("upload %s: status %d: %s", ids[i], resp.StatusCode, body)
		}
		res.Rows = append(res.Rows, ServeSessionRow{ID: ids[i], Ops: ops, Events: traceEvents(tr)})
	}

	// Cold/warm latency and the served-versus-offline equality check,
	// session by session. The cold request runs the analysis; the warm
	// ones only hit the artifact cache, so the gap is what the cache
	// buys. Warm is the median of three requests.
	res.ServedEqualsOffline = true
	for i := range res.Rows {
		url := ts.URL + "/v1/traces/" + ids[i] + "/report"
		start := time.Now()
		served, err := serveGET(client, url, nil)
		if err != nil {
			return nil, err
		}
		res.Rows[i].Cold = time.Since(start)

		warm := make([]time.Duration, 0, 3)
		for rep := 0; rep < 3; rep++ {
			start = time.Now()
			if _, err := serveGET(client, url, nil); err != nil {
				return nil, err
			}
			warm = append(warm, time.Since(start))
		}
		res.Rows[i].Warm = medianWall(warm)
		res.Rows[i].Speedup = float64(res.Rows[i].Cold) / float64(res.Rows[i].Warm)

		// Offline reference: the same bytes sgx-perf-analyze -json prints.
		a, err := analyzer.New(traces[i], analyzer.Options{})
		if err != nil {
			return nil, err
		}
		offline, err := apiv1.Marshal(apiv1.FromReport(a.Analyze()))
		if err != nil {
			return nil, err
		}
		var servedDoc, offlineDoc apiv1.Report
		if err := json.Unmarshal(served, &servedDoc); err != nil {
			return nil, err
		}
		if err := json.Unmarshal(offline, &offlineDoc); err != nil {
			return nil, err
		}
		if !bytes.Equal(served, offline) || !reflect.DeepEqual(&servedDoc, &offlineDoc) {
			res.ServedEqualsOffline = false
			return nil, fmt.Errorf("serve bench: session %s served report diverges from the offline analyser", ids[i])
		}
	}
	colds := make([]time.Duration, 0, sessions)
	warms := make([]time.Duration, 0, sessions)
	for _, r := range res.Rows {
		colds = append(colds, r.Cold)
		warms = append(warms, r.Warm)
	}
	res.MedianCold = medianWall(colds)
	res.MedianWarm = medianWall(warms)
	res.WarmSpeedup = float64(res.MedianCold) / float64(res.MedianWarm)

	// Sustained concurrent-session throughput: one worker per session,
	// each issuing reqs warm report requests against its own trace.
	var errOnce atomic.Value
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < sessions; i++ {
		wg.Add(1)
		go func(id string) {
			defer wg.Done()
			url := ts.URL + "/v1/traces/" + id + "/report"
			for r := 0; r < reqs; r++ {
				if _, err := serveGET(client, url, nil); err != nil {
					errOnce.CompareAndSwap(nil, err)
					return
				}
			}
		}(ids[i])
	}
	wg.Wait()
	res.ThroughputWall = time.Since(start)
	if err, _ := errOnce.Load().(error); err != nil {
		return nil, fmt.Errorf("serve bench: throughput phase: %w", err)
	}
	res.ThroughputRequests = sessions * reqs
	res.RequestsPerSec = float64(res.ThroughputRequests) / res.ThroughputWall.Seconds()

	// Append phase on session 0: warm the windowed statistics, append a
	// delta, and re-request — only the tail windows may recompute.
	statsURL := ts.URL + "/v1/traces/" + ids[0] + "/stats"
	var cold apiv1.StatsReport
	if _, err := serveGET(client, statsURL, &cold); err != nil {
		return nil, err
	}
	res.StatsWindowsTotal = cold.WindowsTotal

	delta, err := deltaAnalysisTrace(100)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	if err := delta.Save(&buf); err != nil {
		return nil, err
	}
	resp, err := client.Post(ts.URL+"/v1/traces/"+ids[0]+"/append", "application/octet-stream", &buf)
	if err != nil {
		return nil, err
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("append: status %d: %s", resp.StatusCode, body)
	}
	var after apiv1.StatsReport
	if _, err := serveGET(client, statsURL, &after); err != nil {
		return nil, err
	}
	res.AppendWindowsTotal = after.WindowsTotal
	res.AppendWindowsComputed = after.WindowsComputed
	res.AppendWindowsReused = after.WindowsReused

	var metrics apiv1.ServerMetrics
	if _, err := serveGET(client, ts.URL+"/v1/metrics", &metrics); err != nil {
		return nil, err
	}
	res.Cache = metrics.Cache
	res.ServerRequests = metrics.Requests
	return res, nil
}

// RenderServe formats the result as the bench tool's report text.
func RenderServe(res *ServeResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Always-on service (%d concurrent sessions)\n", res.Sessions)
	fmt.Fprintf(&b, "  %-5s %7s %8s %12s %12s %8s\n", "id", "ops", "events", "cold", "warm", "speedup")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "  %-5s %7d %8d %12v %12v %7.1fx\n",
			r.ID, r.Ops, r.Events, r.Cold.Round(time.Microsecond), r.Warm.Round(time.Microsecond), r.Speedup)
	}
	fmt.Fprintf(&b, "  median cold %v, warm %v: cache speedup %.1fx (served == offline: %v)\n",
		res.MedianCold.Round(time.Microsecond), res.MedianWarm.Round(time.Microsecond),
		res.WarmSpeedup, res.ServedEqualsOffline)
	fmt.Fprintf(&b, "  throughput: %d requests over %d sessions in %v = %.0f req/s\n",
		res.ThroughputRequests, res.Sessions, res.ThroughputWall.Round(time.Millisecond), res.RequestsPerSec)
	fmt.Fprintf(&b, "  append invalidation: %d/%d windows recomputed, %d reused\n",
		res.AppendWindowsComputed, res.AppendWindowsTotal, res.AppendWindowsReused)
	fmt.Fprintf(&b, "  cache: %d hits, %d misses, %d coalesced, %d entries (%d requests served)\n",
		res.Cache.Hits, res.Cache.Misses, res.Cache.Coalesced, res.Cache.Entries, res.ServerRequests)
	return b.String()
}
