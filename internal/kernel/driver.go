package kernel

import (
	"fmt"
	"sync"

	"sgxperf/internal/sgx"
)

// Driver is the simulated SGX kernel driver. Enclave creation is a
// kernel-space operation (§2.1): the driver builds the enclave layout,
// loads (EADDs) its pages into the EPC, and later resolves EPC-residency
// faults by paging with EWB/ELDU — re-encrypting pages through the MEE on
// every eviction, which is what makes SGX paging so expensive (§2.3.3).
type Driver struct {
	m  *sgx.Machine
	kp *Kprobes

	// pagingMu serialises all EPC residency changes: concurrent faults on
	// the same page must not race on its sealed image, just as the real
	// driver serialises EWB/ELDU per enclave.
	pagingMu sync.Mutex

	mu       sync.Mutex
	pageIns  uint64
	pageOuts uint64
}

// NewDriver wires a driver to the machine: it installs itself as the
// machine's page-fault resolver and exposes kprobe hooks on its paging
// functions.
func NewDriver(m *sgx.Machine, kp *Kprobes) *Driver {
	d := &Driver{m: m, kp: kp}
	m.SetPageFaultResolver(d)
	return d
}

var _ sgx.PageFaultResolver = (*Driver)(nil)

// CreateEnclave performs ECREATE/EADD/EINIT: builds the layout and loads
// every measured page into the EPC, evicting victims if the enclave is
// larger than the free EPC. Creation time is charged to the calling
// thread.
func (d *Driver) CreateEnclave(ctx *sgx.Context, cfg sgx.Config) (*sgx.Enclave, error) {
	if ctx.InEnclave() {
		// Privileged code cannot run inside enclaves and unprivileged code
		// cannot create them (§2.1): creation must come from untrusted
		// user space via the driver.
		return nil, fmt.Errorf("kernel: enclave creation from inside an enclave")
	}
	enc := d.m.NewEnclaveLayout(cfg)
	cost := d.m.Cost()
	d.pagingMu.Lock()
	defer d.pagingMu.Unlock()
	for _, p := range enc.Pages() {
		ctx.ComputeCycles(cost.EAdd)
		if err := d.loadPage(ctx, enc, p); err != nil {
			d.m.RemoveEnclave(enc.ID)
			return nil, fmt.Errorf("kernel: eadd %#x: %w", uint64(p.Vaddr), err)
		}
	}
	return enc, nil
}

// DestroyEnclave removes the enclave and frees its EPC slots.
func (d *Driver) DestroyEnclave(enc *sgx.Enclave) {
	d.pagingMu.Lock()
	defer d.pagingMu.Unlock()
	for _, p := range enc.Pages() {
		d.m.EPC().Remove(p)
	}
	d.m.RemoveEnclave(enc.ID)
}

// ResolveEPCFault implements sgx.PageFaultResolver: it pages the faulting
// page back in, evicting a victim first if needed.
func (d *Driver) ResolveEPCFault(ctx *sgx.Context, enc *sgx.Enclave, page *sgx.Page, _ bool) error {
	d.pagingMu.Lock()
	defer d.pagingMu.Unlock()
	return d.pageInLocked(ctx, enc, page)
}

// PageIn loads one page into the EPC (ELDU): decrypt + integrity-check the
// sealed image through the MEE and occupy a slot.
func (d *Driver) PageIn(ctx *sgx.Context, enc *sgx.Enclave, page *sgx.Page) error {
	d.pagingMu.Lock()
	defer d.pagingMu.Unlock()
	return d.pageInLocked(ctx, enc, page)
}

func (d *Driver) pageInLocked(ctx *sgx.Context, enc *sgx.Enclave, page *sgx.Page) error {
	if page.Resident() {
		return nil
	}
	if err := d.makeRoom(ctx, enc, page); err != nil {
		return err
	}
	cost := d.m.Cost()
	ctx.ComputeCycles(cost.PageDriver)
	restored, err := page.Unseal(d.m.MEE())
	if err != nil {
		return fmt.Errorf("kernel: eldu: %w", err)
	}
	if restored {
		ctx.ComputeCycles(cost.PageCrypto)
	}
	if err := d.m.EPC().Insert(page); err != nil {
		return fmt.Errorf("kernel: eldu: %w", err)
	}
	d.mu.Lock()
	d.pageIns++
	d.mu.Unlock()
	d.kp.Fire(KprobeEvent{
		Symbol:  SymbolELDU,
		Enclave: enc.ID,
		Vaddr:   page.Vaddr,
		Kind:    page.Kind,
		Time:    ctx.Now(),
		Thread:  ctx.ID(),
	})
	return nil
}

// PageOut evicts one page from the EPC (EWB): encrypt it through the MEE
// into untrusted memory and free the slot.
func (d *Driver) PageOut(ctx *sgx.Context, page *sgx.Page) error {
	d.pagingMu.Lock()
	defer d.pagingMu.Unlock()
	return d.pageOutLocked(ctx, page)
}

func (d *Driver) pageOutLocked(ctx *sgx.Context, page *sgx.Page) error {
	if !page.Resident() {
		return nil
	}
	cost := d.m.Cost()
	ctx.ComputeCycles(cost.PageDriver + cost.PageCrypto)
	page.SealFor(d.m.MEE())
	d.m.EPC().Remove(page)
	d.mu.Lock()
	d.pageOuts++
	d.mu.Unlock()
	owner, _ := d.m.LookupAddr(page.Vaddr)
	var eid sgx.EnclaveID
	if owner != nil {
		eid = owner.ID
	}
	d.kp.Fire(KprobeEvent{
		Symbol:  SymbolEWB,
		Enclave: eid,
		Vaddr:   page.Vaddr,
		Kind:    page.Kind,
		Time:    ctx.Now(),
		Thread:  ctx.ID(),
	})
	return nil
}

// makeRoom evicts LRU victims until a slot is free. SECS and TCS pages are
// kept resident (evicting them requires quiescing the enclave; real
// drivers avoid it while the enclave runs).
func (d *Driver) makeRoom(ctx *sgx.Context, _ *sgx.Enclave, faulting *sgx.Page) error {
	epc := d.m.EPC()
	for epc.Free() == 0 {
		victim := epc.Victim(func(p *sgx.Page) bool {
			return p == faulting || p.Kind == sgx.PageSECS || p.Kind == sgx.PageTCS
		})
		if victim == nil {
			return fmt.Errorf("kernel: epc full and no evictable victim")
		}
		if err := d.pageOutLocked(ctx, victim); err != nil {
			return err
		}
	}
	return nil
}

// loadPage is the EADD path: insert a fresh page, evicting if needed. No
// MEE work is required because the page has no prior sealed image.
func (d *Driver) loadPage(ctx *sgx.Context, enc *sgx.Enclave, p *sgx.Page) error {
	if err := d.makeRoom(ctx, enc, p); err != nil {
		return err
	}
	return d.m.EPC().Insert(p)
}

// Stats returns lifetime paging counters.
func (d *Driver) Stats() (pageIns, pageOuts uint64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.pageIns, d.pageOuts
}
