package kernel

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"sgxperf/internal/sgx"
)

// FSCost prices the simulated filesystem syscalls. Defaults approximate an
// SSD-backed ext4 with the page cache absorbing writes and fsync hitting
// the device, shaped to reproduce the paper's SQLite observations (§5.2.2:
// lseek ocalls ≈4µs including the transition, write ocalls ≈17µs).
type FSCost struct {
	Open        time.Duration
	Seek        time.Duration
	ReadBase    time.Duration
	ReadPerKiB  time.Duration
	WriteBase   time.Duration
	WritePerKiB time.Duration
	Fsync       time.Duration
	Truncate    time.Duration
}

// DefaultFSCost returns the calibrated cost table.
func DefaultFSCost() FSCost {
	return FSCost{
		Open:        3 * time.Microsecond,
		Seek:        600 * time.Nanosecond,
		ReadBase:    1500 * time.Nanosecond,
		ReadPerKiB:  300 * time.Nanosecond,
		WriteBase:   2 * time.Microsecond,
		WritePerKiB: 3 * time.Microsecond,
		Fsync:       9 * time.Microsecond,
		Truncate:    2 * time.Microsecond,
	}
}

// Whence values for Lseek.
const (
	SeekSet = 0
	SeekCur = 1
	SeekEnd = 2
)

// Errors returned by the filesystem.
var (
	ErrBadFD       = errors.New("kernel: bad file descriptor")
	ErrNoSuchFile  = errors.New("kernel: no such file")
	ErrInvalidSeek = errors.New("kernel: invalid seek")
)

type file struct {
	name string
	data []byte
	// synced marks the length of data known durable (fsync bookkeeping,
	// used by tests to validate journal ordering).
	synced int
}

type openFile struct {
	f      *file
	offset int64
}

// FS is a tiny in-memory filesystem with per-operation virtual-time costs.
// The minidb workload issues lseek/write/fsync against it through ocalls.
type FS struct {
	cost FSCost

	mu     sync.Mutex
	files  map[string]*file
	fds    map[int]*openFile
	nextFD int
}

// NewFS creates an empty filesystem with the given costs (zero value
// selects DefaultFSCost).
func NewFS(cost FSCost) *FS {
	if cost == (FSCost{}) {
		cost = DefaultFSCost()
	}
	return &FS{
		cost:   cost,
		files:  make(map[string]*file),
		fds:    make(map[int]*openFile),
		nextFD: 3, // 0-2 reserved, as tradition demands
	}
}

// Open opens (creating if needed) a file and returns a descriptor.
func (fs *FS) Open(ctx *sgx.Context, name string) (int, error) {
	ctx.Compute(fs.cost.Open)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		f = &file{name: name}
		fs.files[name] = f
	}
	fd := fs.nextFD
	fs.nextFD++
	fs.fds[fd] = &openFile{f: f}
	return fd, nil
}

// Close releases a descriptor.
func (fs *FS) Close(fd int) error {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	if _, ok := fs.fds[fd]; !ok {
		return ErrBadFD
	}
	delete(fs.fds, fd)
	return nil
}

// Lseek repositions the file offset.
func (fs *FS) Lseek(ctx *sgx.Context, fd int, offset int64, whence int) (int64, error) {
	ctx.Compute(fs.cost.Seek)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.fds[fd]
	if !ok {
		return 0, ErrBadFD
	}
	var base int64
	switch whence {
	case SeekSet:
		base = 0
	case SeekCur:
		base = of.offset
	case SeekEnd:
		base = int64(len(of.f.data))
	default:
		return 0, ErrInvalidSeek
	}
	pos := base + offset
	if pos < 0 {
		return 0, ErrInvalidSeek
	}
	of.offset = pos
	return pos, nil
}

// Write writes b at the current offset, extending the file as needed.
func (fs *FS) Write(ctx *sgx.Context, fd int, b []byte) (int, error) {
	ctx.Compute(fs.cost.WriteBase + fs.cost.WritePerKiB*time.Duration((len(b)+1023)/1024))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.fds[fd]
	if !ok {
		return 0, ErrBadFD
	}
	end := of.offset + int64(len(b))
	if end > int64(len(of.f.data)) {
		grown := make([]byte, end)
		copy(grown, of.f.data)
		of.f.data = grown
	}
	copy(of.f.data[of.offset:end], b)
	of.offset = end
	return len(b), nil
}

// Read reads into b from the current offset.
func (fs *FS) Read(ctx *sgx.Context, fd int, b []byte) (int, error) {
	ctx.Compute(fs.cost.ReadBase + fs.cost.ReadPerKiB*time.Duration((len(b)+1023)/1024))
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.fds[fd]
	if !ok {
		return 0, ErrBadFD
	}
	if of.offset >= int64(len(of.f.data)) {
		return 0, io.EOF
	}
	n := copy(b, of.f.data[of.offset:])
	of.offset += int64(n)
	return n, nil
}

// Fsync makes the file durable.
func (fs *FS) Fsync(ctx *sgx.Context, fd int) error {
	ctx.Compute(fs.cost.Fsync)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.fds[fd]
	if !ok {
		return ErrBadFD
	}
	of.f.synced = len(of.f.data)
	return nil
}

// Truncate cuts the file to size.
func (fs *FS) Truncate(ctx *sgx.Context, fd int, size int64) error {
	ctx.Compute(fs.cost.Truncate)
	fs.mu.Lock()
	defer fs.mu.Unlock()
	of, ok := fs.fds[fd]
	if !ok {
		return ErrBadFD
	}
	if size < 0 {
		return fmt.Errorf("kernel: truncate to negative size %d", size)
	}
	if size <= int64(len(of.f.data)) {
		of.f.data = of.f.data[:size]
	} else {
		grown := make([]byte, size)
		copy(grown, of.f.data)
		of.f.data = grown
	}
	if of.f.synced > len(of.f.data) {
		of.f.synced = len(of.f.data)
	}
	return nil
}

// Size returns a file's current length.
func (fs *FS) Size(name string) (int64, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return 0, ErrNoSuchFile
	}
	return int64(len(f.data)), nil
}

// Snapshot returns a copy of a file's content (test helper).
func (fs *FS) Snapshot(name string) ([]byte, error) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	f, ok := fs.files[name]
	if !ok {
		return nil, ErrNoSuchFile
	}
	out := make([]byte, len(f.data))
	copy(out, f.data)
	return out, nil
}
