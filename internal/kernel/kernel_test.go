package kernel

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"

	"sgxperf/internal/sgx"
)

func newTestKernel(t *testing.T, opts ...sgx.Option) *Kernel {
	t.Helper()
	m, err := sgx.NewMachine(opts...)
	if err != nil {
		t.Fatal(err)
	}
	return New(m)
}

func TestCreateEnclaveLoadsAllPages(t *testing.T) {
	k := newTestKernel(t)
	ctx := k.Machine.NewContext("main")
	enc, err := k.Driver.CreateEnclave(ctx, sgx.Config{Name: "e"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range enc.Pages() {
		if !p.Resident() {
			t.Fatalf("page %v not resident after creation", p)
		}
	}
	if ctx.Now() == 0 {
		t.Fatal("enclave creation charged no time")
	}
}

func TestCreateEnclaveFromInsideEnclaveRejected(t *testing.T) {
	k := newTestKernel(t)
	ctx := k.Machine.NewContext("main")
	enc, err := k.Driver.CreateEnclave(ctx, sgx.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.EEnter(enc); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	if _, err := k.Driver.CreateEnclave(ctx, sgx.Config{}); err == nil {
		t.Fatal("enclave creation from inside an enclave succeeded")
	}
}

func TestDestroyEnclaveFreesEPC(t *testing.T) {
	k := newTestKernel(t)
	ctx := k.Machine.NewContext("main")
	enc, err := k.Driver.CreateEnclave(ctx, sgx.Config{})
	if err != nil {
		t.Fatal(err)
	}
	before := k.Machine.EPC().Resident()
	k.Driver.DestroyEnclave(enc)
	if got := k.Machine.EPC().Resident(); got != before-enc.NumPages() {
		t.Fatalf("resident after destroy = %d, want %d", got, before-enc.NumPages())
	}
	if k.Machine.Enclave(enc.ID) != nil {
		t.Fatal("enclave still registered after destroy")
	}
}

func TestPagingFiresKprobes(t *testing.T) {
	// EPC too small for both enclaves: creating the second evicts pages of
	// the first, and touching the first pages them back in.
	// Each enclave below is 32 pages; 48 slots force the second creation
	// to evict pages of the first.
	k := newTestKernel(t, sgx.WithEPCCapacity(48))
	ctx := k.Machine.NewContext("main")

	var eldu, ewb []KprobeEvent
	detachIn := k.Kprobes.Register(SymbolELDU, func(ev KprobeEvent) { eldu = append(eldu, ev) })
	defer detachIn()
	detachOut := k.Kprobes.Register(SymbolEWB, func(ev KprobeEvent) { ewb = append(ewb, ev) })
	defer detachOut()

	cfg := sgx.Config{CodeBytes: 4096, HeapBytes: 24 * 4096, StackBytes: 4096}
	e1, err := k.Driver.CreateEnclave(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := k.Driver.CreateEnclave(ctx, cfg); err != nil {
		t.Fatal(err)
	}
	if len(ewb) == 0 {
		t.Fatal("no EWB kprobe events despite EPC pressure")
	}
	// Touch e1's heap: evicted pages fault back in.
	if err := ctx.EEnter(e1); err != nil {
		t.Fatal(err)
	}
	v, err := ctx.HeapAlloc(24 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.TouchRange(v, 24*4096, true); err != nil {
		t.Fatal(err)
	}
	if err := ctx.EExit(); err != nil {
		t.Fatal(err)
	}
	if len(eldu) == 0 {
		t.Fatal("no ELDU kprobe events on fault-in")
	}
	for _, ev := range eldu {
		if ev.Enclave != e1.ID {
			t.Fatalf("ELDU attributed to enclave %d, want %d", ev.Enclave, e1.ID)
		}
		if ev.Vaddr == 0 || ev.Time == 0 {
			t.Fatalf("ELDU event missing vaddr/time: %+v", ev)
		}
	}
	ins, outs := k.Driver.Stats()
	if ins == 0 || outs == 0 {
		t.Fatalf("driver stats ins=%d outs=%d, want both nonzero", ins, outs)
	}
}

func TestPagingPreservesContentUnderPressure(t *testing.T) {
	k := newTestKernel(t, sgx.WithEPCCapacity(80))
	ctx := k.Machine.NewContext("main")
	cfg := sgx.Config{HeapBytes: 16 * 4096}
	enc, err := k.Driver.CreateEnclave(ctx, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.EEnter(enc); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	v, err := ctx.HeapAlloc(16 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	// Write a distinct pattern into each page.
	for i := 0; i < 16; i++ {
		pat := bytes.Repeat([]byte{byte('A' + i)}, 128)
		if err := ctx.WriteBytes(v+sgx.Vaddr(i*4096), pat); err != nil {
			t.Fatal(err)
		}
	}
	// Second enclave (created from another untrusted thread) forces
	// evictions while the first thread is still inside its enclave.
	ctx2 := k.Machine.NewContext("other")
	if _, err := k.Driver.CreateEnclave(ctx2, cfg); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 16; i++ {
		got := make([]byte, 128)
		if err := ctx.ReadBytes(v+sgx.Vaddr(i*4096), got); err != nil {
			t.Fatal(err)
		}
		want := bytes.Repeat([]byte{byte('A' + i)}, 128)
		if !bytes.Equal(got, want) {
			t.Fatalf("page %d corrupted: got %q", i, got[:8])
		}
	}
}

func TestKprobeDetach(t *testing.T) {
	kp := NewKprobes()
	n := 0
	detach := kp.Register("sym", func(KprobeEvent) { n++ })
	kp.Fire(KprobeEvent{Symbol: "sym"})
	detach()
	detach() // idempotent
	kp.Fire(KprobeEvent{Symbol: "sym"})
	if n != 1 {
		t.Fatalf("handler ran %d times, want 1", n)
	}
	if kp.Registered("sym") != 0 {
		t.Fatal("handler still registered after detach")
	}
}

func TestSignalsChaining(t *testing.T) {
	s := NewSignals()
	var order []string
	first := func(ctx *sgx.Context, sig Signal, info *SigInfo) bool {
		order = append(order, "first")
		return true
	}
	if old := s.Sigaction(SIGSEGV, first); old != nil {
		t.Fatal("fresh table returned old handler")
	}
	// A tool (the logger) installs its own handler and chains, as §4
	// describes for overloaded signal/sigaction.
	old := s.Sigaction(SIGSEGV, nil)
	s.Sigaction(SIGSEGV, func(ctx *sgx.Context, sig Signal, info *SigInfo) bool {
		order = append(order, "logger")
		if old != nil {
			return old(ctx, sig, info)
		}
		return false
	})
	if !s.Deliver(nil, SIGSEGV, &SigInfo{}) {
		t.Fatal("delivery failed")
	}
	if len(order) != 2 || order[0] != "logger" || order[1] != "first" {
		t.Fatalf("chain order %v", order)
	}
	if s.Deliver(nil, SIGUSR1, nil) {
		t.Fatal("unhandled signal reported handled")
	}
}

func TestFSLifecycle(t *testing.T) {
	fs := NewFS(FSCost{})
	m, err := sgx.NewMachine()
	if err != nil {
		t.Fatal(err)
	}
	ctx := m.NewContext("t")

	fd, err := fs.Open(ctx, "db")
	if err != nil {
		t.Fatal(err)
	}
	if n, err := fs.Write(ctx, fd, []byte("hello world")); err != nil || n != 11 {
		t.Fatalf("write = %d, %v", n, err)
	}
	if pos, err := fs.Lseek(ctx, fd, 6, SeekSet); err != nil || pos != 6 {
		t.Fatalf("lseek = %d, %v", pos, err)
	}
	buf := make([]byte, 5)
	if n, err := fs.Read(ctx, fd, buf); err != nil || n != 5 || string(buf) != "world" {
		t.Fatalf("read = %d %q %v", n, buf, err)
	}
	if err := fs.Fsync(ctx, fd); err != nil {
		t.Fatal(err)
	}
	if err := fs.Truncate(ctx, fd, 5); err != nil {
		t.Fatal(err)
	}
	if size, err := fs.Size("db"); err != nil || size != 5 {
		t.Fatalf("size = %d, %v", size, err)
	}
	snap, err := fs.Snapshot("db")
	if err != nil || string(snap) != "hello" {
		t.Fatalf("snapshot = %q, %v", snap, err)
	}
	if err := fs.Close(fd); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(ctx, fd, []byte("x")); !errors.Is(err, ErrBadFD) {
		t.Fatalf("write to closed fd: %v", err)
	}
	if ctx.Now() == 0 {
		t.Fatal("filesystem operations charged no virtual time")
	}
}

func TestFSSeekModes(t *testing.T) {
	fs := NewFS(FSCost{})
	m, _ := sgx.NewMachine()
	ctx := m.NewContext("t")
	fd, err := fs.Open(ctx, "f")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(ctx, fd, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if pos, _ := fs.Lseek(ctx, fd, 0, SeekEnd); pos != 100 {
		t.Fatalf("SeekEnd pos = %d", pos)
	}
	if pos, _ := fs.Lseek(ctx, fd, -10, SeekCur); pos != 90 {
		t.Fatalf("SeekCur pos = %d", pos)
	}
	if _, err := fs.Lseek(ctx, fd, -1000, SeekCur); !errors.Is(err, ErrInvalidSeek) {
		t.Fatalf("negative seek: %v", err)
	}
	if _, err := fs.Lseek(ctx, fd, 0, 99); !errors.Is(err, ErrInvalidSeek) {
		t.Fatalf("bad whence: %v", err)
	}
	// Sparse write past EOF extends with zeroes.
	if _, err := fs.Lseek(ctx, fd, 200, SeekSet); err != nil {
		t.Fatal(err)
	}
	if _, err := fs.Write(ctx, fd, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if size, _ := fs.Size("f"); size != 201 {
		t.Fatalf("sparse size = %d, want 201", size)
	}
}

func TestFSReadEOF(t *testing.T) {
	fs := NewFS(FSCost{})
	m, _ := sgx.NewMachine()
	ctx := m.NewContext("t")
	fd, _ := fs.Open(ctx, "f")
	buf := make([]byte, 4)
	if _, err := fs.Read(ctx, fd, buf); !errors.Is(err, io.EOF) {
		t.Fatalf("read empty file: %v, want EOF", err)
	}
}

func TestConnClockCausality(t *testing.T) {
	m, _ := sgx.NewMachine()
	a, b := NewConnPair(NetCost{Latency: 100 * time.Microsecond, Syscall: time.Microsecond, PerKiB: time.Microsecond})
	sender := m.NewContext("sender")
	receiver := m.NewContext("receiver")

	sender.Compute(10 * time.Millisecond) // sender is far ahead
	if err := a.Send(sender, []byte("ping")); err != nil {
		t.Fatal(err)
	}
	msg, err := b.Recv(receiver)
	if err != nil {
		t.Fatal(err)
	}
	if string(msg) != "ping" {
		t.Fatalf("recv %q", msg)
	}
	// Receiver's clock must be at least send time + latency.
	minTime := sender.Now() // sender stopped after send
	if receiver.Now() < minTime {
		t.Fatalf("receiver clock %d behind sender %d: causality violated", receiver.Now(), minTime)
	}
}

func TestConnCloseUnblocks(t *testing.T) {
	m, _ := sgx.NewMachine()
	a, b := NewConnPair(NetCost{})
	receiver := m.NewContext("r")
	done := make(chan error, 1)
	go func() {
		_, err := b.Recv(receiver)
		done <- err
	}()
	a.Close()
	select {
	case err := <-done:
		if !errors.Is(err, ErrConnClosed) {
			t.Fatalf("recv after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("recv did not unblock on close")
	}
}

func TestConnTryRecv(t *testing.T) {
	m, _ := sgx.NewMachine()
	a, b := NewConnPair(NetCost{})
	ctx := m.NewContext("t")
	if _, ok := b.TryRecv(ctx); ok {
		t.Fatal("TryRecv on empty queue returned a message")
	}
	if err := a.Send(ctx, []byte("x")); err != nil {
		t.Fatal(err)
	}
	if msg, ok := b.TryRecv(ctx); !ok || string(msg) != "x" {
		t.Fatalf("TryRecv = %q, %v", msg, ok)
	}
}

func TestSpawnAndWait(t *testing.T) {
	k := newTestKernel(t)
	results := make(chan sgx.ThreadID, 3)
	for i := 0; i < 3; i++ {
		k.Spawn("worker", func(ctx *sgx.Context) {
			ctx.Compute(time.Microsecond)
			results <- ctx.ID()
		})
	}
	k.Wait()
	close(results)
	seen := map[sgx.ThreadID]bool{}
	for id := range results {
		if seen[id] {
			t.Fatalf("duplicate thread id %d", id)
		}
		seen[id] = true
	}
	if len(seen) != 3 {
		t.Fatalf("spawned %d threads, want 3", len(seen))
	}
}

func TestMMUFaultGoesThroughSignals(t *testing.T) {
	k := newTestKernel(t)
	ctx := k.Machine.NewContext("main")
	enc, err := k.Driver.CreateEnclave(ctx, sgx.Config{HeapBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	k.Signals.Sigaction(SIGSEGV, func(c *sgx.Context, sig Signal, info *SigInfo) bool {
		hits++
		k.Machine.SetMMUPerm(info.Page, info.Page.SGXPerm)
		return true
	})
	if err := ctx.EEnter(enc); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()
	v, err := ctx.HeapAlloc(64)
	if err != nil {
		t.Fatal(err)
	}
	k.Machine.SetMMUPerm(enc.PageAt(v), 0)
	if err := ctx.TouchRange(v, 64, true); err != nil {
		t.Fatal(err)
	}
	if hits != 1 {
		t.Fatalf("signal handler hits = %d, want 1", hits)
	}
}

func TestSGXv2GrowthUnderEPCPressure(t *testing.T) {
	// An SGXv2 enclave grows its heap (EAUG) past the build-time size
	// while the EPC is too small to hold everything: growth and paging
	// must compose.
	k := newTestKernel(t, sgx.WithEPCCapacity(96))
	ctx := k.Machine.NewContext("main")
	enc, err := k.Driver.CreateEnclave(ctx, sgx.Config{
		Name:             "v2",
		HeapBytes:        8 * 4096,
		HeapReserveBytes: 64 * 4096,
		SGXv2:            true,
		CodeBytes:        4096,
		StackBytes:       4096,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ctx.EEnter(enc); err != nil {
		t.Fatal(err)
	}
	defer func() { _ = ctx.EExit() }()

	// Allocate far beyond the committed heap: EAUG commits reserve pages.
	v, err := ctx.HeapAlloc(60 * 4096)
	if err != nil {
		t.Fatal(err)
	}
	pattern := bytes.Repeat([]byte{0xAB}, 64)
	for i := 0; i < 60; i++ {
		if err := ctx.WriteBytes(v+sgx.Vaddr(i*4096), pattern); err != nil {
			t.Fatalf("write page %d: %v", i, err)
		}
	}
	// Sweep back: evicted EAUG pages must return intact.
	for i := 0; i < 60; i++ {
		got := make([]byte, 64)
		if err := ctx.ReadBytes(v+sgx.Vaddr(i*4096), got); err != nil {
			t.Fatalf("read page %d: %v", i, err)
		}
		if !bytes.Equal(got, pattern) {
			t.Fatalf("EAUG page %d corrupted", i)
		}
	}
	ins, outs := k.Driver.Stats()
	if ins == 0 || outs == 0 {
		t.Fatalf("expected paging under pressure: ins=%d outs=%d", ins, outs)
	}
}
