package kernel

import (
	"sync"

	"sgxperf/internal/sgx"
)

// Kernel composes the OS services: SGX driver, kprobes, signals, and a
// filesystem. It wires the machine's MMU-fault path into POSIX signal
// dispatch so user-space handlers (the working-set estimator) can repair
// faults.
type Kernel struct {
	Machine *sgx.Machine
	Driver  *Driver
	Kprobes *Kprobes
	Signals *Signals
	FS      *FS

	wg sync.WaitGroup
}

// New builds and wires a kernel for the machine.
func New(m *sgx.Machine) *Kernel {
	kp := NewKprobes()
	k := &Kernel{
		Machine: m,
		Kprobes: kp,
		Driver:  NewDriver(m, kp),
		Signals: NewSignals(),
		FS:      NewFS(FSCost{}),
	}
	m.SetSegvHandler(func(ctx *sgx.Context, enc *sgx.Enclave, page *sgx.Page, write bool) bool {
		return k.Signals.Deliver(ctx, SIGSEGV, &SigInfo{
			Addr:    page.Vaddr,
			Write:   write,
			Enclave: enc,
			Page:    page,
		})
	})
	return k
}

// Spawn runs fn as a simulated OS thread with a fresh context. Use Wait to
// join all spawned threads.
func (k *Kernel) Spawn(name string, fn func(ctx *sgx.Context)) {
	ctx := k.Machine.NewContext(name)
	k.wg.Add(1)
	go func() {
		defer k.wg.Done()
		fn(ctx)
	}()
}

// Wait blocks until every thread started with Spawn has returned.
func (k *Kernel) Wait() { k.wg.Wait() }
