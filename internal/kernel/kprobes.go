// Package kernel models the untrusted operating-system layer the paper's
// tooling interacts with: the SGX kernel driver (enclave creation, EPC
// paging with EWB/ELDU), kprobe-style tracing hooks on driver functions
// (§4.1.5), POSIX-shaped signal dispatch (used by the working-set
// estimator, §4.2), a small filesystem and a message-passing network for
// the workloads.
package kernel

import (
	"sync"

	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Kprobe symbol names mirror the functions of the Linux SGX driver that
// sgx-perf traces (§4.1.5).
const (
	// SymbolELDU is fired when a page is loaded back into the EPC.
	SymbolELDU = "sgx_encl_eldu"
	// SymbolEWB is fired when a page is written back (evicted) from the EPC.
	SymbolEWB = "sgx_encl_ewb"
)

// KprobeEvent describes one driver-function hit.
type KprobeEvent struct {
	Symbol  string
	Enclave sgx.EnclaveID
	Vaddr   sgx.Vaddr
	Kind    sgx.PageKind
	Time    vtime.Cycles
	Thread  sgx.ThreadID
}

// KprobeFn is invoked synchronously on the thread that triggered the probe.
type KprobeFn func(ev KprobeEvent)

// Kprobes is a registry of tracing hooks on kernel symbols.
type Kprobes struct {
	mu       sync.RWMutex
	handlers map[string][]KprobeFn
}

// NewKprobes creates an empty registry.
func NewKprobes() *Kprobes {
	return &Kprobes{handlers: make(map[string][]KprobeFn)}
}

// Register attaches fn to the symbol and returns a detach function.
func (k *Kprobes) Register(symbol string, fn KprobeFn) (detach func()) {
	k.mu.Lock()
	defer k.mu.Unlock()
	k.handlers[symbol] = append(k.handlers[symbol], fn)
	idx := len(k.handlers[symbol]) - 1
	var once sync.Once
	return func() {
		once.Do(func() {
			k.mu.Lock()
			defer k.mu.Unlock()
			hs := k.handlers[symbol]
			if idx < len(hs) {
				hs[idx] = nil
			}
		})
	}
}

// Fire invokes all handlers registered on the symbol.
func (k *Kprobes) Fire(ev KprobeEvent) {
	k.mu.RLock()
	hs := k.handlers[ev.Symbol]
	k.mu.RUnlock()
	for _, h := range hs {
		if h != nil {
			h(ev)
		}
	}
}

// Registered returns the number of live handlers on a symbol.
func (k *Kprobes) Registered(symbol string) int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	n := 0
	for _, h := range k.handlers[symbol] {
		if h != nil {
			n++
		}
	}
	return n
}
