package kernel

import (
	"sync"

	"sgxperf/internal/sgx"
)

// Signal is a POSIX-shaped signal number.
type Signal int

// Signals used by the model.
const (
	// SIGSEGV is delivered on MMU permission faults.
	SIGSEGV Signal = 11
	// SIGUSR1/SIGUSR2 are available to applications (OpenJDK-style
	// inter-thread communication uses these, §4).
	SIGUSR1 Signal = 10
	SIGUSR2 Signal = 12
)

// SigInfo carries fault details to a handler.
type SigInfo struct {
	Addr    sgx.Vaddr
	Write   bool
	Enclave *sgx.Enclave
	Page    *sgx.Page
}

// SigHandler handles a signal on the receiving thread. For SIGSEGV it
// returns true if the fault was repaired and the access may be retried;
// returning false propagates the fault (process crash semantics).
type SigHandler func(ctx *sgx.Context, sig Signal, info *SigInfo) bool

// Signals is the kernel's per-process signal disposition table. As in
// POSIX, there is exactly one handler per signal; user-space chaining (the
// logger's overloaded signal/sigaction, §4) is done by saving the previous
// handler, which Sigaction returns.
type Signals struct {
	mu       sync.Mutex
	handlers map[Signal]SigHandler
}

// NewSignals creates an empty disposition table.
func NewSignals() *Signals {
	return &Signals{handlers: make(map[Signal]SigHandler)}
}

// Sigaction installs a handler and returns the previously installed one
// (nil if none), mirroring struct sigaction's oldact.
func (s *Signals) Sigaction(sig Signal, h SigHandler) (old SigHandler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	old = s.handlers[sig]
	if h == nil {
		delete(s.handlers, sig)
	} else {
		s.handlers[sig] = h
	}
	return old
}

// Handler returns the current disposition for a signal.
func (s *Signals) Handler(sig Signal) SigHandler {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.handlers[sig]
}

// Deliver runs the handler for sig on the given thread. It returns false
// when no handler exists or the handler declined the signal.
func (s *Signals) Deliver(ctx *sgx.Context, sig Signal, info *SigInfo) bool {
	h := s.Handler(sig)
	if h == nil {
		return false
	}
	return h(ctx, sig, info)
}
