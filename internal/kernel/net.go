package kernel

import (
	"errors"
	"sync"
	"time"

	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// NetCost prices the simulated network, shaped like the paper's 10 Gbit/s
// link between identical machines (§5).
type NetCost struct {
	// Latency is the one-way propagation + stack latency.
	Latency time.Duration
	// PerKiB is the serialisation cost per KiB of payload.
	PerKiB time.Duration
	// Syscall is the per-send/per-recv kernel overhead.
	Syscall time.Duration
}

// DefaultNetCost returns a 10GbE-shaped cost table.
func DefaultNetCost() NetCost {
	return NetCost{
		Latency: 20 * time.Microsecond,
		PerKiB:  800 * time.Nanosecond,
		Syscall: 1500 * time.Nanosecond,
	}
}

// ErrConnClosed is returned on send/recv after Close.
var ErrConnClosed = errors.New("kernel: connection closed")

// message carries a payload plus the virtual time at which it becomes
// visible to the receiver.
type message struct {
	data    []byte
	arrival vtime.Cycles
}

// pipe is one direction of a connection.
type pipe struct {
	mu     sync.Mutex
	cond   *sync.Cond
	queue  []message
	closed bool
}

func newPipe() *pipe {
	p := &pipe{}
	p.cond = sync.NewCond(&p.mu)
	return p
}

func (p *pipe) send(m message) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return ErrConnClosed
	}
	p.queue = append(p.queue, m)
	p.cond.Signal()
	return nil
}

func (p *pipe) recv() (message, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for len(p.queue) == 0 && !p.closed {
		p.cond.Wait()
	}
	if len(p.queue) == 0 {
		return message{}, ErrConnClosed
	}
	m := p.queue[0]
	p.queue = p.queue[1:]
	return m, nil
}

func (p *pipe) close() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	p.cond.Broadcast()
}

// Conn is one endpoint of a simulated duplex connection. Send and Recv
// charge virtual time and merge clocks so causality holds across threads:
// a receiver never observes a message "before" it was sent.
type Conn struct {
	cost NetCost
	out  *pipe
	in   *pipe
}

// NewConnPair creates two connected endpoints.
func NewConnPair(cost NetCost) (*Conn, *Conn) {
	if cost == (NetCost{}) {
		cost = DefaultNetCost()
	}
	ab, ba := newPipe(), newPipe()
	return &Conn{cost: cost, out: ab, in: ba},
		&Conn{cost: cost, out: ba, in: ab}
}

// Send transmits a copy of b to the peer.
func (c *Conn) Send(ctx *sgx.Context, b []byte) error {
	cost := c.cost.Syscall + c.cost.PerKiB*time.Duration((len(b)+1023)/1024)
	ctx.Compute(cost)
	data := make([]byte, len(b))
	copy(data, b)
	arrival := ctx.Now() + ctx.Clock().Frequency().Cycles(c.cost.Latency)
	return c.out.send(message{data: data, arrival: arrival})
}

// Recv blocks until a message is available and returns it, advancing the
// receiver's clock to at least the message's arrival time.
func (c *Conn) Recv(ctx *sgx.Context) ([]byte, error) {
	m, err := c.in.recv()
	if err != nil {
		return nil, err
	}
	ctx.Clock().MergeAtLeast(m.arrival)
	ctx.Compute(c.cost.Syscall)
	return m.data, nil
}

// TryRecv returns a pending message without blocking, or (nil, false).
func (c *Conn) TryRecv(ctx *sgx.Context) ([]byte, bool) {
	c.in.mu.Lock()
	if len(c.in.queue) == 0 {
		c.in.mu.Unlock()
		return nil, false
	}
	m := c.in.queue[0]
	c.in.queue = c.in.queue[1:]
	c.in.mu.Unlock()
	ctx.Clock().MergeAtLeast(m.arrival)
	ctx.Compute(c.cost.Syscall)
	return m.data, true
}

// Close shuts down both directions.
func (c *Conn) Close() {
	c.out.close()
	c.in.close()
}
