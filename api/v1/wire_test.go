package apiv1

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/sdk"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// sampleReport exercises every wire field at least once.
func sampleReport() *Report {
	return &Report{
		SchemaVersion: Version,
		Workload:      "sample",
		Stats: []CallStats{{
			Name: "ecall_put", Kind: "ecall", Count: 3,
			MeanNs: 1500, MedianNs: 1400, StdNs: 120, P90Ns: 1700,
			P95Ns: 1750, P99Ns: 1790, MinNs: 1300, MaxNs: 1800,
			FracBelow1us: 0.0, FracBelow5us: 1.0, FracBelow10us: 1.0,
			TotalAEX: 2,
		}},
		Findings: []Finding{{
			Problem: "Short Identical Successive Calls", Call: "ecall_put",
			Kind: "ecall", Partner: "ecall_put",
			Evidence:  "3 successive executions",
			Solutions: []string{"batch calls", "move caller in/out of enclave"},
			Score:     0.75,
		}},
		Security: []SecurityHint{{
			Kind: "make ecall private", Call: "ecall_put",
			Names: []string{"ocall_log"}, Text: "only issued during ocalls",
		}},
		Paging: PagingStats{
			PageIns: 4, PageOuts: 2, DuringCalls: 1,
			ByRegion: map[string]int{"heap": 6},
		},
		WakeGraph: []WakeEdge{{From: 1, To: 2, Count: 5}},
		Switchless: SwitchlessStats{
			Served: 10, Fallbacks: 1,
			Calls: []SwitchlessCall{{
				Name: "ocall_write", Kind: "ocall",
				Served: 10, Fallbacks: 1, AvgWaitNs: 900,
			}},
		},
		Graph: &CallGraph{
			Nodes: []GraphNode{{Name: "ecall_put", Kind: "ecall", CallID: 1, Count: 3}},
			Edges: []GraphEdge{{From: "ecall_put", To: "ocall_log", Count: 2, Indirect: true}},
		},
	}
}

func sampleSnapshot() *LiveSnapshot {
	return &LiveSnapshot{
		SchemaVersion: Version,
		Workload:      "sample",
		Seq:           7,
		Counts:        Counts{Ecalls: 3, Ocalls: 2, Syncs: 1, AEXs: 2, Paging: 6, Switchless: 11},
		Rates:         Rates{WindowNs: int64(time.Second), EcallsPerSec: 1200.5, OcallsPerSec: 800, AEXsPerSec: 3.25, PagingPerSec: 0.5},
		Stats:         sampleReport().Stats,
		Findings:      sampleReport().Findings,
		Paging:        sampleReport().Paging,
		WakeGraph:     sampleReport().WakeGraph,
		Switchless:    sampleReport().Switchless,
	}
}

func sampleLintReport() *LintReport {
	return &LintReport{
		SchemaVersion: Version,
		Workload:      "sample",
		Source:        "hybrid",
		Summary: LintSummary{
			Ecalls: 4, PublicEcalls: 3, PrivateEcalls: 1,
			Ocalls: 2, AllowEdges: 1, UserCheckParams: 1,
		},
		Findings: []LintFinding{{
			Finding: Finding{
				Problem: "Transition-Bound Calls", Call: "ecall_ping", Kind: "ecall",
				Evidence:  "marshals 0 bytes",
				Solutions: []string{"use switchless calls"},
				Score:     0.9,
			},
			Observed:    120,
			HybridScore: 6.22,
		}},
		StaticOnly:  []string{"ecall_unused"},
		DynamicOnly: []DynamicOnly{{Name: "ocall_debug", Kind: "ocall", Count: 3, Note: "not declared"}},
		Warnings:    []string{"ocall_debug: undeclared"},
	}
}

func sampleDecision() EpochDecision {
	return EpochDecision{
		Pool: "ecall", Epoch: 3, Action: "grow", Workers: 4,
		Served: 800, Fallbacks: 2, AvgWaitNs: 1500, Callers: 9,
		PredictedWaitNs: 2100,
	}
}

// TestRoundTrip proves every top-level document survives
// marshal → unmarshal unchanged, so the wire types carry no state the
// encoding loses.
func TestRoundTrip(t *testing.T) {
	docs := map[string]any{
		"report":   sampleReport(),
		"snapshot": sampleSnapshot(),
		"lint":     sampleLintReport(),
		"decision": func() *EpochDecision { d := sampleDecision(); return &d }(),
		"trace_info": &TraceInfo{
			SchemaVersion: Version, ID: "t1", Workload: "sample",
			ContentKey: "deadbeef", Counts: Counts{Ecalls: 3}, Seq: 2,
		},
		"stats_report": &StatsReport{
			SchemaVersion: Version, Workload: "sample", ContentKey: "deadbeef",
			Stats: sampleReport().Stats, WindowsTotal: 3, WindowsComputed: 1, WindowsReused: 2,
		},
		"metrics": &ServerMetrics{
			SchemaVersion: Version, Traces: 2,
			Cache: CacheMetrics{Hits: 5, Misses: 2, Coalesced: 1, Entries: 2, Bytes: 4096, Evictions: 0},
			Memory: MemoryMetrics{
				HeapAllocBytes: 1 << 20, HeapSysBytes: 4 << 20,
				PeakHeapAllocBytes: 2 << 20, NumGC: 3,
			},
			Requests: 9,
		},
		"error": &Error{SchemaVersion: Version, Status: 404, Error: "no such trace"},
	}
	for name, doc := range docs {
		raw, err := Marshal(doc)
		if err != nil {
			t.Fatalf("%s: marshal: %v", name, err)
		}
		back := reflect.New(reflect.TypeOf(doc).Elem()).Interface()
		if err := json.Unmarshal(raw, back); err != nil {
			t.Fatalf("%s: unmarshal: %v", name, err)
		}
		if !reflect.DeepEqual(doc, back) {
			t.Errorf("%s changed across the round-trip:\n want %+v\n got  %+v", name, doc, back)
		}
	}
}

// TestMarshalCanonical pins the canonical serialisation shape: indented,
// newline-terminated, schema-stamped.
func TestMarshalCanonical(t *testing.T) {
	raw, err := Marshal(sampleReport())
	if err != nil {
		t.Fatal(err)
	}
	s := string(raw)
	if !strings.HasSuffix(s, "}\n") {
		t.Errorf("canonical marshal must end with }\\n, got %q", s[len(s)-4:])
	}
	if !strings.Contains(s, "\n  \"schema_version\": 1,\n") {
		t.Errorf("document is not schema-stamped:\n%s", s)
	}
}

// TestGoldenWire pins the exact bytes of each document class. Any diff
// here is a wire-schema change and needs a deliberate decision: additive
// changes regenerate the goldens, breaking changes need api/v2.
func TestGoldenWire(t *testing.T) {
	docs := []struct {
		name string
		doc  any
	}{
		{"report.json", sampleReport()},
		{"snapshot.json", sampleSnapshot()},
		{"lint.json", sampleLintReport()},
		{"decision.json", sampleDecision()},
	}
	for _, d := range docs {
		raw, err := Marshal(d.doc)
		if err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		path := filepath.Join("testdata", d.name)
		if *update {
			if err := os.MkdirAll("testdata", 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, raw, 0o644); err != nil {
				t.Fatal(err)
			}
			continue
		}
		want, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read golden (run with -update to create): %v", err)
		}
		if string(want) != string(raw) {
			t.Errorf("%s drifted from golden.\n--- want\n%s\n--- got\n%s", d.name, want, raw)
		}
	}
}

// TestFromReport spot-checks the internal→wire conversion: enums become
// their catalogue strings and durations become integer nanoseconds.
func TestFromReport(t *testing.T) {
	in := &analyzer.Report{
		Workload: "conv",
		Stats: []analyzer.CallStats{{
			Name: "ecall_x", Kind: events.KindEcall, Count: 2,
			Mean: 3 * time.Microsecond, Median: 2 * time.Microsecond,
			Min: time.Microsecond, Max: 5 * time.Microsecond,
			FracBelow5us: 0.5, TotalAEX: 1,
		}},
		Findings: []analyzer.Finding{{
			Problem: analyzer.ProblemSISC, Call: "ecall_x", Kind: events.KindEcall,
			Evidence:  "e",
			Solutions: []analyzer.Solution{analyzer.SolutionBatch},
			Score:     1,
		}},
		Paging:     analyzer.PagingStats{PageIns: 1, ByRegion: map[string]int{"heap": 1}},
		WakeGraph:  []analyzer.WakeEdge{{From: 1, To: 2, Count: 3}},
		Switchless: analyzer.SwitchlessStats{Served: 1},
	}
	got := FromReport(in)
	if got.SchemaVersion != Version {
		t.Errorf("schema version = %d, want %d", got.SchemaVersion, Version)
	}
	if got.Stats[0].Kind != "ecall" || got.Stats[0].MeanNs != 3000 {
		t.Errorf("stats conversion wrong: %+v", got.Stats[0])
	}
	if got.Findings[0].Problem != "Short Identical Successive Calls" {
		t.Errorf("problem string = %q", got.Findings[0].Problem)
	}
	if got.Findings[0].Solutions[0] != "batch calls" {
		t.Errorf("solution string = %q", got.Findings[0].Solutions[0])
	}
	// The wire paging map is a copy, not an alias.
	got.Paging.ByRegion["heap"] = 99
	if in.Paging.ByRegion["heap"] != 1 {
		t.Error("FromReport aliased the paging map")
	}
}

// TestFromEpochDecision checks the tuner-decision conversion.
func TestFromEpochDecision(t *testing.T) {
	in := sdk.EpochDecision{
		Pool: "ocall", Epoch: 2, Action: "shrink", Workers: 1,
		Served: 10, Fallbacks: 0, AvgWait: 1500 * time.Nanosecond,
		Callers: 3, PredictedWait: 700 * time.Nanosecond,
	}
	got := FromEpochDecision(in)
	want := EpochDecision{
		Pool: "ocall", Epoch: 2, Action: "shrink", Workers: 1,
		Served: 10, Fallbacks: 0, AvgWaitNs: 1500, Callers: 3,
		PredictedWaitNs: 700,
	}
	if got != want {
		t.Errorf("FromEpochDecision:\n got  %+v\n want %+v", got, want)
	}
}

// TestCheckVersion exercises the version guard.
func TestCheckVersion(t *testing.T) {
	if err := CheckVersion(Version); err != nil {
		t.Errorf("CheckVersion(%d) = %v", Version, err)
	}
	if err := CheckVersion(Version + 1); err == nil {
		t.Error("CheckVersion accepted a foreign version")
	}
}
