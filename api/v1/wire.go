// Package apiv1 is the versioned JSON wire schema shared by every
// sgx-perf surface that speaks JSON: the sgx-perf-serve daemon, the
// -json modes of sgx-perf-analyze, sgx-perf-lint and sgx-perf-bench,
// and any external tooling that consumes their output.
//
// The schema is deliberately decoupled from the internal Go types.
// Internal packages are free to rename fields, renumber enum constants
// or restructure aggregates; the wire types here keep stable snake_case
// field names, carry enums as strings, express every duration as
// integer nanoseconds in a field suffixed _ns, and stamp each top-level
// document with "schema_version". Breaking changes require a new
// api/v2 package and a bumped version stamp; additive changes (new
// optional fields) are allowed within v1.
//
// Marshal is the canonical serialisation — two-space indented with a
// trailing newline — used identically by the server and the CLIs so
// that equal documents are equal byte-for-byte.
package apiv1

import (
	"encoding/json"
	"fmt"
)

// Version is the wire-schema generation stamped into every top-level
// document as "schema_version".
const Version = 1

// Marshal is the canonical JSON serialisation of a wire document:
// two-space indentation and a trailing newline. The server's responses
// and the CLIs' -json output all go through here, which is what makes
// the serve smoke test's byte-equality check meaningful.
func Marshal(v any) ([]byte, error) {
	raw, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(raw, '\n'), nil
}

// MarshalCompact is the one-line serialisation used where a document
// must not contain newlines (SSE data frames). The document is the
// same; only the whitespace differs.
func MarshalCompact(v any) ([]byte, error) {
	return json.Marshal(v)
}

// Report is the analyser's full output for one trace (the wire form of
// the internal analyzer.Report).
type Report struct {
	SchemaVersion int             `json:"schema_version"`
	Workload      string          `json:"workload"`
	Stats         []CallStats     `json:"stats"`
	Findings      []Finding       `json:"findings"`
	Security      []SecurityHint  `json:"security,omitempty"`
	Paging        PagingStats     `json:"paging"`
	WakeGraph     []WakeEdge      `json:"wake_graph,omitempty"`
	Switchless    SwitchlessStats `json:"switchless"`
	Graph         *CallGraph      `json:"graph,omitempty"`
}

// CallStats are the per-call general statistics (§4.3.1); ecall
// durations are transition-adjusted as in §4.1.2.
type CallStats struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"` // "ecall" or "ocall"
	Count int    `json:"count"`

	MeanNs   int64 `json:"mean_ns"`
	MedianNs int64 `json:"median_ns"`
	StdNs    int64 `json:"std_ns"`
	P90Ns    int64 `json:"p90_ns"`
	P95Ns    int64 `json:"p95_ns"`
	P99Ns    int64 `json:"p99_ns"`
	MinNs    int64 `json:"min_ns"`
	MaxNs    int64 `json:"max_ns"`

	FracBelow1us  float64 `json:"frac_below_1us"`
	FracBelow5us  float64 `json:"frac_below_5us"`
	FracBelow10us float64 `json:"frac_below_10us"`

	TotalAEX int `json:"total_aex"`
}

// Finding is one detected problem with evidence and ranked solutions.
// Problem and the solutions are carried as their catalogue strings.
type Finding struct {
	Problem      string   `json:"problem"`
	Call         string   `json:"call"`
	Kind         string   `json:"kind"`
	Partner      string   `json:"partner,omitempty"`
	Evidence     string   `json:"evidence"`
	Solutions    []string `json:"solutions,omitempty"`
	SecurityNote string   `json:"security_note,omitempty"`
	Score        float64  `json:"score"`
}

// SecurityHint is one interface-tightening hint (§4.3.3).
type SecurityHint struct {
	Kind  string   `json:"kind"`
	Call  string   `json:"call,omitempty"`
	Names []string `json:"names,omitempty"`
	Text  string   `json:"text"`
}

// PagingStats aggregates the EPC paging events (§4.1.5).
type PagingStats struct {
	PageIns     int            `json:"page_ins"`
	PageOuts    int            `json:"page_outs"`
	DuringCalls int            `json:"during_calls"`
	ByRegion    map[string]int `json:"by_region,omitempty"`
}

// WakeEdge is one thread-wakes-thread edge of the wake graph (§5.2.4).
type WakeEdge struct {
	From  int64 `json:"from"`
	To    int64 `json:"to"`
	Count int   `json:"count"`
}

// SwitchlessCall is the per-name switchless runtime summary.
type SwitchlessCall struct {
	Name      string `json:"name"`
	Kind      string `json:"kind"`
	Served    int    `json:"served"`
	Fallbacks int    `json:"fallbacks"`
	AvgWaitNs int64  `json:"avg_wait_ns"`
}

// SwitchlessStats summarises the switchless runtime's activity.
type SwitchlessStats struct {
	Served    int              `json:"served"`
	Fallbacks int              `json:"fallbacks"`
	Calls     []SwitchlessCall `json:"calls,omitempty"`
}

// GraphNode is one call in the call-pattern graph.
type GraphNode struct {
	Name   string `json:"name"`
	Kind   string `json:"kind"`
	CallID int    `json:"call_id"`
	Count  int    `json:"count"`
}

// GraphEdge links a parent call to a call issued under it; indirect
// edges are the dashed arrows of Fig. 5.
type GraphEdge struct {
	From     string `json:"from"`
	To       string `json:"to"`
	Count    int    `json:"count"`
	Indirect bool   `json:"indirect,omitempty"`
}

// CallGraph is the application's call-pattern graph (§4.3.1).
type CallGraph struct {
	Nodes []GraphNode `json:"nodes"`
	Edges []GraphEdge `json:"edges"`
}

// Counts are raw per-table event totals.
type Counts struct {
	Ecalls     int `json:"ecalls"`
	Ocalls     int `json:"ocalls"`
	Syncs      int `json:"syncs"`
	AEXs       int `json:"aexs"`
	Paging     int `json:"paging"`
	Switchless int `json:"switchless"`
}

// Rates are sliding-window event rates in events per second of virtual
// time.
type Rates struct {
	WindowNs     int64   `json:"window_ns"`
	EcallsPerSec float64 `json:"ecalls_per_sec"`
	OcallsPerSec float64 `json:"ocalls_per_sec"`
	AEXsPerSec   float64 `json:"aexs_per_sec"`
	PagingPerSec float64 `json:"paging_per_sec"`
}

// LiveSnapshot is one consistent view of a live or served analysis:
// totals and rates for dashboards plus the analyser-grade statistics.
// Seq is a per-trace monotonic change counter; subscribers resume a
// long-poll with ?seq=<last seen> and the server answers once the
// trace has moved past it.
type LiveSnapshot struct {
	SchemaVersion int    `json:"schema_version"`
	Workload      string `json:"workload"`
	Seq           uint64 `json:"seq,omitempty"`
	Counts        Counts `json:"counts"`
	Rates         Rates  `json:"rates"`

	Stats      []CallStats     `json:"stats"`
	Findings   []Finding       `json:"findings"`
	Paging     PagingStats     `json:"paging_summary"`
	WakeGraph  []WakeEdge      `json:"wake_graph,omitempty"`
	Switchless SwitchlessStats `json:"switchless"`
}

// LintSummary condenses the interface shape the static detectors saw.
type LintSummary struct {
	Ecalls          int `json:"ecalls"`
	PublicEcalls    int `json:"public_ecalls"`
	PrivateEcalls   int `json:"private_ecalls"`
	Ocalls          int `json:"ocalls"`
	AllowEdges      int `json:"allow_edges"`
	UserCheckParams int `json:"user_check_params"`
}

// LintFinding is a Finding augmented with the hybrid join: how often
// the trace observed the call and the traffic-weighted rank.
type LintFinding struct {
	Finding
	Observed    int     `json:"observed,omitempty"`
	HybridScore float64 `json:"hybrid_score,omitempty"`
}

// DynamicOnly names a call the trace observed that the interface does
// not declare.
type DynamicOnly struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Count int    `json:"count"`
	Note  string `json:"note,omitempty"`
}

// EntryPrediction is the interprocedural transition estimate for one
// ecall entry point: expected ocall dispatches per invocation, joined
// in hybrid reports with what the trace recorded.
type EntryPrediction struct {
	Ecall     string `json:"ecall"`
	Handler   string `json:"handler"`
	Predicted int    `json:"predicted"`
	// LoopUnknown marks a lower bound (a loop trip count the analysis
	// could not resolve); Conditional marks branch-guarded dispatches.
	LoopUnknown bool `json:"loop_unknown,omitempty"`
	Conditional bool `json:"conditional,omitempty"`
	// Observed is the mean non-sync ocall dispatches per recorded
	// invocation; Verdict is "agree", "over-predicted",
	// "under-predicted", "loop-unknown" or "not-executed" (hybrid only).
	Observed    float64 `json:"observed,omitempty"`
	Invocations int     `json:"invocations,omitempty"`
	Verdict     string  `json:"verdict,omitempty"`
}

// A FlowStep is one hop of a secret-flow witness chain.
type FlowStep struct {
	Pos  string `json:"pos"`
	Note string `json:"note"`
}

// LintFlow is one secret-flow witness of the taint analysis: an
// enclave-confidential value reaching a boundary sink without sealing,
// with the full source→…→sink path.
type LintFlow struct {
	Source string `json:"source"`
	Sink   string `json:"sink"`
	// SinkKind is "ocall-arg", "out-param", "user_check" or
	// "boundary-write".
	SinkKind string `json:"sink_kind"`
	// Call is the joinable wire name — the ocall for argument sinks,
	// the enclosing handler's ecall for buffer-write sinks.
	Call string `json:"call,omitempty"`
	Func string `json:"func"`
	Pos  string `json:"pos"`
	// Bytes is the static size of the leaked value (0 when runtime
	// sized); Price the modelled copy cost of one crossing.
	Bytes int    `json:"bytes,omitempty"`
	Price string `json:"price,omitempty"`
	// Observed is how often Call executed in the joined trace (hybrid
	// reports only).
	Observed int        `json:"observed,omitempty"`
	Chain    []FlowStep `json:"chain"`
}

// LintReport is the static interface analysis, optionally joined with a
// recorded trace ("hybrid").
type LintReport struct {
	SchemaVersion int           `json:"schema_version"`
	Workload      string        `json:"workload,omitempty"`
	Source        string        `json:"source"` // "static" or "hybrid"
	Summary       LintSummary   `json:"summary"`
	Findings      []LintFinding `json:"findings"`
	StaticOnly    []string      `json:"static_only,omitempty"`
	DynamicOnly   []DynamicOnly `json:"dynamic_only,omitempty"`
	// Predicted holds the per-entry transition estimates of
	// source-aware reports.
	Predicted []EntryPrediction `json:"predicted,omitempty"`
	// Flows holds the secret-flow witnesses of the taint analysis
	// (source-aware reports).
	Flows    []LintFlow `json:"flows,omitempty"`
	Warnings []string   `json:"warnings,omitempty"`
}

// VetDiagnostic is one repository-lint finding from the sgx-perf-vet
// analyzer suite.
type VetDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// VetReport is the output of sgx-perf-vet -json: every diagnostic the
// repository's own analyzer suite produced.
type VetReport struct {
	SchemaVersion int             `json:"schema_version"`
	Root          string          `json:"root"`
	Analyzers     []string        `json:"analyzers"`
	Diagnostics   []VetDiagnostic `json:"diagnostics"`
}

// EpochDecision is one self-tuning switchless scheduler decision.
type EpochDecision struct {
	Pool            string `json:"pool"` // "ecall" or "ocall"
	Epoch           int    `json:"epoch"`
	Action          string `json:"action"` // "grow", "shrink" or "hold"
	Workers         int    `json:"workers"`
	Served          uint64 `json:"served"`
	Fallbacks       uint64 `json:"fallbacks"`
	AvgWaitNs       int64  `json:"avg_wait_ns"`
	Callers         int    `json:"callers"`
	PredictedWaitNs int64  `json:"predicted_wait_ns"`
}

// TraceInfo describes one trace registered with the serve daemon.
type TraceInfo struct {
	SchemaVersion int    `json:"schema_version"`
	ID            string `json:"id"`
	Workload      string `json:"workload,omitempty"`
	// ContentKey is the content-addressed identity of the trace: a hash
	// chain over every table's chunk hashes. It changes whenever events
	// are appended and keys the server's artifact cache.
	ContentKey string `json:"content_key"`
	Counts     Counts `json:"counts"`
	// Seq is the trace's change counter (bumped on upload and append).
	Seq uint64 `json:"seq"`
}

// TraceList is the response of GET /v1/traces.
type TraceList struct {
	SchemaVersion int         `json:"schema_version"`
	Traces        []TraceInfo `json:"traces"`
}

// StatsReport is the windowed incremental statistics view
// (GET /v1/traces/{id}/stats): the same per-call statistics as
// Report.Stats, assembled from per-chunk window artifacts so an
// appended trace only recomputes the changed tail window.
type StatsReport struct {
	SchemaVersion int         `json:"schema_version"`
	Workload      string      `json:"workload"`
	ContentKey    string      `json:"content_key"`
	Stats         []CallStats `json:"stats"`
	// WindowsTotal is how many chunk windows the trace spans;
	// WindowsComputed of them were computed for this request and
	// WindowsReused came from the artifact cache.
	WindowsTotal    int `json:"windows_total"`
	WindowsComputed int `json:"windows_computed"`
	WindowsReused   int `json:"windows_reused"`
}

// CacheMetrics are the artifact cache's counters. Bytes is the
// estimated resident size of every cached artifact, accounted at insert
// and eviction time.
type CacheMetrics struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Coalesced uint64 `json:"coalesced"`
	Entries   int    `json:"entries"`
	Bytes     uint64 `json:"bytes"`
	Evictions uint64 `json:"evictions"`
}

// MemoryMetrics is the server's memory gauge set: a runtime.MemStats
// snapshot plus the peak live heap the server has observed across its
// analysis work, so the streaming fold's bounded-memory claim is
// observable in production rather than only in the bench.
type MemoryMetrics struct {
	HeapAllocBytes     uint64 `json:"heap_alloc_bytes"`
	HeapSysBytes       uint64 `json:"heap_sys_bytes"`
	PeakHeapAllocBytes uint64 `json:"peak_heap_alloc_bytes"`
	NumGC              uint32 `json:"num_gc"`
}

// ServerMetrics is the response of GET /v1/metrics.
type ServerMetrics struct {
	SchemaVersion int           `json:"schema_version"`
	Traces        int           `json:"traces"`
	Cache         CacheMetrics  `json:"cache"`
	Memory        MemoryMetrics `json:"memory"`
	Requests      uint64        `json:"requests"`
}

// Error is the JSON error body every non-2xx serve response carries.
type Error struct {
	SchemaVersion int    `json:"schema_version"`
	Status        int    `json:"status"`
	Error         string `json:"error"`
}

// CheckVersion validates a document's schema_version stamp, for clients
// that want to fail fast on foreign documents.
func CheckVersion(got int) error {
	if got != Version {
		return fmt.Errorf("apiv1: schema_version %d, want %d", got, Version)
	}
	return nil
}
