package apiv1

import (
	"path/filepath"

	"sgxperf/internal/lint"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/staticlint"
	"sgxperf/internal/sdk"
)

// FromReport converts an analyser report to its wire form.
func FromReport(r *analyzer.Report) *Report {
	if r == nil {
		return nil
	}
	out := &Report{
		SchemaVersion: Version,
		Workload:      r.Workload,
		Stats:         FromStats(r.Stats),
		Findings:      fromFindings(r.Findings),
		Paging:        fromPaging(r.Paging),
		WakeGraph:     fromWakeGraph(r.WakeGraph),
		Switchless:    fromSwitchless(r.Switchless),
		Graph:         fromGraph(r.Graph),
	}
	for _, h := range r.Security {
		out.Security = append(out.Security, SecurityHint{
			Kind: h.Kind.String(), Call: h.Call, Names: h.Names, Text: h.Text,
		})
	}
	return out
}

// FromSnapshot converts a live collector snapshot to its wire form. Seq
// is zero; the serve daemon stamps its own change counter.
func FromSnapshot(s *live.Snapshot) *LiveSnapshot {
	if s == nil {
		return nil
	}
	return &LiveSnapshot{
		SchemaVersion: Version,
		Workload:      s.Workload,
		Counts: Counts{
			Ecalls: s.Counts.Ecalls, Ocalls: s.Counts.Ocalls,
			Syncs: s.Counts.Syncs, AEXs: s.Counts.AEXs,
			Paging: s.Counts.Paging, Switchless: s.Counts.Switchless,
		},
		Rates: Rates{
			WindowNs:     int64(s.Rates.Window),
			EcallsPerSec: s.Rates.Ecalls,
			OcallsPerSec: s.Rates.Ocalls,
			AEXsPerSec:   s.Rates.AEXs,
			PagingPerSec: s.Rates.Paging,
		},
		Stats:      FromStats(s.Stats),
		Findings:   fromFindings(s.Findings),
		Paging:     fromPaging(s.Paging),
		WakeGraph:  fromWakeGraph(s.WakeGraph),
		Switchless: fromSwitchless(s.Switchless),
	}
}

// FromLintReport converts a static/hybrid lint report to its wire form.
func FromLintReport(r *staticlint.Report) *LintReport {
	if r == nil {
		return nil
	}
	out := &LintReport{
		SchemaVersion: Version,
		Workload:      r.Workload,
		Source:        r.Source.String(),
		Summary: LintSummary{
			Ecalls:          r.Summary.Ecalls,
			PublicEcalls:    r.Summary.PublicEcalls,
			PrivateEcalls:   r.Summary.PrivateEcalls,
			Ocalls:          r.Summary.Ocalls,
			AllowEdges:      r.Summary.AllowEdges,
			UserCheckParams: r.Summary.UserCheckParams,
		},
		Findings:   make([]LintFinding, 0, len(r.Findings)),
		StaticOnly: r.StaticOnly,
		Warnings:   r.Warnings,
	}
	for _, f := range r.Findings {
		out.Findings = append(out.Findings, LintFinding{
			Finding:     fromFinding(f.Finding),
			Observed:    f.Observed,
			HybridScore: f.HybridScore,
		})
	}
	for _, d := range r.DynamicOnly {
		out.DynamicOnly = append(out.DynamicOnly, DynamicOnly{
			Name: d.Name, Kind: d.Kind.String(), Count: d.Count, Note: d.Note,
		})
	}
	for _, p := range r.Predicted {
		out.Predicted = append(out.Predicted, EntryPrediction{
			Ecall: p.Ecall, Handler: p.Handler, Predicted: p.Predicted,
			LoopUnknown: p.LoopUnknown, Conditional: p.Conditional,
			Observed: p.Observed, Invocations: p.Invocations, Verdict: p.Verdict,
		})
	}
	for _, fl := range r.Flows {
		wf := LintFlow{
			Source: fl.Source, Sink: fl.Sink, SinkKind: fl.SinkKind,
			Call: fl.Call, Func: fl.Func, Pos: fl.Pos,
			Bytes: fl.Bytes, Price: fl.Price, Observed: fl.Observed,
			Chain: make([]FlowStep, 0, len(fl.Chain)),
		}
		for _, h := range fl.Chain {
			wf.Chain = append(wf.Chain, FlowStep{Pos: h.Pos, Note: h.Note})
		}
		out.Flows = append(out.Flows, wf)
	}
	return out
}

// FromDiagnostics converts the repository lint suite's diagnostics to
// the sgx-perf-vet wire form.
func FromDiagnostics(root string, analyzers []string, diags []lint.Diagnostic) *VetReport {
	out := &VetReport{
		SchemaVersion: Version,
		Root:          root,
		Analyzers:     analyzers,
		Diagnostics:   make([]VetDiagnostic, 0, len(diags)),
	}
	for _, d := range diags {
		out.Diagnostics = append(out.Diagnostics, VetDiagnostic{
			File:     filepath.ToSlash(d.Pos.Filename),
			Line:     d.Pos.Line,
			Column:   d.Pos.Column,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// FromEpochDecision converts one switchless tuner decision to its wire
// form.
func FromEpochDecision(d sdk.EpochDecision) EpochDecision {
	return EpochDecision{
		Pool:            d.Pool,
		Epoch:           d.Epoch,
		Action:          d.Action,
		Workers:         d.Workers,
		Served:          d.Served,
		Fallbacks:       d.Fallbacks,
		AvgWaitNs:       int64(d.AvgWait),
		Callers:         d.Callers,
		PredictedWaitNs: int64(d.PredictedWait),
	}
}

// FromEpochDecisions converts a tuner trajectory.
func FromEpochDecisions(ds []sdk.EpochDecision) []EpochDecision {
	if ds == nil {
		return nil
	}
	out := make([]EpochDecision, len(ds))
	for i, d := range ds {
		out[i] = FromEpochDecision(d)
	}
	return out
}

// FromStats converts per-call statistics to their wire form.
func FromStats(in []analyzer.CallStats) []CallStats {
	out := make([]CallStats, len(in))
	for i, s := range in {
		out[i] = CallStats{
			Name:          s.Name,
			Kind:          s.Kind.String(),
			Count:         s.Count,
			MeanNs:        int64(s.Mean),
			MedianNs:      int64(s.Median),
			StdNs:         int64(s.Std),
			P90Ns:         int64(s.P90),
			P95Ns:         int64(s.P95),
			P99Ns:         int64(s.P99),
			MinNs:         int64(s.Min),
			MaxNs:         int64(s.Max),
			FracBelow1us:  s.FracBelow1us,
			FracBelow5us:  s.FracBelow5us,
			FracBelow10us: s.FracBelow10us,
			TotalAEX:      s.TotalAEX,
		}
	}
	return out
}

func fromFinding(f analyzer.Finding) Finding {
	out := Finding{
		Problem:      f.Problem.String(),
		Call:         f.Call,
		Kind:         f.Kind.String(),
		Partner:      f.Partner,
		Evidence:     f.Evidence,
		SecurityNote: f.SecurityNote,
		Score:        f.Score,
	}
	for _, s := range f.Solutions {
		out.Solutions = append(out.Solutions, s.String())
	}
	return out
}

func fromFindings(in []analyzer.Finding) []Finding {
	out := make([]Finding, len(in))
	for i, f := range in {
		out[i] = fromFinding(f)
	}
	return out
}

func fromPaging(p analyzer.PagingStats) PagingStats {
	out := PagingStats{
		PageIns:     p.PageIns,
		PageOuts:    p.PageOuts,
		DuringCalls: p.DuringCalls,
	}
	if len(p.ByRegion) > 0 {
		out.ByRegion = make(map[string]int, len(p.ByRegion))
		for k, v := range p.ByRegion {
			out.ByRegion[k] = v
		}
	}
	return out
}

func fromWakeGraph(in []analyzer.WakeEdge) []WakeEdge {
	if in == nil {
		return nil
	}
	out := make([]WakeEdge, len(in))
	for i, e := range in {
		out[i] = WakeEdge{From: e.From, To: e.To, Count: e.Count}
	}
	return out
}

func fromSwitchless(s analyzer.SwitchlessStats) SwitchlessStats {
	out := SwitchlessStats{Served: s.Served, Fallbacks: s.Fallbacks}
	for _, c := range s.Calls {
		out.Calls = append(out.Calls, SwitchlessCall{
			Name:      c.Name,
			Kind:      c.Kind.String(),
			Served:    c.Served,
			Fallbacks: c.Fallbacks,
			AvgWaitNs: int64(c.AvgWait),
		})
	}
	return out
}

func fromGraph(g *analyzer.CallGraph) *CallGraph {
	if g == nil {
		return nil
	}
	out := &CallGraph{}
	for _, n := range g.Nodes {
		out.Nodes = append(out.Nodes, GraphNode{
			Name: n.Name, Kind: n.Kind.String(), CallID: n.CallID, Count: n.Count,
		})
	}
	for _, e := range g.Edges {
		out.Edges = append(out.Edges, GraphEdge{
			From: e.From, To: e.To, Count: e.Count, Indirect: e.Indirect,
		})
	}
	return out
}
