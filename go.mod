module sgxperf

go 1.22
