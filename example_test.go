package sgxperf_test

import (
	"fmt"
	"time"

	"sgxperf"
)

// Example traces a small enclave application and checks what the analyser
// finds. Everything runs on deterministic virtual time, so the output is
// stable.
func Example() {
	h, err := sgxperf.NewHost()
	if err != nil {
		fmt.Println(err)
		return
	}
	lg, err := sgxperf.AttachLogger(h, sgxperf.LoggerOptions{Workload: "example"})
	if err != nil {
		fmt.Println(err)
		return
	}

	iface, _, err := sgxperf.ParseEDL(`
		enclave {
			trusted   { public ecall_tiny(); };
			untrusted { ocall_log(); };
		};
	`)
	if err != nil {
		fmt.Println(err)
		return
	}
	ctx := h.NewContext("main")
	app, err := h.URTS.CreateEnclave(ctx, sgxperf.EnclaveConfig{Name: "example"}, iface,
		map[string]sgxperf.TrustedFn{
			// A trivially short ecall: the SISC anti-pattern (§3.1).
			"ecall_tiny": func(env *sgxperf.Env, args any) (any, error) {
				env.Compute(300 * time.Nanosecond)
				return nil, nil
			},
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	otab, err := sgxperf.BuildOcallTable(iface, h, map[string]sgxperf.OcallFn{
		"ocall_log": func(ctx *sgxperf.Context, args any) (any, error) { return nil, nil },
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	proxies := sgxperf.Proxies(app, h, otab)
	for i := 0; i < 1000; i++ {
		if _, err := proxies["ecall_tiny"](ctx, nil); err != nil {
			fmt.Println(err)
			return
		}
	}

	report := sgxperf.MustAnalyze(lg.Trace())
	fmt.Println("ecall events recorded:", lg.Trace().Ecalls.Len())
	fmt.Println("SISC detected:", report.HasProblem(sgxperf.ProblemSISC))
	for _, f := range report.FindingsFor("ecall_tiny") {
		fmt.Printf("finding: [%s] first recommendation: %s\n", f.Problem, f.Solutions[0])
		break
	}
	// Output:
	// ecall events recorded: 1000
	// SISC detected: true
	// finding: [Short Identical Successive Calls] first recommendation: batch calls
}

// ExampleNewSession is the Example quick start collapsed into the
// Session builder: one call replaces NewHost, AttachLogger, ParseEDL,
// BuildOcallTable and Proxies.
func ExampleNewSession() {
	s, err := sgxperf.NewSession(
		sgxperf.WithEDL(`
			enclave {
				trusted   { public ecall_tiny(); };
				untrusted { ocall_log(); };
			};
		`),
		sgxperf.WithOcallImpls(map[string]sgxperf.OcallFn{
			"ocall_log": func(ctx *sgxperf.Context, args any) (any, error) { return nil, nil },
		}),
		sgxperf.WithLogger(sgxperf.WithWorkload("session-example")),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	ctx := s.NewContext("main")
	enc, err := s.Enclave(ctx, sgxperf.EnclaveConfig{Name: "example"},
		map[string]sgxperf.TrustedFn{
			"ecall_tiny": func(env *sgxperf.Env, args any) (any, error) {
				env.Compute(300 * time.Nanosecond)
				return nil, nil
			},
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 1000; i++ {
		if _, err := enc.Call(ctx, "ecall_tiny", nil); err != nil {
			fmt.Println(err)
			return
		}
	}
	report, err := s.Analyze()
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ecall events recorded:", s.Logger.Trace().Ecalls.Len())
	fmt.Println("SISC detected:", report.HasProblem(sgxperf.ProblemSISC))
	// Output:
	// ecall events recorded: 1000
	// SISC detected: true
}

// ExampleSession_Live monitors a workload while it runs: the collector
// streams events off the recorder's flush path, and once the workload
// quiesces its snapshot matches the post-mortem analysis exactly.
func ExampleSession_Live() {
	s, err := sgxperf.NewSession(
		sgxperf.WithEDL(`enclave { trusted { public ecall_spin(); }; };`),
		sgxperf.WithLogger(sgxperf.WithWorkload("live-example")),
	)
	if err != nil {
		fmt.Println(err)
		return
	}
	defer s.Close()
	col, err := s.Live(sgxperf.LiveOptions{})
	if err != nil {
		fmt.Println(err)
		return
	}
	defer col.Close()

	ctx := s.NewContext("main")
	enc, err := s.Enclave(ctx, sgxperf.EnclaveConfig{Name: "live"},
		map[string]sgxperf.TrustedFn{
			"ecall_spin": func(env *sgxperf.Env, args any) (any, error) {
				env.Compute(400 * time.Nanosecond)
				return nil, nil
			},
		})
	if err != nil {
		fmt.Println(err)
		return
	}
	for i := 0; i < 500; i++ {
		if _, err := enc.Call(ctx, "ecall_spin", nil); err != nil {
			fmt.Println(err)
			return
		}
		// A dashboard would call col.Snapshot() here at any time.
	}

	col.Drain()
	snap := col.Snapshot()
	fmt.Println("ecalls streamed:", snap.Counts.Ecalls)
	fmt.Println("live findings:", len(snap.Findings))
	report, _ := s.Analyze()
	fmt.Println("matches post-mortem:", len(snap.Findings) == len(report.Findings))
	// Output:
	// ecalls streamed: 500
	// live findings: 2
	// matches post-mortem: true
}

// ExampleRunWorkload reproduces a slice of the paper's SQLite study
// (§5.2.2) through the workload registry.
func ExampleRunWorkload() {
	run, err := sgxperf.RunWorkload("sqlite", sgxperf.WorkloadOptions{
		Variant: "enclave",
		Ops:     100,
		Logger:  true,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("inserts:", run.Result.Ops)

	report := sgxperf.MustAnalyze(run.Trace)
	merge := false
	for _, f := range report.Findings {
		if f.Problem == sgxperf.ProblemSDSC && f.Partner == "ocall_lseek" {
			merge = true
		}
	}
	fmt.Println("lseek+write merge recommended:", merge)
	// Output:
	// inserts: 100
	// lseek+write merge recommended: true
}

// ExampleCatalogue prints the problem classes: Table 1's six plus the
// eight the static analysers add (reentrancy, boundary copies,
// transition-bound calls, locks held across the boundary,
// loop-amplified transitions, boundary data hazards, secret data
// crossing the boundary, boundary direction mismatches).
func ExampleCatalogue() {
	fmt.Println("problem classes:", len(sgxperf.Catalogue()))
	// Output:
	// problem classes: 14
}
