// dbinserts reproduces the §5.2.2 SQLite study: replaying synthetic git
// commits as INSERTs against an embedded SQL database in three
// configurations — native, enclavised with naïve syscall-as-ocall
// forwarding, and with the lseek+write merge that sgx-perf's SDSC
// detector recommends (the paper's +33%).
//
// Run with: go run ./examples/dbinserts [-inserts 2000]
package main

import (
	"flag"
	"fmt"
	"log"

	"sgxperf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	inserts := flag.Int("inserts", 2000, "INSERT statements per variant")
	flag.Parse()

	rates := map[string]float64{}
	for _, variant := range []string{"native", "enclave", "merged"} {
		res, err := sgxperf.RunWorkload("sqlite", sgxperf.WorkloadOptions{
			Variant: variant,
			Ops:     *inserts,
			Logger:  variant == "enclave", // analyse the naïve port
		})
		if err != nil {
			return err
		}
		rates[variant] = res.Result.Throughput()
		fmt.Println(res.Result.String())

		if res.Trace != nil {
			report := sgxperf.MustAnalyze(res.Trace)
			fmt.Println("\nsgx-perf findings on the naïve enclave port:")
			for _, f := range report.Findings {
				if f.Problem == sgxperf.ProblemSDSC {
					fmt.Printf("  [%s] %s + %s — %s\n", f.Problem, f.Partner, f.Call, f.Evidence)
				}
			}
			fmt.Println()
		}
	}

	fmt.Printf("normalised: native 1.00x, enclave %.2fx, merged %.2fx\n",
		rates["enclave"]/rates["native"], rates["merged"]/rates["native"])
	fmt.Printf("merge gain: +%.0f%% (the paper measures +33%%)\n",
		(rates["merged"]/rates["enclave"]-1)*100)
	return nil
}
