// tlsserver reproduces the §5.2.1 study interactively: an nginx-like
// server terminating TLS inside the TaLoS enclave serves HTTP GETs from a
// curl-like client while the sgx-perf logger records every transition.
// The analysis prints the interface's problems and writes the Fig. 5 call
// graph as DOT.
//
// Run with: go run ./examples/tlsserver [-requests 1000] [-dot fig5.dot]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"sgxperf"
	"sgxperf/internal/perf/events"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	requests := flag.Int("requests", 1000, "HTTP GET requests to serve")
	dotOut := flag.String("dot", "fig5.dot", "write the call graph here")
	flag.Parse()

	res, err := sgxperf.RunWorkload("talos", sgxperf.WorkloadOptions{
		Ops:    *requests,
		Logger: true,
	})
	if err != nil {
		return err
	}
	fmt.Println(res.Result.String())

	report := sgxperf.MustAnalyze(res.Trace)
	distinctE, distinctO := 0, 0
	for _, s := range report.Stats {
		if s.Kind == events.KindEcall {
			distinctE++
		} else {
			distinctO++
		}
	}
	fmt.Printf("\n%d ecall events across %d distinct ecalls, %d ocall events across %d ocalls\n",
		res.Trace.Ecalls.Len(), distinctE, res.Trace.Ocalls.Len(), distinctO)
	fmt.Printf("(the paper reports 27,631 / 61 and 28,969 / 10 for 1,000 requests)\n\n")

	// Print only the findings — the full stats table is long.
	fmt.Printf("the analyser found %d problems in the OpenSSL-as-enclave-interface design:\n", len(report.Findings))
	for _, f := range report.Findings {
		fmt.Printf("  [%s] %s — %s\n", f.Problem, f.Call, f.Evidence)
	}

	if err := os.WriteFile(*dotOut, []byte(report.Graph.DOT()), 0o644); err != nil {
		return err
	}
	fmt.Printf("\nFig. 5-style call graph written to %s (square=ecall, ellipse=ocall,\n", *dotOut)
	fmt.Println("solid=direct parent, dashed=indirect parent; render with `dot -Tpdf`)")
	return nil
}
