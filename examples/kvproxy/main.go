// kvproxy reproduces the §5.2.4 SecureKeeper study: an enclave proxy that
// transparently encrypts the path and payload of every packet between
// clients and a ZooKeeper-like store. Eight clients connect
// simultaneously (contending on the session map — watch the sync ocalls),
// then drive full load; the example prints the Fig. 7 histogram and the
// working-set numbers.
//
// Run with: go run ./examples/kvproxy [-duration 2s]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"sgxperf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	duration := flag.Duration("duration", 2*time.Second, "load-phase duration in virtual time (paper: 31s)")
	flag.Parse()

	fig, err := experiments.RunFig78(*duration)
	if err != nil {
		return err
	}
	fmt.Print(fig.Render())
	fmt.Println()
	fmt.Println("Fig. 8 scatter sample (first 10 points):")
	for i, p := range fig.Scatter {
		if i >= 10 {
			break
		}
		fmt.Printf("  t=%-12v exec=%v\n", p.T, p.Dur)
	}
	return nil
}
