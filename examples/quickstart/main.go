// Quickstart: build a small enclave on the simulated SGX host, run it
// under the sgx-perf logger, and let the analyser point out the
// anti-pattern it contains.
//
// The enclave deliberately exhibits the paper's "Short Nested Calls"
// problem (§3.3): every ecall starts by allocating its result buffer via
// a short ocall — exactly the pattern whose fix ("reorder the ocall to
// before the ecall") the analyser recommends.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"sgxperf"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	host, err := sgxperf.NewHost()
	if err != nil {
		return err
	}

	// Attach the logger BEFORE the application resolves sgx_ecall, the
	// LD_PRELOAD way (§4).
	lg, err := sgxperf.AttachLogger(host, sgxperf.LoggerOptions{
		Workload: "quickstart",
		AEX:      sgxperf.AEXCount,
	})
	if err != nil {
		return err
	}

	// The enclave interface, as the developer would write it in EDL.
	iface, warnings, err := sgxperf.ParseEDL(`
		enclave {
			trusted {
				public ecall_encrypt([in, size=len] buf, len);
			};
			untrusted {
				ocall_alloc_result(n);
			};
		};
	`)
	if err != nil {
		return err
	}
	for _, w := range warnings {
		fmt.Fprintln(os.Stderr, "edl warning:", w)
	}

	// Trusted implementation: the SNC anti-pattern — allocate the result
	// buffer through an ocall at the start of every ecall.
	impl := map[string]sgxperf.TrustedFn{
		"ecall_encrypt": func(env *sgxperf.Env, args any) (any, error) {
			if _, err := env.Ocall("ocall_alloc_result", 4096); err != nil {
				return nil, err
			}
			env.Compute(25 * time.Microsecond) // the actual encryption work
			return nil, nil
		},
	}
	ctx := host.NewContext("main")
	app, err := host.URTS.CreateEnclave(ctx, sgxperf.EnclaveConfig{Name: "quickstart"}, iface, impl)
	if err != nil {
		return err
	}
	otab, err := sgxperf.BuildOcallTable(iface, host, map[string]sgxperf.OcallFn{
		"ocall_alloc_result": func(ctx *sgxperf.Context, args any) (any, error) {
			ctx.Compute(500 * time.Nanosecond) // malloc is quick
			return nil, nil
		},
	})
	if err != nil {
		return err
	}
	proxies := sgxperf.Proxies(app, host, otab)

	// The application's hot loop.
	for i := 0; i < 500; i++ {
		if _, err := proxies["ecall_encrypt"](ctx, nil); err != nil {
			return err
		}
	}

	// Analyse the recorded trace.
	report := sgxperf.MustAnalyze(lg.Trace())
	fmt.Print(report.Render())

	if !report.HasProblem(sgxperf.ProblemSNC) {
		return fmt.Errorf("expected the analyser to flag the nested allocation ocall")
	}
	fmt.Println("=> as expected, the analyser recommends reordering the allocation ocall")
	fmt.Println("   to before the ecall (the SecureKeeper/LibSEAL technique, §3.3).")
	return nil
}
