// switchless demonstrates the transition-elimination technique from the
// paper's related work (SCONE's asynchronous calls, HotCalls, Eleos —
// §2.3, §6), which this library implements as sdk.Switchless: worker
// threads parked inside the enclave service a call queue, so a short
// ecall costs a queue round trip instead of an EENTER/EEXIT round trip.
//
// The example runs the Glamdring signing workload three ways — the broken
// partition, the same partition over switchless calls, and the paper's
// interface redesign — and compares the traces.
//
// Run with: go run ./examples/switchless [-signs 3]
package main

import (
	"flag"
	"fmt"
	"log"

	"sgxperf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	signs := flag.Int("signs", 3, "signatures per variant")
	flag.Parse()

	rows, err := experiments.RunSwitchlessAblation(*signs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSwitchless(rows))
	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  enclave    — every bn_sub_part_words is an EENTER/EEXIT round trip")
	fmt.Println("  switchless — the same calls go through an in-enclave worker queue:")
	fmt.Println("               most of the loss is recovered without touching the partition")
	fmt.Println("  optimized  — the paper's fix (move bn_mul_recursive inside) still wins,")
	fmt.Println("               because no cross-boundary traffic beats cheap cross-boundary traffic")
	return nil
}
