// switchless demonstrates the transition-elimination technique from the
// paper's related work (SCONE's asynchronous calls, HotCalls, Eleos —
// §2.3, §6), which this library implements as sdk.Switchless: worker
// threads parked inside the enclave service a call queue, so a short
// ecall costs a queue round trip instead of an EENTER/EEXIT round trip.
//
// The example runs two demonstrations:
//
//  1. the fixed-worker ablation: the Glamdring signing workload three
//     ways — the broken partition, the same partition over switchless
//     calls, and the paper's interface redesign;
//  2. the self-tuning runtime: the closed lint → config → re-measure
//     loop on a transition-bound workload, printing every per-epoch
//     scaling decision the scheduler took on its way to convergence.
//
// Run with: go run ./examples/switchless [-signs 3] [-ops 400]
package main

import (
	"flag"
	"fmt"
	"log"

	"sgxperf/internal/experiments"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	signs := flag.Int("signs", 3, "signatures per variant (fixed-worker ablation)")
	ops := flag.Int("ops", 400, "transition-bound calls per caller (self-tuning loop)")
	flag.Parse()

	// Part 1 — fixed workers: the technique applied by hand.
	rows, err := experiments.RunSwitchlessAblation(*signs)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSwitchless(rows))
	fmt.Println()
	fmt.Println("reading the table:")
	fmt.Println("  enclave    — every bn_sub_part_words is an EENTER/EEXIT round trip")
	fmt.Println("  switchless — the same calls go through an in-enclave worker queue:")
	fmt.Println("               most of the loss is recovered without touching the partition")
	fmt.Println("  optimized  — the paper's fix (move bn_mul_recursive inside) still wins,")
	fmt.Println("               because no cross-boundary traffic beats cheap cross-boundary traffic")
	fmt.Println()

	// Part 2 — self-tuning: the analyzer picks the calls, the scheduler
	// picks the workers. The epoch log shows the pools growing from one
	// worker until the queueing model prices the next worker below the
	// wake cost, then holding there.
	loop, err := experiments.RunSwitchlessLoop(0, *ops)
	if err != nil {
		return err
	}
	fmt.Print(experiments.RenderSwitchlessLoop(loop))
	fmt.Println()
	fmt.Println("reading the epoch log:")
	fmt.Println("  grow — the model prices the backlog above the 2×wake-cost threshold")
	fmt.Println("  hold — one more worker would not pay for its wake-ups; convergence")
	fmt.Println("  the measured column is the observed per-call queue wait; the scheduler")
	fmt.Println("  scales on the model, not the noisy measurement")
	return nil
}
