#!/usr/bin/env bash
# End-to-end smoke test for the always-on analysis service: build the
# binaries, record a real workload trace with sgx-perf-log, boot
# sgx-perf-serve on a free port, upload the trace over HTTP, and check
# that GET /v1/report is byte-for-byte what `sgx-perf-analyze -json`
# prints for the same file. Exercises the daemon the way a user does —
# over the wire, not through httptest.
set -euo pipefail
cd "$(dirname "$0")/.."

work="$(mktemp -d)"
serve_pid=""
cleanup() {
    [ -n "$serve_pid" ] && kill "$serve_pid" 2>/dev/null || true
    [ -n "$serve_pid" ] && wait "$serve_pid" 2>/dev/null || true
    rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work" ./cmd/sgx-perf-log ./cmd/sgx-perf-analyze ./cmd/sgx-perf-serve

echo "== record a golden trace (securekeeper, 500 ops)"
"$work/sgx-perf-log" -workload securekeeper -ops 500 -o "$work/trace.evdb"

echo "== offline reference report"
"$work/sgx-perf-analyze" -json "$work/trace.evdb" > "$work/offline.json"

echo "== boot sgx-perf-serve on a free port"
"$work/sgx-perf-serve" -addr 127.0.0.1:0 -addr-file "$work/addr" &
serve_pid=$!
for _ in $(seq 1 50); do
    [ -s "$work/addr" ] && break
    kill -0 "$serve_pid" 2>/dev/null || { echo "serve exited early" >&2; exit 1; }
    sleep 0.1
done
[ -s "$work/addr" ] || { echo "serve never wrote its address" >&2; exit 1; }
addr="$(head -n1 "$work/addr")"
echo "   listening on $addr"

echo "== upload the trace"
curl -sfS -X POST --data-binary @"$work/trace.evdb" \
    "http://$addr/v1/traces?id=golden" > "$work/info.json"
grep -q '"id": "golden"' "$work/info.json"

echo "== fetch the served report"
curl -sfS "http://$addr/v1/report?trace=golden" > "$work/served.json"

echo "== byte-compare served vs offline"
cmp "$work/offline.json" "$work/served.json"

echo "== health and metrics"
curl -sfS "http://$addr/v1/healthz" > /dev/null
curl -sfS "http://$addr/v1/metrics" | grep -q '"schema_version"'

echo "serve smoke: OK (served report byte-identical to sgx-perf-analyze -json)"
