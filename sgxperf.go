// Package sgxperf is the public API of the sgx-perf reproduction: a
// performance-analysis toolset for (simulated) Intel SGX enclaves, after
// "sgx-perf: A Performance Analysis Tool for Intel SGX Enclaves"
// (Weichbrodt, Aublin, Kapitza — Middleware 2018).
//
// The package re-exports the supported surface of the internal packages:
//
//   - a simulated SGX host (machine, kernel driver, SDK runtime) to build
//     and run enclave applications on virtual time;
//   - the sgx-perf event logger, attached by preloading — it shadows
//     sgx_ecall, rewrites ocall tables, patches the AEP for AEX
//     counting/tracing and traces EPC paging via kprobes;
//   - the working-set estimator;
//   - the analyser, with the paper's anti-pattern detectors (SISC, SDSC,
//     SNC, SSC, paging), statistics, call graphs and security hints;
//   - the four evaluation workloads and the experiment harness that
//     regenerates every table and figure of the paper.
//
// Quick start:
//
//	s, _ := sgxperf.NewSession(
//		sgxperf.WithEDL(`enclave { trusted { public ecall_work(); }; };`),
//		sgxperf.WithLogger(sgxperf.WithWorkload("demo")),
//	)
//	enc, _ := s.Enclave(s.NewContext("main"), sgxperf.EnclaveConfig{Name: "demo"}, trusted)
//	// ... enc.Call(ctx, "ecall_work", nil) ...
//	report, _ := s.Analyze()
//	fmt.Print(report.Render())
//
// The individual building blocks (NewHost, AttachLogger, ParseEDL,
// BuildOcallTable, Proxies) remain available for callers that compose
// them differently, and AttachLive streams analysis from a running
// workload.
package sgxperf

import (
	"context"
	"fmt"

	"sgxperf/internal/edl"
	"sgxperf/internal/host"
	"sgxperf/internal/kernel"
	"sgxperf/internal/perf/analyzer"
	"sgxperf/internal/perf/events"
	"sgxperf/internal/perf/live"
	"sgxperf/internal/perf/logger"
	"sgxperf/internal/perf/staticlint"
	"sgxperf/internal/perf/workingset"
	"sgxperf/internal/sdk"
	"sgxperf/internal/sgx"
	"sgxperf/internal/vtime"
)

// Simulated-host surface.
type (
	// Host is a complete simulated application environment: machine,
	// kernel, process image and SDK runtime.
	Host = host.Host
	// HostOption configures NewHost.
	HostOption = host.Option
	// Machine is the simulated SGX-capable processor.
	Machine = sgx.Machine
	// Context is a simulated OS thread with a virtual clock.
	Context = sgx.Context
	// EnclaveConfig sizes an enclave (heap, stack, TCS count).
	EnclaveConfig = sgx.Config
	// Enclave is a built enclave.
	Enclave = sgx.Enclave
	// MitigationLevel selects the side-channel mitigation state (§2.3.1).
	MitigationLevel = sgx.MitigationLevel
	// EnclaveID identifies an enclave on a machine.
	EnclaveID = sgx.EnclaveID
	// Kernel is the simulated OS layer (driver, signals, kprobes).
	Kernel = kernel.Kernel
)

// SDK surface.
type (
	// TrustedFn is an in-enclave ecall implementation.
	TrustedFn = sdk.TrustedFn
	// OcallFn is an untrusted ocall implementation.
	OcallFn = sdk.OcallFn
	// OcallTable maps ocall IDs to implementations (the logger swaps it).
	OcallTable = sdk.OcallTable
	// Env is the trusted-side execution environment.
	Env = sdk.Env
	// Proxy is an untrusted ecall wrapper (edger8r output).
	Proxy = sdk.Proxy
	// AppEnclave is a created enclave with its interface and image.
	AppEnclave = sdk.AppEnclave
	// EnclaveMutex is the SDK's in-enclave mutex (sleeps via ocalls).
	EnclaveMutex = sdk.Mutex
	// EnclaveCond is the SDK's in-enclave condition variable.
	EnclaveCond = sdk.Cond
	// Switchless is the self-tuning switchless call runtime: worker pools
	// servicing ecall/ocall queues without enclave transitions, resized
	// per epoch from observed fallback rate and queue occupancy.
	Switchless = sdk.Switchless
	// SwitchlessConfig selects which calls run switchless and bounds the
	// scheduler; the static analyzer emits one from its Transition-Bound
	// Calls findings.
	SwitchlessConfig = sdk.SwitchlessConfig
	// EpochDecision is one scaling decision of the switchless scheduler.
	EpochDecision = sdk.EpochDecision
	// BatchCall is one entry of a batched switchless submission.
	BatchCall = sdk.BatchCall
	// BatchResult is one result of a batched switchless submission.
	BatchResult = sdk.BatchResult
	// Interface is a parsed EDL enclave interface.
	Interface = edl.Interface
	// EDLParam is one declared parameter with pointer annotations.
	EDLParam = edl.Param
)

// Tooling surface.
type (
	// Logger is the attached sgx-perf event logger (§4.1).
	Logger = logger.Logger
	// LoggerOptions configures the logger (AEX mode, paging tracing).
	//
	// Deprecated: prefer NewLogger with functional LoggerOption values
	// (WithWorkload, WithAEX, WithPagingTrace); the struct form is kept
	// so existing AttachLogger callers do not break.
	LoggerOptions = logger.Options
	// LoggerOption configures NewLogger, mirroring HostOption.
	LoggerOption = logger.Option
	// AEXMode selects off/counting/tracing (§4.1.4).
	AEXMode = logger.AEXMode
	// Trace is one recorded run.
	Trace = events.Trace
	// WorkingSetEstimator measures enclave working sets (§4.2).
	WorkingSetEstimator = workingset.Estimator
	// Analyzer computes reports from traces (§4.3).
	Analyzer = analyzer.Analyzer
	// AnalyzerOptions carries detector weights and an optional EDL.
	AnalyzerOptions = analyzer.Options
	// Weights are the detector thresholds (Equations 1–3 defaults).
	Weights = analyzer.Weights
	// Report is the analyser's output.
	Report = analyzer.Report
	// Finding is one detected anti-pattern with ranked solutions.
	Finding = analyzer.Finding
	// SecurityHint is one interface-hardening recommendation (§3.6).
	SecurityHint = analyzer.SecurityHint
	// CallStats are per-call statistics (§4.3.1).
	CallStats = analyzer.CallStats
	// CallGraph is the Fig. 5-style call graph.
	CallGraph = analyzer.CallGraph
	// LiveCollector streams analysis from a running workload: it
	// subscribes to the recorder's flush path and folds events into
	// incremental statistics, detectors and sliding-window rates. After
	// the workload quiesces, Drain + Snapshot reproduce exactly what the
	// post-mortem analyser reports over the same trace.
	LiveCollector = live.Collector
	// LiveSnapshot is one consistent view of a LiveCollector: event
	// counts, windowed rates, per-call statistics and current findings.
	LiveSnapshot = live.Snapshot
	// LiveOptions configures AttachLive (weights, enclave filter,
	// rate-window width).
	LiveOptions = live.Options
	// LintReport is the static interface analysis, optionally joined with
	// a recorded trace (hybrid mode).
	LintReport = staticlint.Report
	// LintOptions tunes the static detectors (cost model, thresholds).
	LintOptions = staticlint.Options
	// RankedFinding is a static finding with its trace-observed execution
	// count and hybrid rank.
	RankedFinding = staticlint.RankedFinding
	// SwitchlessStats summarises a trace's switchless activity (served vs
	// fallback counts), as reported by the analyser and live snapshots.
	SwitchlessStats = analyzer.SwitchlessStats
)

// Sentinel errors of the public surface; match with errors.Is through
// any wrapping the constructors add.
var (
	// ErrNoTrace reports analysis attempted without a trace.
	ErrNoTrace = analyzer.ErrNoTrace
	// ErrLoggerDetached reports a live attachment to a logger that has
	// already been detached from its host.
	ErrLoggerDetached = logger.ErrDetached
)

// Mitigation levels (§2.3.1).
const (
	MitigationNone    = sgx.MitigationNone
	MitigationSpectre = sgx.MitigationSpectre
	MitigationFull    = sgx.MitigationFull
)

// AEX observation modes (§4.1.4).
const (
	AEXOff   = logger.AEXOff
	AEXCount = logger.AEXCount
	AEXTrace = logger.AEXTrace
)

// Problem and solution classes: Table 1's dynamic anti-patterns plus the
// classes the static interface analyser adds.
const (
	ProblemSISC                = analyzer.ProblemSISC
	ProblemSDSC                = analyzer.ProblemSDSC
	ProblemSNC                 = analyzer.ProblemSNC
	ProblemSSC                 = analyzer.ProblemSSC
	ProblemPaging              = analyzer.ProblemPaging
	ProblemPermissiveInterface = analyzer.ProblemPermissiveInterface
	ProblemReentrancy          = analyzer.ProblemReentrancy
	ProblemLargeCopies         = analyzer.ProblemLargeCopies
	ProblemTransitionBound     = analyzer.ProblemTransitionBound
	ProblemBoundarySync        = analyzer.ProblemBoundarySync

	// ProblemTransitionAmplification and ProblemBoundaryDataHazard come
	// from the interprocedural source analysis (loops around ocall
	// dispatch; double fetches and pointer escapes at the boundary).
	ProblemTransitionAmplification = analyzer.ProblemTransitionAmplification
	ProblemBoundaryDataHazard      = analyzer.ProblemBoundaryDataHazard

	// ProblemSecretLeak and ProblemDirectionMismatch come from the
	// secret-flow taint analysis (//sgxperf:secret data reaching a
	// boundary sink unsealed; handlers contradicting their EDL's
	// declared directions).
	ProblemSecretLeak        = analyzer.ProblemSecretLeak
	ProblemDirectionMismatch = analyzer.ProblemDirectionMismatch
)

// StaticLint runs the static interface analysis: findings from the EDL
// alone, with no workload run (§3.6 and §6 shapes visible in the
// interface definition).
func StaticLint(iface *Interface, opts LintOptions) *LintReport {
	return staticlint.Static(iface, opts)
}

// HybridLint joins the static findings with a recorded trace: findings
// are re-ranked by observed call counts, and static-only and
// dynamic-only discrepancies are flagged. A nil interface falls back to
// the EDL embedded in the trace.
func HybridLint(iface *Interface, t *Trace, opts LintOptions) (*LintReport, error) {
	return staticlint.Hybrid(iface, t, opts)
}

// SwitchlessConfigFrom derives a switchless runtime configuration from
// an interface, using the same candidate logic as the lint's
// Transition-Bound Calls detector; nil when nothing qualifies. Feed the
// result to WithSwitchless to close the lint→config→re-measure loop.
func SwitchlessConfigFrom(iface *Interface, opts LintOptions) *SwitchlessConfig {
	return staticlint.SwitchlessConfigFrom(iface, opts)
}

// ParseSwitchlessConfig parses a JSON switchless configuration (as
// written by SwitchlessConfig.JSON or `sgx-perf-lint -switchless-config`).
func ParseSwitchlessConfig(b []byte) (*SwitchlessConfig, error) {
	return sdk.ParseSwitchlessConfig(b)
}

// NewHost builds a simulated SGX host.
func NewHost(opts ...HostOption) (*Host, error) { return host.New(opts...) }

// WithMitigation selects the host's mitigation level.
func WithMitigation(m MitigationLevel) HostOption { return host.WithMitigation(m) }

// WithEPCCapacity overrides the EPC size in pages (default: the
// architectural 23,808 usable pages ≈ 93 MiB, §2.3.3).
func WithEPCCapacity(pages int) HostOption { return host.WithEPCCapacity(pages) }

// WithEnclaveComputeFactor sets the in-enclave compute slowdown.
func WithEnclaveComputeFactor(f float64) HostOption { return host.WithEnclaveComputeFactor(f) }

// AttachLogger preloads the sgx-perf event logger into the host process.
func AttachLogger(h *Host, opts LoggerOptions) (*Logger, error) { return logger.Attach(h, opts) }

// NewLogger preloads the logger configured by functional options.
func NewLogger(h *Host, opts ...LoggerOption) (*Logger, error) { return logger.New(h, opts...) }

// WithWorkload names the workload in the trace metadata.
func WithWorkload(name string) LoggerOption { return logger.WithWorkload(name) }

// WithAEX selects the logger's AEX observation mode (§4.1.4).
func WithAEX(mode AEXMode) LoggerOption { return logger.WithAEX(mode) }

// WithPagingTrace enables or disables EPC paging tracing via kprobes.
func WithPagingTrace(on bool) LoggerOption { return logger.WithPagingTrace(on) }

// AttachLive subscribes a streaming collector to the logger's trace.
// Fails with ErrLoggerDetached once the logger has been detached.
func AttachLive(l *Logger, opts LiveOptions) (*LiveCollector, error) { return live.Attach(l, opts) }

// NewWorkingSetEstimator creates the §4.2 estimator for an enclave.
func NewWorkingSetEstimator(h *Host, enc *Enclave) *WorkingSetEstimator {
	return workingset.New(h, enc)
}

// NewAnalyzer prepares an analyser over a trace.
func NewAnalyzer(t *Trace, opts AnalyzerOptions) (*Analyzer, error) {
	return analyzer.New(t, opts)
}

// Analyze runs the full analysis with default options.
func Analyze(t *Trace) (*Report, error) {
	a, err := analyzer.New(t, analyzer.Options{})
	if err != nil {
		return nil, err
	}
	return a.Analyze(), nil
}

// AnalyzeWithContext is Analyze with explicit options and cooperative
// cancellation: long analyses stop between kernels and pool partitions
// once ctx is done and the call returns ctx.Err(). An uncancelled call
// produces exactly the report of Analyze / Analyzer.Analyze with the
// same options.
func AnalyzeWithContext(ctx context.Context, t *Trace, opts AnalyzerOptions) (*Report, error) {
	a, err := analyzer.New(t, opts)
	if err != nil {
		return nil, err
	}
	return a.AnalyzeContext(ctx)
}

// HybridLintContext is HybridLint with cooperative cancellation.
func HybridLintContext(ctx context.Context, iface *Interface, t *Trace, opts LintOptions) (*LintReport, error) {
	return staticlint.HybridContext(ctx, iface, t, opts)
}

// MustAnalyze is Analyze for contexts where the trace is known-good.
func MustAnalyze(t *Trace) *Report {
	r, err := Analyze(t)
	if err != nil {
		panic(fmt.Sprintf("sgxperf: %v", err))
	}
	return r
}

// NewTrace creates an empty trace (for loading saved trace files).
func NewTrace() (*Trace, error) { return events.NewTrace() }

// LoadTrace reads a trace file written by Logger.Trace().SaveFile.
func LoadTrace(path string) (*Trace, error) {
	t, err := events.NewTrace()
	if err != nil {
		return nil, err
	}
	if err := t.LoadFile(path); err != nil {
		return nil, err
	}
	return t, nil
}

// ParseEDL parses EDL text into an enclave interface.
func ParseEDL(src string) (*Interface, []string, error) { return edl.Parse(src) }

// NewInterface creates an empty interface for programmatic construction.
func NewInterface() *Interface { return edl.NewInterface() }

// BuildOcallTable assembles an ocall table for an interface.
func BuildOcallTable(iface *Interface, h *Host, impls map[string]OcallFn) (*OcallTable, error) {
	return sdk.BuildOcallTable(iface, h.URTS, impls)
}

// Proxies generates the untrusted ecall wrappers for an enclave.
func Proxies(app *AppEnclave, h *Host, otab *OcallTable) map[string]Proxy {
	return sdk.Proxies(app, h.Proc, otab)
}

// DefaultWeights returns the paper's detector thresholds (§4.3.2).
func DefaultWeights() Weights { return analyzer.DefaultWeights() }

// Catalogue returns the Table 1 problem→solutions catalogue.
func Catalogue() map[analyzer.Problem][]analyzer.Solution { return analyzer.Catalogue() }

// Frequency conversion helpers (virtual time).
type (
	// Cycles is a point or span of virtual time.
	Cycles = vtime.Cycles
	// Frequency converts cycles to durations.
	Frequency = vtime.Frequency
)

// DefaultFrequency is the simulated 3.40 GHz CPU of the paper's testbed.
const DefaultFrequency = vtime.DefaultFrequency
