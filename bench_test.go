package sgxperf_test

// One benchmark per table and figure of the paper's evaluation. The
// simulation runs on virtual time, so the interesting outputs are the
// custom metrics (virtual-ns per operation, event counts, speedups) —
// wall-clock ns/op only measures the simulator itself.
//
// Regenerate everything with:
//
//	go test -bench=. -benchmem
//
// or, with the paper's full experiment sizes, via cmd/sgx-perf-bench -full.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"sgxperf"
	"sgxperf/internal/evstore"
	"sgxperf/internal/experiments"
	"sgxperf/internal/perf/events"
)

// BenchmarkSec231_TransitionCost regenerates the §2.3.1 measurement:
// enclave transition round trips under the three mitigation levels.
func BenchmarkSec231_TransitionCost(b *testing.B) {
	var rows []experiments.TransitionRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.Transitions()
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Measured.Nanoseconds()), "virtual-ns/"+r.Mitigation)
	}
}

// BenchmarkTable2_LoggerOverhead regenerates Table 2: the logger's
// per-ecall, per-ocall and per-AEX probe costs.
func BenchmarkTable2_LoggerOverhead(b *testing.B) {
	var res *experiments.Table2
	var err error
	for i := 0; i < b.N; i++ {
		res, err = experiments.RunTable2(experiments.Table2Options{Calls: 500, LongCalls: 5})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.NativeEcall.Nanoseconds()), "native-ecall-ns")
	b.ReportMetric(float64(res.LoggedEcall.Nanoseconds()), "logged-ecall-ns")
	b.ReportMetric(float64(res.EcallOverhead.Nanoseconds()), "ecall-probe-ns")
	b.ReportMetric(float64(res.OcallOverhead.Nanoseconds()), "ocall-probe-ns")
	b.ReportMetric(float64(res.PerAEXCount.Nanoseconds()), "aex-count-ns")
	b.ReportMetric(float64(res.PerAEXTrace.Nanoseconds()), "aex-trace-ns")
	b.ReportMetric(res.MeanAEXs, "aex-per-long-ecall")
}

// BenchmarkFig5_TaLoSCallGraph regenerates the §5.2.1 TaLoS+nginx study:
// 1,000 HTTP GETs traced and analysed (scaled by -benchtime via b.N runs
// of 200 requests each).
func BenchmarkFig5_TaLoSCallGraph(b *testing.B) {
	var f *experiments.Fig5
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig5(200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.EcallEvents)/float64(f.Requests), "ecalls/request")
	b.ReportMetric(float64(f.OcallEvents)/float64(f.Requests), "ocalls/request")
	b.ReportMetric(float64(f.DistinctEcalls), "distinct-ecalls")
	b.ReportMetric(f.ShortEcallFrac*100, "short-ecall-%")
	b.ReportMetric(f.ShortOcallFrac*100, "short-ocall-%")
}

// BenchmarkFig6_SQLite regenerates the SQLite bars of Fig. 6 (native /
// enclavised / merged × three mitigation levels).
func BenchmarkFig6_SQLite(b *testing.B) {
	var rows []experiments.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunFig6SQLite(500)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Mitigation == "vanilla" {
			b.ReportMetric(r.Normalised, "norm-"+r.Variant)
		}
	}
}

// BenchmarkFig6_LibreSSL regenerates the LibreSSL bars of Fig. 6 and the
// §5.2.3 optimised-vs-enclave speedups.
func BenchmarkFig6_LibreSSL(b *testing.B) {
	var rows []experiments.Fig6Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunFig6LibreSSL(2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		if r.Mitigation == "vanilla" {
			b.ReportMetric(r.Normalised, "norm-"+r.Variant)
		}
	}
	sp := experiments.Speedups(rows, "enclave", "optimized")
	b.ReportMetric(sp["vanilla"], "speedup-vanilla")
	b.ReportMetric(sp["spectre"], "speedup-spectre")
	b.ReportMetric(sp["spectre+l1tf"], "speedup-l1tf")
}

// BenchmarkFig7_8_SecureKeeper regenerates the SecureKeeper histogram /
// scatter study and the §5.2.4 working-set numbers.
func BenchmarkFig7_8_SecureKeeper(b *testing.B) {
	var f *experiments.Fig78
	var err error
	for i := 0; i < b.N; i++ {
		f, err = experiments.RunFig78(300 * time.Millisecond)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(f.EcallEvents)/f.Duration.Seconds(), "ecall-events/s")
	b.ReportMetric(float64(f.ClientMean.Nanoseconds()), "client-ecall-ns")
	b.ReportMetric(float64(f.ZKMean.Nanoseconds()), "zk-ecall-ns")
	b.ReportMetric(float64(f.StartupPages), "ws-startup-pages")
	b.ReportMetric(float64(f.SteadyPages), "ws-steady-pages")
	b.ReportMetric(float64(f.EnclavesFitEPC), "enclaves-fit-epc")
}

// BenchmarkWS_Glamdring regenerates the §5.2.3 working-set measurement
// (61 pages at start-up, 32 during the benchmark).
func BenchmarkWS_Glamdring(b *testing.B) {
	var ws *experiments.GlamdringWS
	var err error
	for i := 0; i < b.N; i++ {
		ws, err = experiments.RunGlamdringWorkingSet()
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(ws.StartupPages), "startup-pages")
	b.ReportMetric(float64(ws.SteadyPages), "steady-pages")
}

// BenchmarkAblation_HybridLock compares the SDK mutex against the hybrid
// spin-then-sleep lock under contention (§3.4).
func BenchmarkAblation_HybridLock(b *testing.B) {
	var rows []experiments.HybridLockRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunHybridLockAblation(4, 150)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.SyncOcalls), "sync-ocalls-"+r.Strategy)
	}
}

// BenchmarkAblation_Paging compares the §3.5 paging mitigation
// strategies when the working set exceeds the EPC.
func BenchmarkAblation_Paging(b *testing.B) {
	var rows []experiments.PagingRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunPagingAblation(256, 192, 2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(float64(r.Virtual.Microseconds()), "virtual-us-"+r.Strategy)
		b.ReportMetric(float64(r.PageIns), "page-ins-"+r.Strategy)
	}
}

// BenchmarkLoggerContention measures the recording pipeline's wall-clock
// throughput with N threads hammering short ecalls (§4.1: per-thread
// buffers keep the probe cost flat as threads are added). Unlike the
// virtual-time benchmarks above, events/s here is real wall-clock
// throughput of the sharded recorder itself.
func BenchmarkLoggerContention(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var row experiments.ContentionRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.RunLoggerContention(threads, 2000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.EventsPerSec, "events/s")
			b.ReportMetric(row.NsPerEvent, "ns/event")
		})
	}
}

// BenchmarkLoggerContentionLive repeats the contention sweep with a live
// streaming collector subscribed to the trace: the subscribers run on the
// recording hot path (under the table write lock) but only enqueue
// batches, so events/s must stay within ~10% of BenchmarkLoggerContention.
func BenchmarkLoggerContentionLive(b *testing.B) {
	for _, threads := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("threads=%d", threads), func(b *testing.B) {
			var row experiments.ContentionRow
			var err error
			for i := 0; i < b.N; i++ {
				row, err = experiments.RunLoggerContentionLive(threads, 2000)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(row.EventsPerSec, "events/s")
			b.ReportMetric(row.NsPerEvent, "ns/event")
		})
	}
}

// BenchmarkAblation_Switchless compares the paper's interface redesign
// against switchless calls (the SCONE/HotCalls/Eleos technique, §2.3/§6)
// on the Glamdring signing workload.
func BenchmarkAblation_Switchless(b *testing.B) {
	var rows []experiments.SwitchlessRow
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = experiments.RunSwitchlessAblation(2)
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.SignsPerSec, "signs/s-"+r.Variant)
	}
}

// BenchmarkAnalyzeParallel compares the serial reference analysis
// pipeline against the parallel one (worker-pool kernels + interval
// index) on a synthetic 10k-call trace. events/s is wall-clock
// post-processing throughput.
func BenchmarkAnalyzeParallel(b *testing.B) {
	for _, mode := range []string{"serial", "parallel"} {
		b.Run(mode, func(b *testing.B) {
			trace, err := experiments.SynthAnalysisTrace(10000)
			if err != nil {
				b.Fatal(err)
			}
			a, err := sgxperf.NewAnalyzer(trace, sgxperf.AnalyzerOptions{Serial: mode == "serial"})
			if err != nil {
				b.Fatal(err)
			}
			nEvents := trace.Ecalls.Len() + trace.Ocalls.Len() + trace.Paging.Len() + trace.Syncs.Len()
			b.ResetTimer()
			start := time.Now()
			for i := 0; i < b.N; i++ {
				a.Analyze()
			}
			b.ReportMetric(float64(nEvents)*float64(b.N)/time.Since(start).Seconds(), "events/s")
		})
	}
}

// BenchmarkCodecSaveLoad compares trace serialisation through the legacy
// gob format and the chunked columnar codec; MB/s is against each
// format's own encoded size.
func BenchmarkCodecSaveLoad(b *testing.B) {
	trace, err := experiments.SynthAnalysisTrace(10000)
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name string
		opts evstore.SaveOptions
	}{
		{"gob", evstore.SaveOptions{Format: evstore.FormatGob}},
		{"binary", evstore.SaveOptions{Format: evstore.FormatBinary}},
		{"binary-flate", evstore.SaveOptions{Format: evstore.FormatBinary, Compress: true}},
	} {
		var buf bytes.Buffer
		if err := trace.SaveWith(&buf, tc.opts); err != nil {
			b.Fatal(err)
		}
		mb := float64(buf.Len()) / 1e6
		b.Run("save/"+tc.name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				buf.Reset()
				if err := trace.SaveWith(&buf, tc.opts); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mb*float64(b.N)/time.Since(start).Seconds(), "MB/s")
			b.ReportMetric(float64(buf.Len()), "bytes")
		})
		b.Run("load/"+tc.name, func(b *testing.B) {
			start := time.Now()
			for i := 0; i < b.N; i++ {
				dst, err := events.NewTrace()
				if err != nil {
					b.Fatal(err)
				}
				if err := dst.Load(bytes.NewReader(buf.Bytes())); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(mb*float64(b.N)/time.Since(start).Seconds(), "MB/s")
		})
	}
}
